//! Simulated time.
//!
//! All of `seqio` runs on a virtual clock. [`SimTime`] is an instant measured
//! in integer nanoseconds since the start of the simulation; [`SimDuration`]
//! is a span between two instants. Integer nanoseconds keep the simulation
//! exactly deterministic (no floating-point drift) while being fine-grained
//! enough for sub-microsecond device events.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since time zero.
///
/// # Examples
///
/// ```
/// use seqio_simcore::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_millis(5);
/// assert_eq!(t.as_nanos(), 5_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use seqio_simcore::SimDuration;
///
/// let d = SimDuration::from_micros(250) * 4;
/// assert_eq!(d.as_millis_f64(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant (used as an "infinitely far" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the instant as raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the instant in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (time never runs backwards
    /// in a well-formed simulation).
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is in the future"),
        )
    }

    /// Duration elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "duration must be finite and non-negative");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Creates a duration from fractional milliseconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative or not finite.
    pub fn from_millis_f64(ms: f64) -> Self {
        Self::from_secs_f64(ms / 1e3)
    }

    /// Returns the duration as raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration in (fractional) milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration in (fractional) microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the duration by a fractional factor, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor.is_finite() && factor >= 0.0, "factor must be finite and non-negative");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_000);
        let d = SimDuration::from_micros(5);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimDuration::from_secs_f64(0.5), SimDuration::from_millis(500));
        assert_eq!(SimDuration::from_millis_f64(1.5), SimDuration::from_micros(1_500));
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
        assert_eq!(
            SimDuration::from_millis(1).saturating_sub(SimDuration::from_secs(1)),
            SimDuration::ZERO
        );
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(SimTime::from_nanos(5)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_backwards_time() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_nanos(1));
    }

    #[test]
    fn conversions_to_float() {
        let d = SimDuration::from_millis(1_500);
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_millis_f64() - 1500.0).abs() < 1e-9);
        assert!((d.as_micros_f64() - 1_500_000.0).abs() < 1e-6);
    }

    #[test]
    fn scaling_operators() {
        let d = SimDuration::from_micros(10);
        assert_eq!(d * 3, SimDuration::from_micros(30));
        assert_eq!(d / 2, SimDuration::from_micros(5));
        assert_eq!(d.mul_f64(2.5), SimDuration::from_micros(25));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimTime::from_nanos(1_500_000_000).to_string(), "1.500000s");
    }
}
