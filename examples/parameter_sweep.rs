//! Parameter exploration: how `R` (read-ahead) and `M` (staging memory)
//! trade off at a fixed stream count — the decision surface behind the
//! paper's Figures 10 and 11.
//!
//! The grid of experiments runs on the [`Sweep`] worker pool (all cores by
//! default; override with `--jobs`/`SEQIO_JOBS`). Results come back in grid
//! order whatever the worker count, so the table below is deterministic.
//! (Single runs and cluster studies build through [`Scenario`] instead —
//! see `quickstart`; a sweep is a grid of raw per-node templates, so it
//! stays on the `Experiment` vocabulary.)
//!
//! ```text
//! cargo run --release --example parameter_sweep [-- --jobs N]
//! ```

use seqio::prelude::*;
use seqio::simcore::units::{format_bytes, KIB, MIB};

fn main() {
    let streams = 60;
    let readaheads = [256 * KIB, MIB, 4 * MIB, 8 * MIB];
    let memories = [16 * MIB, 64 * MIB, 256 * MIB];

    let jobs = std::env::args()
        .skip_while(|a| a != "--jobs")
        .nth(1)
        .map(|v| v.parse::<usize>().expect("--jobs N"));

    // Build every valid (R, M) cell up front; the sweep runs them in
    // parallel and hands the results back in the same order.
    let mut cells: Vec<(u64, u64)> = Vec::new();
    let mut sweep = Sweep::builder();
    for ra in readaheads {
        for m in memories {
            if m < ra {
                continue;
            }
            cells.push((ra, m));
            let cfg = ServerConfig::memory_limited(m, ra, 1);
            sweep = sweep.point(
                Experiment::builder()
                    .streams_per_disk(streams)
                    .frontend(Frontend::StreamScheduler(cfg))
                    .warmup(SimDuration::from_secs(5))
                    .duration(SimDuration::from_secs(6))
                    .seed(9)
                    .build(),
            );
        }
    }
    if let Some(j) = jobs {
        sweep = sweep.jobs(j);
    }
    let report = sweep.run();
    let mut results = cells.iter().zip(report.results()).peekable();

    println!("60 streams, one disk, 64 KiB requests; D derived as M/(R*N), N = 1\n");
    print!("{:>10}", "R \\ M");
    for m in memories {
        print!("{:>12}", format_bytes(m));
    }
    println!();

    for ra in readaheads {
        print!("{:>10}", format_bytes(ra));
        for m in memories {
            match results.peek() {
                Some(&(&(cr, cm), r)) if cr == ra && cm == m => {
                    print!("{:>12.1}", r.total_throughput_mbs());
                    results.next();
                }
                _ => print!("{:>12}", "-"),
            }
        }
        println!();
    }

    eprintln!(
        "\nran {} experiments on {} worker(s) in {:.1}s",
        report.len(),
        report.jobs,
        report.wall.as_secs_f64()
    );
    println!(
        "\nReading the table: moving right (more memory, more dispatched streams) helps \
         far less than moving down (larger read-ahead per dispatched stream) — the \
         paper's central Figure 11 observation. Even 16 MB of staging with 8 MB \
         read-ahead outperforms 256 MB of staging at 256 KB."
    );
}
