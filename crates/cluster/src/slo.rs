//! End-to-end session SLO summaries.
//!
//! The open-loop client front-end measures each session from its arrival
//! instant to the moment its last response finishes crossing the shared
//! client-facing link. [`SessionSlo`] condenses those end-to-end latencies
//! into the percentiles an operator writes SLOs against. Percentiles are
//! **exact** (computed over the full sorted latency vector by the
//! nearest-rank rule), not bucketed: the power-of-two
//! [`LatencyHistogram`](seqio_simcore::LatencyHistogram) is fine for mean
//! response times but far too coarse to resolve a p99.9.

use seqio_simcore::SimDuration;

/// Exact end-to-end latency percentiles over one run's completed sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSlo {
    /// Sessions the generator admitted (arrived before the horizon).
    pub sessions: u64,
    /// Sessions whose final byte reached the client before the horizon —
    /// only these contribute latencies.
    pub completed: u64,
    /// Median end-to-end session latency in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile latency in milliseconds.
    pub p999_ms: f64,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Worst completed-session latency in milliseconds.
    pub max_ms: f64,
}

impl SessionSlo {
    /// Summarizes `latencies` (one entry per *completed* session, any
    /// order) for a run that admitted `sessions` sessions in total.
    /// Returns `None` when no session completed — there is no latency
    /// distribution to summarize.
    pub fn from_latencies(sessions: u64, mut latencies: Vec<SimDuration>) -> Option<SessionSlo> {
        if latencies.is_empty() {
            return None;
        }
        latencies.sort_unstable();
        let completed = latencies.len() as u64;
        let sum_ns: u128 = latencies.iter().map(|d| d.as_nanos() as u128).sum();
        let mean_ms = (sum_ns as f64 / completed as f64) / 1e6;
        Some(SessionSlo {
            sessions,
            completed,
            p50_ms: percentile_ms(&latencies, 0.50),
            p95_ms: percentile_ms(&latencies, 0.95),
            p99_ms: percentile_ms(&latencies, 0.99),
            p999_ms: percentile_ms(&latencies, 0.999),
            mean_ms,
            max_ms: latencies.last().expect("non-empty").as_millis_f64(),
        })
    }

    /// Fraction of admitted sessions that completed, in `[0, 1]`.
    pub fn completion_ratio(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.completed as f64 / self.sessions as f64
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted latency vector: the
/// smallest element such that at least a fraction `q` of the distribution
/// is at or below it. Total on every input: `q` is clamped into `[0, 1]`
/// (NaN reads as 0), `q = 0` maps to the minimum, `q = 1` to the maximum,
/// and only an empty slice yields `None` — no combination panics. Because
/// the rank is monotone in `q`, percentiles drawn from one sorted vector
/// can never invert (p50 ≤ p99 always holds).
pub fn percentile(sorted: &[SimDuration], q: f64) -> Option<SimDuration> {
    if sorted.is_empty() {
        return None;
    }
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
    let rank = (q * sorted.len() as f64).ceil() as usize;
    Some(sorted[rank.clamp(1, sorted.len()) - 1])
}

fn percentile_ms(sorted: &[SimDuration], q: f64) -> f64 {
    percentile(sorted, q).expect("from_latencies rejects empty input").as_millis_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn empty_latencies_give_no_summary() {
        assert_eq!(SessionSlo::from_latencies(10, vec![]), None);
    }

    #[test]
    fn percentiles_are_exact_over_a_known_distribution() {
        // 1..=1000 ms: nearest-rank percentiles are exactly q * 1000.
        let lats: Vec<SimDuration> = (1..=1000).map(ms).collect();
        let slo = SessionSlo::from_latencies(1000, lats).unwrap();
        assert_eq!(slo.sessions, 1000);
        assert_eq!(slo.completed, 1000);
        assert_eq!(slo.p50_ms, 500.0);
        assert_eq!(slo.p95_ms, 950.0);
        assert_eq!(slo.p99_ms, 990.0);
        assert_eq!(slo.p999_ms, 999.0);
        assert_eq!(slo.max_ms, 1000.0);
        assert!((slo.mean_ms - 500.5).abs() < 1e-9);
        assert_eq!(slo.completion_ratio(), 1.0);
    }

    #[test]
    fn input_order_does_not_matter() {
        let a = SessionSlo::from_latencies(4, vec![ms(4), ms(1), ms(3), ms(2)]).unwrap();
        let b = SessionSlo::from_latencies(4, vec![ms(1), ms(2), ms(3), ms(4)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_sample_pins_every_percentile() {
        let slo = SessionSlo::from_latencies(3, vec![ms(7)]).unwrap();
        assert_eq!(slo.completed, 1);
        assert_eq!(slo.p50_ms, 7.0);
        assert_eq!(slo.p999_ms, 7.0);
        assert_eq!(slo.max_ms, 7.0);
        assert!((slo.completion_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_ties_keep_percentiles_ordered() {
        // Heavy ties at the mode plus a lone outlier: nearest-rank must
        // resolve every mid percentile to the mode and only p99.9/max to
        // the outlier, with no inversion anywhere.
        let mut lats = vec![ms(5); 999];
        lats.push(ms(400));
        let slo = SessionSlo::from_latencies(1000, lats).unwrap();
        assert_eq!(slo.p50_ms, 5.0);
        assert_eq!(slo.p95_ms, 5.0);
        assert_eq!(slo.p99_ms, 5.0);
        assert_eq!(slo.p999_ms, 5.0);
        assert_eq!(slo.max_ms, 400.0);
        assert!(slo.p50_ms <= slo.p95_ms && slo.p95_ms <= slo.p99_ms);
        assert!(slo.p99_ms <= slo.p999_ms && slo.p999_ms <= slo.max_ms);
    }

    #[test]
    fn percentile_helper_is_total_and_monotone() {
        assert_eq!(percentile(&[], 0.5), None);
        let sorted: Vec<SimDuration> = (1..=7).map(ms).collect();
        // The extremes and out-of-range / NaN quantiles all resolve
        // without panicking.
        assert_eq!(percentile(&sorted, 0.0), Some(ms(1)));
        assert_eq!(percentile(&sorted, 1.0), Some(ms(7)));
        assert_eq!(percentile(&sorted, -3.0), Some(ms(1)));
        assert_eq!(percentile(&sorted, 42.0), Some(ms(7)));
        assert_eq!(percentile(&sorted, f64::NAN), Some(ms(1)));
        // Monotone in q across a fine grid, so summaries can never invert.
        let mut prev = SimDuration::ZERO;
        for i in 0..=1000 {
            let v = percentile(&sorted, i as f64 / 1000.0).unwrap();
            assert!(v >= prev, "percentile inverted at q={}", i as f64 / 1000.0);
            prev = v;
        }
    }

    #[test]
    fn tail_percentiles_need_enough_samples_to_separate() {
        // With 10,000 samples 0..10s, p99.9 lands in the top decile
        // strictly above p99 — the resolution the bucketed histogram
        // cannot provide.
        let lats: Vec<SimDuration> = (1..=10_000).map(ms).collect();
        let slo = SessionSlo::from_latencies(10_000, lats).unwrap();
        assert_eq!(slo.p99_ms, 9_900.0);
        assert_eq!(slo.p999_ms, 9_990.0);
        assert!(slo.p999_ms > slo.p99_ms);
    }
}
