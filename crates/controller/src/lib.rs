//! # seqio-controller
//!
//! Disk-controller model for the `seqio` workspace: per-port SATA links, a
//! shared aggregate bus, firmware CPU with buffer-management pressure, and
//! optional controller-level prefetching into an LRU extent cache.
//!
//! Together with [`seqio_disk`] this forms the DiskSim-equivalent substrate
//! for reproducing the ICDCS 2009 sequential-streams paper: the controller
//! is where the paper's Figure 8 (controller prefetch) and Figure 12/13
//! (buffer-management collapse and recovery) effects live.
//!
//! # Examples
//!
//! ```
//! use seqio_controller::{Controller, ControllerConfig, CtrlOutput, HostRequest};
//! use seqio_disk::{Disk, DiskConfig, RequestId};
//! use seqio_simcore::SimTime;
//!
//! let cfg = ControllerConfig::single_port();
//! let disk = Disk::new(DiskConfig::wd800jd(), 1);
//! let mut ctrl = Controller::new(cfg, vec![disk]);
//!
//! let outs = ctrl.submit(SimTime::ZERO, HostRequest::read(RequestId(1), 0, 0, 128));
//! // Relay `CtrlOutput::Event`s into your event loop and hand them back via
//! // `ctrl.on_event(at, event)`; `CtrlOutput::Complete` reports results.
//! assert!(!outs.is_empty());
//! # let _ = outs;
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod config;
mod model;

pub use cache::ExtentCache;
pub use config::ControllerConfig;
pub use model::{
    Controller, ControllerMetrics, CtrlEvent, CtrlOutput, HostRequest, PortFaultCounters,
};
