//! Ablation — graceful degradation under a straggler disk.
//!
//! The paper assumes healthy hardware; this ablation injects a seeded
//! straggler fault (a service-time multiplier on every media operation of
//! disk 0) and sweeps its severity. The question: does the stream
//! scheduler's advantage over the direct path survive a degraded disk, or
//! does a slow spindle erase the benefit of staged sequential fills? The
//! issue's acceptance bar — scheduler >= 2x direct at 100 streams on the
//! degraded disk — is asserted here and in
//! `crates/node/tests/fault_injection.rs`.

use seqio_bench::{window_secs, Figure, Grid};
use seqio_node::{Experiment, FaultPlan, Frontend};
use seqio_simcore::units::MIB;

fn main() {
    let (warmup, duration) = window_secs((3, 3), (4, 8));
    let severities = [1.0, 2.0, 4.0, 8.0];

    let mut grid = Grid::new();
    for (label, fe) in
        [("Direct", None), ("Scheduler", Some(Frontend::stream_scheduler_with_readahead(4 * MIB)))]
    {
        for &factor in &severities {
            // The disk degrades when the measured window opens: the warmup
            // (stream detection, staging ramp-up) runs on healthy hardware,
            // the measurement captures how each path sustains the straggler.
            let mut b = Experiment::builder()
                .streams_per_disk(100)
                .faults(FaultPlan::new().straggler(0, factor, warmup, None))
                .warmup(warmup)
                .duration(duration)
                .seed(11);
            if let Some(f) = &fe {
                b = b.frontend(f.clone());
            }
            grid = grid.point(label, format!("{factor:.0}x"), b.build());
        }
    }

    let mut fig = Figure::new(
        "Ablation",
        "Throughput vs straggler severity: direct vs scheduler (100 streams, 1 disk)",
        "Straggler factor",
        "Throughput (MBytes/s)",
    );
    grid.run().fill(&mut fig, |r| r.total_throughput_mbs());
    fig.report("ablation_faults");

    let direct = fig.series[0].ys();
    let sched = fig.series[1].ys();
    for (i, &factor) in severities.iter().enumerate() {
        assert!(
            sched[i] >= 2.0 * direct[i],
            "scheduler must sustain >= 2x direct at {factor}x straggler: \
             {:.1} vs {:.1} MB/s",
            sched[i],
            direct[i]
        );
    }
    // Severity must actually bite: the healthiest point outruns the worst.
    assert!(
        sched[0] > sched[severities.len() - 1],
        "an 8x straggler should cost the scheduler throughput: {:?}",
        sched
    );
    println!(
        "scheduler advantage: {:.1}x at healthy, {:.1}x at 8x straggler",
        sched[0] / direct[0],
        sched[3] / direct[3]
    );
}
