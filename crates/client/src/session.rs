//! Session pre-generation: the deterministic user population.
//!
//! The open-loop driver materializes the whole session schedule before
//! any node advances: arrival instants from the [`ArrivalProcess`], title
//! choices from the [`ZipfSampler`], and a fixed title → (node, disk,
//! extent) placement. Pre-generation keeps the schedule a pure function
//! of the configuration and one dedicated RNG stream, so per-node
//! execution can fan out across workers without any cross-node RNG
//! coupling — the foundation of the bit-identical-at-any-`SEQIO_JOBS`
//! guarantee.

use seqio_disk::Lba;
use seqio_simcore::{SeqioError, SimDuration, SimRng, SimTime};

use crate::arrivals::{ArrivalProcess, RateModulation, ZipfSampler};

/// Open-loop session workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalConfig {
    /// Base session arrival rate, sessions per second (cluster-wide).
    pub rate_per_sec: f64,
    /// Rate modulation on top of the base rate.
    pub modulation: RateModulation,
    /// Catalogue size: sessions pick one of this many titles.
    pub titles: usize,
    /// Zipf popularity exponent over the catalogue (0 = uniform).
    pub zipf_exponent: f64,
    /// Sequential requests each session issues before it ends.
    pub requests_per_session: u64,
    /// Viewing-time bound: a session still live this long after its
    /// arrival is abandoned (retired from its node, excluded from the
    /// latency distribution). `None` lets every session run to
    /// completion.
    pub session_lifetime: Option<SimDuration>,
}

impl Default for ArrivalConfig {
    /// 100 sessions/s, constant rate, 1024-title catalogue at the classic
    /// VoD exponent 0.8, 4 requests per session, unbounded lifetime.
    fn default() -> Self {
        ArrivalConfig {
            rate_per_sec: 100.0,
            modulation: RateModulation::Constant,
            titles: 1024,
            zipf_exponent: 0.8,
            requests_per_session: 4,
            session_lifetime: None,
        }
    }
}

impl ArrivalConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SeqioError> {
        if !self.rate_per_sec.is_finite() || self.rate_per_sec <= 0.0 {
            return Err(SeqioError::Experiment(format!(
                "arrival rate must be positive and finite, got {}",
                self.rate_per_sec
            )));
        }
        self.modulation.validate()?;
        if self.titles == 0 {
            return Err(SeqioError::Experiment("need at least one title".into()));
        }
        if !self.zipf_exponent.is_finite() || self.zipf_exponent < 0.0 {
            return Err(SeqioError::Experiment(format!(
                "Zipf exponent must be finite and non-negative, got {}",
                self.zipf_exponent
            )));
        }
        if self.requests_per_session == 0 {
            return Err(SeqioError::Experiment("sessions must issue at least one request".into()));
        }
        if self.session_lifetime == Some(SimDuration::ZERO) {
            return Err(SeqioError::Experiment("session lifetime must be positive".into()));
        }
        Ok(())
    }
}

/// One pre-generated session: a user who arrives at `arrival` and
/// sequentially reads `requests` requests of the title's extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionSpec {
    /// Global session id, dense in arrival order.
    pub id: usize,
    /// Arrival instant (simulated).
    pub arrival: SimTime,
    /// Catalogue rank the session watches.
    pub title: usize,
    /// Storage node holding the title.
    pub node: usize,
    /// Disk on that node holding the title.
    pub disk: usize,
    /// First block of the title's extent.
    pub start: Lba,
    /// Sequential requests the session issues.
    pub requests: u64,
}

/// Lays one title onto the cluster: titles round-robin over nodes, then
/// over each node's disks, then over fixed-size extents on the disk, so
/// popular (low-rank) titles spread across nodes while every session of
/// one title hits the same extent — the hot-set locality a VoD workload
/// exhibits.
fn place_title(
    title: usize,
    nodes: usize,
    disks_per_node: usize,
    extent_blocks: u64,
    usable_blocks: u64,
) -> (usize, usize, Lba) {
    let node = title % nodes;
    let disk = (title / nodes) % disks_per_node;
    let slot_count = (usable_blocks / extent_blocks).max(1);
    let slot = (title / (nodes * disks_per_node)) as u64 % slot_count;
    (node, disk, slot * extent_blocks)
}

/// Materializes the full session schedule in arrival order.
///
/// `seed` names the dedicated session RNG stream (already derived away
/// from every storage seed by the caller); `horizon` bounds arrivals;
/// `usable_blocks` is one disk's capacity in blocks and bounds title
/// extents.
///
/// # Errors
///
/// Rejects invalid configurations, a title extent larger than the disk,
/// and a zero node/disk count.
pub fn generate_sessions(
    cfg: &ArrivalConfig,
    nodes: usize,
    disks_per_node: usize,
    request_blocks: u64,
    usable_blocks: u64,
    horizon: SimDuration,
    seed: u64,
) -> Result<Vec<SessionSpec>, SeqioError> {
    cfg.validate()?;
    if nodes == 0 || disks_per_node == 0 {
        return Err(SeqioError::Experiment("need at least one node and one disk".into()));
    }
    let extent_blocks = cfg
        .requests_per_session
        .checked_mul(request_blocks)
        .filter(|&b| b <= usable_blocks)
        .ok_or_else(|| {
            SeqioError::Experiment(format!(
                "a session extent of {} requests x {request_blocks} blocks does not fit \
                 a {usable_blocks}-block disk",
                cfg.requests_per_session
            ))
        })?;
    let mut rng = SimRng::seed_from(seed);
    let mut arrivals = ArrivalProcess::new(cfg.rate_per_sec, cfg.modulation, horizon, rng.fork(1))?;
    let zipf = ZipfSampler::new(cfg.titles, cfg.zipf_exponent)?;
    let mut title_rng = rng.fork(2);
    let mut out = Vec::new();
    while let Some(arrival) = arrivals.next_arrival() {
        let title = zipf.sample(&mut title_rng);
        let (node, disk, start) =
            place_title(title, nodes, disks_per_node, extent_blocks, usable_blocks);
        out.push(SessionSpec {
            id: out.len(),
            arrival,
            title,
            node,
            disk,
            start,
            requests: cfg.requests_per_session,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ArrivalConfig {
        ArrivalConfig { rate_per_sec: 200.0, titles: 64, ..ArrivalConfig::default() }
    }

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        let a =
            generate_sessions(&cfg(), 4, 2, 128, 1 << 24, SimDuration::from_secs(5), 9).unwrap();
        let b =
            generate_sessions(&cfg(), 4, 2, 128, 1 << 24, SimDuration::from_secs(5), 9).unwrap();
        assert_eq!(a, b);
        let c =
            generate_sessions(&cfg(), 4, 2, 128, 1 << 24, SimDuration::from_secs(5), 10).unwrap();
        assert_ne!(a, c, "a different seed draws a different schedule");
        assert!(!a.is_empty());
    }

    #[test]
    fn sessions_are_dense_ordered_and_in_bounds() {
        let sessions =
            generate_sessions(&cfg(), 3, 4, 128, 1 << 24, SimDuration::from_secs(5), 1).unwrap();
        let mut last = SimTime::ZERO;
        for (i, s) in sessions.iter().enumerate() {
            assert_eq!(s.id, i);
            assert!(s.arrival >= last);
            assert!(s.node < 3 && s.disk < 4);
            assert!(s.title < 64);
            assert!(s.start + s.requests * 128 <= 1 << 24, "extent inside the disk");
            last = s.arrival;
        }
    }

    #[test]
    fn one_title_always_lands_on_one_extent() {
        let sessions =
            generate_sessions(&cfg(), 2, 2, 128, 1 << 24, SimDuration::from_secs(10), 3).unwrap();
        let mut homes = std::collections::HashMap::new();
        for s in &sessions {
            let home = homes.entry(s.title).or_insert((s.node, s.disk, s.start));
            assert_eq!(*home, (s.node, s.disk, s.start), "title placement is static");
        }
        assert!(homes.len() > 10, "popular catalogue gets broad coverage");
    }

    #[test]
    fn oversized_extents_are_rejected() {
        let mut c = cfg();
        c.requests_per_session = 1 << 40;
        let err =
            generate_sessions(&c, 1, 1, 128, 1 << 24, SimDuration::from_secs(1), 1).unwrap_err();
        assert!(err.to_string().contains("does not fit"));
    }
}
