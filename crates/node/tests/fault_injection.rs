//! End-to-end fault injection: a seeded `FaultPlan` threaded through the
//! node must degrade the direct path, leave the stream scheduler's
//! advantage intact (graceful degradation), surface its counters in
//! `RunResult`, and change nothing at all when disabled.

use seqio_node::{Experiment, FaultPlan, Frontend, RetryPolicy, RunResult};
use seqio_simcore::units::MIB;
use seqio_simcore::SimDuration;

fn fingerprint(r: &RunResult) -> String {
    format!(
        "{} {} {:?} {:?} {:?} {:?} {:?} {:?} {:?}",
        r.bytes_delivered,
        r.requests_completed,
        r.disk_seeks,
        r.disk_ops,
        r.disk_read_errors,
        r.disk_retries,
        r.disk_timeouts,
        r.per_stream_mbs,
        r.window,
    )
}

/// The acceptance bar from the issue: with a fixed seed and a straggler
/// plan on the (single) disk, the stream scheduler still sustains at
/// least twice the direct-path throughput at 100 streams.
#[test]
fn scheduler_sustains_2x_direct_on_a_straggler_disk() {
    let plan = FaultPlan::new().straggler(0, 4.0, SimDuration::ZERO, None);
    let run = |fe: Option<Frontend>| {
        let mut b = Experiment::builder()
            .streams_per_disk(100)
            .faults(plan.clone())
            .warmup(SimDuration::from_secs(3))
            .duration(SimDuration::from_secs(3))
            .seed(11);
        if let Some(f) = fe {
            b = b.frontend(f);
        }
        b.run()
    };
    let direct = run(None);
    let sched = run(Some(Frontend::stream_scheduler_with_readahead(4 * MIB)));
    let td = direct.total_throughput_mbs();
    let ts = sched.total_throughput_mbs();
    assert!(
        ts >= 2.0 * td,
        "scheduler must sustain >= 2x direct on a 4x straggler disk: {ts:.1} vs {td:.1} MB/s"
    );
    // The degraded disk slows every op 4x, so both paths sit well below
    // the healthy streaming rate — the straggler is actually biting.
    assert!(ts < 40.0, "4x straggler should cap scheduler throughput: {ts:.1} MB/s");
}

/// With long residencies (`N` > 1), a stream on a disk degraded past the
/// rotate threshold is retired after every fill instead of holding its
/// dispatch slot for the whole residency.
#[test]
fn degraded_disks_rotate_streams_out_early() {
    let cfg = seqio_core::ServerConfig::small_dispatch(1, 2 * MIB, 8);
    let run = |plan: Option<FaultPlan>| {
        let mut b = Experiment::builder()
            .streams_per_disk(20)
            .frontend(Frontend::StreamScheduler(cfg.clone()))
            .warmup(SimDuration::from_secs(1))
            .duration(SimDuration::from_secs(2))
            .seed(13);
        if let Some(p) = plan {
            b = b.faults(p);
        }
        b.run()
    };
    let healthy = run(None);
    let degraded = run(Some(FaultPlan::new().straggler(0, 4.0, SimDuration::ZERO, None)));
    assert_eq!(
        healthy.server_metrics.expect("stream fe").degraded_rotations,
        0,
        "healthy runs never rotate on degradation"
    );
    let m = degraded.server_metrics.expect("stream fe");
    assert!(
        m.degraded_rotations > 0,
        "degraded disk must rotate streams out early (threshold 2.0, factor 4.0)"
    );
    assert!(degraded.requests_completed > 0);
}

#[test]
fn error_and_retry_counters_are_surfaced_per_disk() {
    let plan = FaultPlan::new().read_errors(0, 0.1);
    let r = Experiment::builder()
        .streams_per_disk(10)
        .faults(plan)
        .warmup(SimDuration::from_millis(500))
        .duration(SimDuration::from_secs(2))
        .seed(7)
        .run();
    assert_eq!(r.disk_read_errors.len(), 1);
    assert_eq!(r.disk_retries.len(), 1);
    assert_eq!(r.disk_timeouts.len(), 1);
    assert!(r.disk_read_errors[0] > 0, "10% error rate must produce errors");
    assert!(r.disk_retries[0] > 0, "errored fetches must be retried");
    assert_eq!(r.disk_timeouts[0], 0, "no deadline configured, nothing times out");
    assert!(r.requests_completed > 0, "errors never lose requests");
}

#[test]
fn request_deadline_counts_timeouts() {
    // A 100 us deadline is shorter than any media access, so essentially
    // every request times out; retries are disabled to isolate the counter.
    let plan = FaultPlan::new().straggler(0, 1.5, SimDuration::ZERO, None).retry(RetryPolicy {
        max_retries: 0,
        backoff: SimDuration::from_micros(500),
        timeout: SimDuration::from_micros(100),
    });
    let r = Experiment::builder()
        .streams_per_disk(5)
        .faults(plan)
        .warmup(SimDuration::from_millis(200))
        .duration(SimDuration::from_secs(1))
        .seed(5)
        .run();
    assert!(r.disk_timeouts[0] > 0, "sub-service-time deadline must count timeouts");
    assert_eq!(r.disk_retries[0], 0, "retries disabled by the policy");
    assert!(r.requests_completed > 0, "timed-out requests still complete");
}

/// Faults are strictly opt-in: an absent plan and an empty plan both
/// reproduce the healthy run bit for bit.
#[test]
fn disabled_faults_change_nothing() {
    let base = |fe: Option<Frontend>| {
        let mut b = Experiment::builder()
            .streams_per_disk(20)
            .warmup(SimDuration::from_millis(500))
            .duration(SimDuration::from_secs(1))
            .seed(42);
        if let Some(f) = fe {
            b = b.frontend(f);
        }
        b
    };
    for fe in [None, Some(Frontend::stream_scheduler_with_readahead(MIB))] {
        let healthy = base(fe.clone()).run();
        let empty_plan = base(fe.clone()).faults(FaultPlan::new()).run();
        assert_eq!(
            fingerprint(&healthy),
            fingerprint(&empty_plan),
            "an empty FaultPlan must be a no-op ({fe:?})"
        );
        assert!(healthy.disk_read_errors.iter().all(|&e| e == 0));
        assert!(healthy.disk_retries.iter().all(|&e| e == 0));
        assert!(healthy.disk_timeouts.iter().all(|&e| e == 0));
    }
}

/// Conservation under faults: a finite workload through the stream
/// scheduler completes exactly, byte for byte, with errors, a straggler
/// window and a bad region all active — no request is lost to a retry
/// path and no staged buffer goes unaccounted.
#[test]
fn finite_faulted_workload_conserves_requests() {
    let streams = 8u64;
    let reqs = 30u64;
    let r = Experiment::builder()
        .streams_per_disk(streams as usize)
        .frontend(Frontend::stream_scheduler_with_readahead(MIB))
        .requests_per_stream(reqs)
        .faults(
            FaultPlan::new()
                .straggler(
                    0,
                    3.0,
                    SimDuration::from_millis(200),
                    Some(SimDuration::from_millis(400)),
                )
                .read_errors(0, 0.05)
                .bad_region(0, 0, 1 << 20, SimDuration::from_millis(1)),
        )
        .warmup(SimDuration::ZERO)
        .duration(SimDuration::from_secs(120))
        .seed(9)
        .run();
    assert_eq!(r.requests_completed, streams * reqs, "every request completes exactly once");
    assert_eq!(r.bytes_delivered, streams * reqs * 64 * 1024, "every byte is delivered");
    assert!(r.disk_read_errors[0] > 0, "the 5% error rate must have fired");
}

/// A fixed seed plus a fixed plan reproduces the faulted run exactly.
#[test]
fn faulted_runs_are_deterministic_for_a_seed() {
    let run = || {
        Experiment::builder()
            .streams_per_disk(15)
            .faults(
                FaultPlan::new()
                    .straggler(
                        0,
                        3.0,
                        SimDuration::from_millis(300),
                        Some(SimDuration::from_millis(700)),
                    )
                    .read_errors(0, 0.05)
                    .bad_region(0, 10_000, 50_000, SimDuration::from_millis(2)),
            )
            .warmup(SimDuration::from_millis(200))
            .duration(SimDuration::from_secs(1))
            .seed(77)
            .run()
    };
    let a = run();
    let b = run();
    assert_eq!(fingerprint(&a), fingerprint(&b), "same seed + plan must be bit-identical");
    assert!(a.disk_read_errors[0] > 0);
}
