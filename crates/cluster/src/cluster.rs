//! Cluster composition: per-node experiment construction, deterministic
//! fan-out over the sweep worker pool, and result merging.

use seqio_node::sweep::derive_seed;
use seqio_node::{Experiment, RunResult, Sweep};
use seqio_simcore::{FaultPlan, LatencyHistogram, MetricSeries, SeqioError, SimDuration};

use crate::router::{NodeHealth, Router, ShardPolicy};

/// A multi-node cluster experiment: `K` copies of a per-node
/// [`Experiment`] template behind a front-end [`Router`].
///
/// The client population is `K * template.total_streams()` global
/// streams. The router assigns each global stream to a node before
/// anything runs; each node then simulates its share as a full
/// single-node DES, and the per-node [`RunResult`]s merge into one
/// [`ClusterResult`] on a shared clock.
///
/// All three in-tree disciplines carry over: node simulations fan out
/// over the [`Sweep`] worker pool and stay bit-identical at any worker
/// count; faults are opt-in per node; observability is opt-in via the
/// template's `ObsConfig` and never perturbs results.
#[derive(Debug, Clone)]
pub struct ClusterExperiment {
    /// Per-node experiment template (shape, workload, frontend, clock).
    pub template: Experiment,
    /// Number of storage nodes `K`.
    pub nodes: usize,
    /// Stream sharding policy.
    pub policy: ShardPolicy,
    /// Per-node fault plans (`None` entries are healthy nodes). The
    /// template's own `faults` field must stay empty — cluster faults
    /// are always per node.
    pub node_faults: Vec<Option<FaultPlan>>,
    /// When set, node `k` runs with seed [`derive_seed`]`(base, k)`;
    /// when `None`, every node keeps the template seed (used by the
    /// 1-node equivalence oracle).
    pub base_seed: Option<u64>,
    /// Worker override for the fan-out (`None` = `SEQIO_JOBS`, then
    /// available parallelism).
    pub jobs: Option<usize>,
    /// Degraded threshold the straggler-aware router uses (defaults to
    /// the stream scheduler's `degraded_rotate_threshold`).
    pub degraded_threshold: f64,
    /// Per-node stream capacity for the straggler-aware deal.
    pub capacity_per_node: Option<usize>,
}

impl ClusterExperiment {
    /// Starts a builder: 1 node, identity routing, healthy, template
    /// defaults from [`Experiment::builder`].
    pub fn builder() -> ClusterExperimentBuilder {
        ClusterExperimentBuilder {
            spec: ClusterExperiment {
                template: Experiment::builder().build(),
                nodes: 1,
                policy: ShardPolicy::Identity,
                node_faults: vec![None],
                base_seed: None,
                jobs: None,
                degraded_threshold: seqio_core::ServerConfig::default_tuning()
                    .degraded_rotate_threshold,
                capacity_per_node: None,
            },
        }
    }

    /// Global client streams across the cluster.
    pub fn total_streams(&self) -> usize {
        self.nodes * self.template.total_streams()
    }

    /// The router this specification implies (health derived from the
    /// per-node fault plans).
    pub fn router(&self) -> Router {
        let disks = self.template.shape.total_disks();
        let health: Vec<NodeHealth> =
            self.node_faults.iter().map(|p| NodeHealth::from_faults(p.as_ref(), disks)).collect();
        let mut r = Router::new(self.policy, self.nodes)
            .with_health(health)
            .with_threshold(self.degraded_threshold);
        if let Some(cap) = self.capacity_per_node {
            r = r.with_capacity(cap);
        }
        r
    }

    /// Validates the full cluster specification.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`SeqioError`].
    pub fn validate(&self) -> Result<(), SeqioError> {
        self.template.validate()?;
        if self.template.faults.is_some() {
            return Err(SeqioError::Experiment(
                "cluster faults are per node: use node_fault(k, plan), not the template".into(),
            ));
        }
        if self.template.stream_counts.is_some() {
            return Err(SeqioError::Experiment(
                "the cluster owns per-disk stream layout; leave template.stream_counts unset"
                    .into(),
            ));
        }
        if self.template.replay.is_some() {
            return Err(SeqioError::Experiment("trace replay cannot be sharded".into()));
        }
        if self.node_faults.len() != self.nodes {
            return Err(SeqioError::Experiment(format!(
                "node_faults names {} nodes but the cluster has {}",
                self.node_faults.len(),
                self.nodes
            )));
        }
        for (k, plan) in self.node_faults.iter().enumerate() {
            if let Some(p) = plan {
                p.validate()?;
                if let Some(d) = p.max_disk() {
                    let disks = self.template.shape.total_disks();
                    if d >= disks {
                        return Err(SeqioError::Experiment(format!(
                            "node {k} fault plan names disk {d} but nodes have {disks} disks"
                        )));
                    }
                }
            }
        }
        self.router().validate()
    }

    /// Builds the per-node experiment spec for a node assigned
    /// `assigned` streams (`None` when the node received no streams and
    /// is skipped entirely).
    fn node_spec(&self, node: usize, assigned: usize) -> Option<Experiment> {
        if assigned == 0 {
            return None;
        }
        let mut spec = self.template.clone();
        let disks = spec.shape.total_disks();
        if assigned.is_multiple_of(disks) {
            // An even share keeps the uniform layout, so a 1-node
            // identity cluster runs the template spec verbatim.
            spec.streams_per_disk = assigned / disks;
        } else {
            let base = assigned / disks;
            let rem = assigned % disks;
            spec.stream_counts = Some((0..disks).map(|d| base + usize::from(d < rem)).collect());
        }
        spec.faults = self.node_faults[node].clone();
        if let Some(b) = self.base_seed {
            spec.seed = derive_seed(b, node);
        }
        Some(spec)
    }

    /// Runs every node and merges the results.
    ///
    /// # Errors
    ///
    /// Returns the first specification error; a valid specification
    /// always runs to completion.
    pub fn run(&self) -> Result<ClusterResult, SeqioError> {
        self.validate()?;
        let total = self.total_streams();
        let router = self.router();
        let assignment = router.assign(total);

        // Node k serves its assigned global ids in ascending order,
        // mapped onto local slots 0..n_k (disk-major, the node's own
        // stream order).
        let mut node_ids: Vec<Vec<usize>> = vec![Vec::new(); self.nodes];
        for (g, &k) in assignment.iter().enumerate() {
            node_ids[k].push(g);
        }

        let mut specs: Vec<Option<Experiment>> = Vec::with_capacity(self.nodes);
        for (k, ids) in node_ids.iter().enumerate() {
            let spec = self.node_spec(k, ids.len());
            if let Some(s) = &spec {
                s.validate()?;
            }
            specs.push(spec);
        }

        // Fan the populated nodes over the sweep pool. Seeds were
        // already derived per node, so no sweep-level base seed: a
        // skipped (empty) node must not shift its neighbours' seeds.
        let mut sweep = Sweep::builder();
        for spec in specs.iter().flatten() {
            sweep = sweep.point(spec.clone());
        }
        if let Some(j) = self.jobs {
            sweep = sweep.jobs(j);
        }
        let mut results = sweep.run().into_results().into_iter();

        let disks = self.template.shape.total_disks();
        let mut outcomes = Vec::with_capacity(self.nodes);
        for (k, spec) in specs.into_iter().enumerate() {
            let result = spec.as_ref().map(|_| results.next().expect("one result per spec"));
            outcomes.push(NodeOutcome {
                node: k,
                assigned_streams: node_ids[k].len(),
                health: NodeHealth::from_faults(self.node_faults[k].as_ref(), disks),
                spec,
                result,
            });
        }
        Ok(ClusterResult::merge(outcomes, assignment, node_ids))
    }
}

/// Builder for [`ClusterExperiment`].
#[derive(Debug, Clone)]
pub struct ClusterExperimentBuilder {
    spec: ClusterExperiment,
}

impl ClusterExperimentBuilder {
    /// Sets the per-node experiment template.
    pub fn template(mut self, t: Experiment) -> Self {
        self.spec.template = t;
        self
    }

    /// Sets the node count (resizes the per-node fault table).
    pub fn nodes(mut self, k: usize) -> Self {
        self.spec.nodes = k;
        self.spec.node_faults.resize(k, None);
        self
    }

    /// Sets the sharding policy.
    pub fn policy(mut self, p: ShardPolicy) -> Self {
        self.spec.policy = p;
        self
    }

    /// Installs a fault plan on one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is past the configured node count (call
    /// [`nodes`](Self::nodes) first).
    pub fn node_fault(mut self, node: usize, plan: FaultPlan) -> Self {
        assert!(node < self.spec.nodes, "node {node} past cluster size {}", self.spec.nodes);
        self.spec.node_faults[node] = Some(plan);
        self
    }

    /// Derives per-node seeds from a cluster base seed.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.spec.base_seed = Some(seed);
        self
    }

    /// Overrides the fan-out worker count.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.spec.jobs = Some(jobs);
        self
    }

    /// Overrides the degraded threshold for straggler-aware routing.
    pub fn degraded_threshold(mut self, t: f64) -> Self {
        self.spec.degraded_threshold = t;
        self
    }

    /// Caps the streams any single node accepts under the
    /// straggler-aware deal.
    pub fn capacity_per_node(mut self, cap: usize) -> Self {
        self.spec.capacity_per_node = Some(cap);
        self
    }

    /// Finalizes the specification without running it.
    pub fn build(self) -> ClusterExperiment {
        self.spec
    }

    /// Builds and runs in one step.
    ///
    /// # Errors
    ///
    /// Returns the first specification error.
    pub fn run(self) -> Result<ClusterResult, SeqioError> {
        self.spec.run()
    }
}

/// One node's share of a cluster run.
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// Node index `0..K`.
    pub node: usize,
    /// Streams the router assigned here.
    pub assigned_streams: usize,
    /// Health the router saw for this node.
    pub health: NodeHealth,
    /// The spec that ran (`None` when no streams were assigned and the
    /// node was skipped).
    pub spec: Option<Experiment>,
    /// The node's own result over its own realized window (`None` for
    /// skipped nodes).
    pub result: Option<RunResult>,
}

/// Merged outcome of a cluster run on the shared cluster clock.
///
/// All nodes start at `SimTime::ZERO`; the cluster's measurement window
/// is the **makespan** — the longest realized node window — and every
/// per-stream throughput is expressed over that shared window, so the
/// paper-style sum `total_throughput_mbs` equals total bytes over the
/// time the slowest node needed. A straggling node therefore drags the
/// whole cluster figure down exactly as it would a real batch of
/// clients waiting for their slowest shard.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// Per-node outcomes, indexed by node.
    pub nodes: Vec<NodeOutcome>,
    /// Global stream → node map the router produced.
    pub assignment: Vec<usize>,
    /// Per-stream throughput in MBytes/s over the cluster window, in
    /// global stream order.
    pub per_stream_mbs: Vec<f64>,
    /// The cluster window: the longest realized node window.
    pub window: SimDuration,
    /// Client response-time distribution merged across nodes.
    pub response: LatencyHistogram,
    /// Bytes delivered cluster-wide inside the measured windows.
    pub bytes_delivered: u64,
    /// Client requests completed cluster-wide.
    pub requests_completed: u64,
    /// Discrete events simulated across all node runs.
    pub events_simulated: u64,
    /// Merged metric time series (`nodeK.`-prefixed columns), when the
    /// template enabled metric sampling.
    pub metrics: Option<MetricSeries>,
}

impl ClusterResult {
    fn merge(
        nodes: Vec<NodeOutcome>,
        assignment: Vec<usize>,
        node_ids: Vec<Vec<usize>>,
    ) -> ClusterResult {
        let window = nodes
            .iter()
            .filter_map(|n| n.result.as_ref())
            .map(|r| r.window)
            .max()
            .unwrap_or(SimDuration::ZERO);
        let mut per_stream_mbs = vec![0.0; assignment.len()];
        let mut response = LatencyHistogram::new();
        let mut bytes = 0u64;
        let mut requests = 0u64;
        let mut events = 0u64;
        let mut parts: Vec<(String, &MetricSeries)> = Vec::new();
        for outcome in &nodes {
            let Some(result) = &outcome.result else { continue };
            // Rescale each stream's rate from its node's window to the
            // shared cluster window (ratio 1.0 for the slowest node, so a
            // 1-node cluster keeps its values bit-identical).
            let ratio = if result.window == window || window == SimDuration::ZERO {
                1.0
            } else {
                result.window.as_millis_f64() / window.as_millis_f64()
            };
            for (slot, &g) in node_ids[outcome.node].iter().enumerate() {
                per_stream_mbs[g] = result.per_stream_mbs[slot] * ratio;
            }
            response.merge(&result.response);
            bytes += result.bytes_delivered;
            requests += result.requests_completed;
            events += result.events_simulated;
            if let Some(series) = &result.metrics {
                parts.push((format!("node{}", outcome.node), series));
            }
        }
        let metrics = if parts.is_empty() {
            None
        } else {
            let labeled: Vec<(&str, &MetricSeries)> =
                parts.iter().map(|(l, s)| (l.as_str(), *s)).collect();
            Some(
                MetricSeries::merge_labeled(&labeled)
                    .expect("node series share the template's sampling interval"),
            )
        };
        ClusterResult {
            nodes,
            assignment,
            per_stream_mbs,
            window,
            response,
            bytes_delivered: bytes,
            requests_completed: requests,
            events_simulated: events,
            metrics,
        }
    }

    /// Cluster throughput: the sum of per-stream throughputs over the
    /// shared window, exactly as the paper aggregates a node.
    pub fn total_throughput_mbs(&self) -> f64 {
        self.per_stream_mbs.iter().sum()
    }

    /// One node's share of the cluster throughput.
    pub fn node_throughput_mbs(&self, node: usize) -> f64 {
        self.assignment
            .iter()
            .zip(&self.per_stream_mbs)
            .filter(|(&k, _)| k == node)
            .map(|(_, &mbs)| mbs)
            .sum()
    }

    /// Mean response time in milliseconds across every client request.
    pub fn mean_response_ms(&self) -> f64 {
        self.response.mean().as_millis_f64()
    }

    /// 99th-percentile response time in milliseconds cluster-wide.
    pub fn p99_response_ms(&self) -> f64 {
        self.response.quantile(0.99).map(|d| d.as_millis_f64()).unwrap_or(0.0)
    }

    /// The worst per-node mean response time in milliseconds — the
    /// tail-node view a cluster operator watches.
    pub fn max_node_mean_response_ms(&self) -> f64 {
        self.nodes
            .iter()
            .filter_map(|n| n.result.as_ref())
            .map(|r| r.mean_response_ms())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_template() -> Experiment {
        Experiment::builder()
            .streams_per_disk(4)
            .requests_per_stream(8)
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(30))
            .build()
    }

    #[test]
    fn builder_defaults_validate() {
        let c = ClusterExperiment::builder().template(quick_template()).build();
        assert!(c.validate().is_ok());
        assert_eq!(c.total_streams(), 4);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        // Identity routing on K > 1.
        let c = ClusterExperiment::builder().template(quick_template()).nodes(2).build();
        assert!(c.validate().is_err());
        // Template-level faults.
        let mut c = ClusterExperiment::builder().template(quick_template()).build();
        c.template.faults = Some(FaultPlan::new().read_errors(0, 0.01));
        assert!(c.validate().is_err());
        // Template-level stream_counts.
        let mut c = ClusterExperiment::builder().template(quick_template()).build();
        c.template.stream_counts = Some(vec![4]);
        assert!(c.validate().is_err());
        // Fault table length drift.
        let mut c = ClusterExperiment::builder().template(quick_template()).build();
        c.node_faults.clear();
        assert!(c.validate().is_err());
        // Node fault naming an absent disk.
        let c = ClusterExperiment::builder()
            .template(quick_template())
            .nodes(2)
            .policy(ShardPolicy::HashByStream)
            .node_fault(1, FaultPlan::new().read_errors(5, 0.01))
            .build();
        assert!(c.validate().is_err());
    }

    #[test]
    fn two_node_hash_cluster_merges_both_nodes() {
        let result = ClusterExperiment::builder()
            .template(quick_template())
            .nodes(2)
            .policy(ShardPolicy::HashByStream)
            .base_seed(7)
            .jobs(2)
            .run()
            .unwrap();
        assert_eq!(result.per_stream_mbs.len(), 8);
        assert_eq!(result.assignment.len(), 8);
        assert_eq!(result.requests_completed, 8 * 8);
        assert!(result.total_throughput_mbs() > 0.0);
        assert!(result.window > SimDuration::ZERO);
        // Exact deal: four streams per node, both nodes ran.
        for n in &result.nodes {
            assert_eq!(n.assigned_streams, 4);
            assert!(n.result.is_some());
        }
        // Node shares partition the total.
        let split = result.node_throughput_mbs(0) + result.node_throughput_mbs(1);
        assert!((split - result.total_throughput_mbs()).abs() < 1e-9);
        // Per-node seeds derive from (base, node).
        for (k, n) in result.nodes.iter().enumerate() {
            assert_eq!(n.spec.as_ref().unwrap().seed, derive_seed(7, k));
        }
    }

    #[test]
    fn empty_nodes_are_skipped_without_shifting_seeds() {
        // All streams steered away from the degraded node 0.
        let plan = FaultPlan::new().straggler(0, 4.0, SimDuration::ZERO, None);
        let result = ClusterExperiment::builder()
            .template(quick_template())
            .nodes(2)
            .policy(ShardPolicy::StragglerAware)
            .node_fault(0, plan)
            .base_seed(3)
            .run()
            .unwrap();
        assert_eq!(result.nodes[0].assigned_streams, 0);
        assert!(result.nodes[0].result.is_none() && result.nodes[0].spec.is_none());
        let n1 = &result.nodes[1];
        assert_eq!(n1.assigned_streams, 8);
        assert_eq!(n1.spec.as_ref().unwrap().seed, derive_seed(3, 1));
        assert!(n1.health == NodeHealth::healthy());
        assert_eq!(result.requests_completed, 8 * 8);
    }

    #[test]
    fn uneven_shares_fall_back_to_stream_counts() {
        let c = ClusterExperiment::builder().template(quick_template()).build();
        // 4 streams on 1 disk: even share, uniform layout preserved.
        let spec = c.node_spec(0, 4).unwrap();
        assert_eq!(spec.streams_per_disk, 4);
        assert!(spec.stream_counts.is_none());
        // Uneven share on an 8-disk node spreads the remainder.
        let mut c = c;
        c.template.shape = seqio_node::NodeShape::eight_disk();
        let spec = c.node_spec(0, 11).unwrap();
        assert_eq!(spec.stream_counts, Some(vec![2, 2, 2, 1, 1, 1, 1, 1]));
        assert_eq!(spec.total_streams(), 11);
        assert!(c.node_spec(0, 0).is_none());
    }
}
