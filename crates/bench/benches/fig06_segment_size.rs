//! Figure 6 — Effect of prefetching when increasing disk segment size.
//!
//! Paper: 30 sequential streams, 64 KB requests, 32 segments fixed; segment
//! size swept 32K–2M (so total cache grows with segment size). Throughput
//! improves dramatically, ~8 MB/s at 32 KB segments to ~40 MB/s at 2 MB.

use seqio_bench::{quick_mode, window_secs, Figure, Grid};
use seqio_disk::CacheConfig;
use seqio_node::{Experiment, NodeShape};
use seqio_simcore::units::{format_bytes, KIB, MIB};

fn main() {
    let (warmup, duration) = window_secs((2, 3), (4, 8));
    let segment_sizes: Vec<u64> = if quick_mode() {
        vec![32 * KIB, 256 * KIB, 2 * MIB]
    } else {
        vec![32 * KIB, 64 * KIB, 128 * KIB, 256 * KIB, 512 * KIB, MIB, 2 * MIB]
    };

    let mut grid = Grid::new();
    for &seg in &segment_sizes {
        let mut shape = NodeShape::single_disk();
        shape.disk.cache =
            CacheConfig { segment_count: 32, segment_bytes: seg, read_ahead_bytes: seg };
        grid = grid.point(
            "30 Streams",
            format_bytes(seg),
            Experiment::builder()
                .shape(shape)
                .streams_per_disk(30)
                .request_size(64 * KIB)
                .warmup(warmup)
                .duration(duration)
                .seed(66)
                .build(),
        );
    }

    let mut fig = Figure::new(
        "Figure 6",
        "Effect of disk segment size (32 segments, 30 streams, 64K requests)",
        "Segment size",
        "Throughput (MBytes/s)",
    );
    grid.run().fill(&mut fig, |r| r.total_throughput_mbs());
    fig.report("fig06_segment_size");

    // Shape check: monotonic-ish improvement, large factor end to end.
    let ys = fig.series[0].ys();
    let (first, last) = (ys[0], *ys.last().unwrap());
    assert!(last > 3.0 * first, "segment growth should help >3x: {first:.1} -> {last:.1}");
    println!(
        "shape ok: {first:.1} MB/s at 32K segments -> {last:.1} MB/s at 2M (paper: ~8 -> ~40)"
    );
}
