//! Property tests for the detection layer (paper §4.1): region bitmaps,
//! the distinct-block counter, threshold-crossing detection, and the
//! classifier's gc accounting under arbitrary interleavings.

use proptest::prelude::*;
use seqio_core::{Classification, Classifier, RegionBitmap};
use seqio_simcore::SimTime;

fn t(n: u64) -> SimTime {
    SimTime::from_nanos(n * 1_000_000)
}

proptest! {
    /// Bits live only inside `[base, base + len)`: ranges entirely outside
    /// the region set nothing, and the distinct-block count can never
    /// exceed the region length however ranges overlap or straddle.
    #[test]
    fn prop_bitmap_bits_confined_to_region(
        base in 0u64..10_000,
        len in 1u64..2_000,
        ranges in proptest::collection::vec((0u64..14_000, 1u64..300), 0..40),
    ) {
        let mut b = RegionBitmap::new(base, len);
        for (lba, blocks) in ranges {
            let newly = b.set_range(lba, blocks);
            if lba + blocks <= base || lba >= base + len {
                prop_assert_eq!(newly, 0, "range outside [{}, {}) set bits", base, base + len);
            }
            prop_assert!(b.set_count() <= len, "more bits than blocks in the region");
        }
    }

    /// The distinct-block count is monotone non-decreasing, and each call
    /// grows it by exactly the number of newly set bits.
    #[test]
    fn prop_bitmap_set_count_monotone(
        ranges in proptest::collection::vec((0u64..600, 1u64..100), 1..40),
    ) {
        let mut b = RegionBitmap::new(50, 512);
        let mut prev = 0;
        for (lba, blocks) in ranges {
            let newly = b.set_range(lba, blocks);
            prop_assert_eq!(b.set_count(), prev + newly);
            prop_assert!(b.set_count() >= prev, "set_count went backwards");
            prev = b.set_count();
        }
    }

    /// Detection regions span exactly `[B - offset, B + blocks + offset)`
    /// around their founding request: a second request inside that window
    /// joins the region, one outside it allocates a fresh region.
    #[test]
    fn prop_classifier_window_bounds(
        offset in 64u64..4096,
        first in 10_000u64..1_000_000,
        blocks in 1u64..128,
    ) {
        let threshold = offset * 3; // high enough that nothing detects here
        let mut inside = Classifier::new(offset, threshold);
        prop_assert_eq!(inside.observe(0, first, blocks, t(0)), Classification::Pending);
        prop_assert_eq!(inside.region_count(), 1);
        // Last block still inside the window on each side.
        inside.observe(0, first + blocks + offset - 1, 1, t(1));
        inside.observe(0, first - offset, 1, t(2));
        prop_assert_eq!(inside.region_count(), 1, "in-window requests must not allocate");

        let mut outside = Classifier::new(offset, threshold);
        let _ = outside.observe(0, first, blocks, t(0));
        // First block past the window on each side.
        outside.observe(0, first + blocks + offset, 1, t(1));
        outside.observe(0, first.saturating_sub(offset + 1), 1, t(2));
        prop_assert_eq!(outside.region_count(), 3, "out-of-window requests must allocate");
    }

    /// A sequential walk is promoted exactly when the distinct-block count
    /// crosses the threshold — never earlier, never later. (`threshold <=
    /// offset` keeps the walk inside the founding window until that point.)
    #[test]
    fn prop_detection_fires_iff_threshold_crossed(
        offset in 128u64..4096,
        req_blocks in 1u64..128,
        thresh_frac in 1u64..100,
        start in 0u64..1_000_000,
    ) {
        let threshold = (offset * thresh_frac / 100).max(1);
        let mut c = Classifier::new(offset, threshold);
        let mut distinct = 0u64;
        let mut i = 0u64;
        loop {
            let verdict = c.observe(0, start + i * req_blocks, req_blocks, t(i));
            distinct += req_blocks;
            if distinct >= threshold {
                prop_assert_eq!(verdict, Classification::Detected,
                    "request {} reached {} distinct blocks (threshold {})",
                    i, distinct, threshold);
                break;
            }
            prop_assert_eq!(verdict, Classification::Pending,
                "request {} detected early at {} distinct blocks (threshold {})",
                i, distinct, threshold);
            i += 1;
        }
        prop_assert_eq!(c.detections(), 1);
        prop_assert_eq!(c.region_count(), 0, "promoted region is consumed");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under arbitrary interleavings of observations and gc passes the
    /// classifier's accounting stays balanced: gc's return value matches
    /// the region-count delta, memory hits zero exactly when no regions
    /// remain, and a final full gc drains everything.
    #[test]
    fn prop_gc_accounting_balanced_under_interleaving(
        ops in proptest::collection::vec((0usize..3, 0u64..50, 1u64..64), 1..200),
    ) {
        let mut c = Classifier::new(256, 512);
        let mut clock = 0u64;
        let mut detections = 0u64;
        for (kind, slot, blocks) in ops {
            clock += 1;
            match kind {
                // Scattered observes across two disks; far-apart slots so
                // regions come and go independently.
                0 | 1 => {
                    let lba = slot * 1_000_000;
                    if c.observe(kind, lba, blocks, t(clock)) == Classification::Detected {
                        detections += 1;
                    }
                }
                _ => {
                    // Reclaim everything older than a random-ish cutoff.
                    let before = c.region_count();
                    let cutoff = t(clock.saturating_sub(slot));
                    let reclaimed = c.gc(cutoff);
                    prop_assert_eq!(before - reclaimed, c.region_count(),
                        "gc return value out of step with region count");
                }
            }
            prop_assert_eq!(c.memory_bytes() == 0, c.region_count() == 0,
                "memory accounting out of step with live regions");
            prop_assert_eq!(c.detections(), detections);
        }
        let live = c.region_count();
        prop_assert_eq!(c.gc(t(clock + 1)), live, "full gc reclaims every region");
        prop_assert_eq!(c.region_count(), 0);
        prop_assert_eq!(c.memory_bytes(), 0);
    }
}
