//! Optional per-request trace capture.
//!
//! When enabled on an [`Experiment`](crate::Experiment), the engine records
//! one [`TraceRecord`] per completed client request (within the measured
//! window), which downstream tooling can dump as CSV for latency analysis
//! or replay studies.

use std::fmt::Write as _;

use seqio_simcore::SimTime;

/// One completed client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Stream index within the experiment.
    pub stream: usize,
    /// Target disk.
    pub disk: usize,
    /// First block.
    pub lba: u64,
    /// Length in blocks.
    pub blocks: u64,
    /// When the client sent the request.
    pub sent: SimTime,
    /// When the response reached the client.
    pub completed: SimTime,
    /// Whether the buffered set served it without new disk I/O.
    pub from_memory: bool,
}

impl TraceRecord {
    /// Client-observed latency.
    pub fn latency(&self) -> seqio_simcore::SimDuration {
        self.completed.duration_since(self.sent)
    }
}

/// Renders records as CSV (with header).
pub fn to_csv(records: &[TraceRecord]) -> String {
    let mut out =
        String::from("stream,disk,lba,blocks,sent_ns,completed_ns,latency_us,from_memory\n");
    for r in records {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{:.1},{}",
            r.stream,
            r.disk,
            r.lba,
            r.blocks,
            r.sent.as_nanos(),
            r.completed.as_nanos(),
            r.latency().as_micros_f64(),
            r.from_memory
        );
    }
    out
}

/// Parses the CSV produced by [`to_csv`] back into records.
///
/// # Errors
///
/// Returns a message naming the first malformed line: wrong field count,
/// unparsable numbers, a `from_memory` field that is not exactly
/// `true`/`false`, a completion before the send time, or a `latency_us`
/// column inconsistent with `sent`/`completed`.
pub fn from_csv(csv: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in csv.lines().enumerate() {
        if i == 0 && line.starts_with("stream,") {
            continue; // header
        }
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 8 {
            return Err(format!("line {}: expected 8 fields, got {}", i + 1, f.len()));
        }
        let parse_u64 = |s: &str, what: &str| -> Result<u64, String> {
            s.parse().map_err(|_| format!("line {}: bad {what} {s:?}", i + 1))
        };
        let from_memory = match f[7].trim() {
            "true" => true,
            "false" => false,
            other => {
                return Err(format!("line {}: bad from_memory {other:?}", i + 1));
            }
        };
        let rec = TraceRecord {
            stream: parse_u64(f[0], "stream")? as usize,
            disk: parse_u64(f[1], "disk")? as usize,
            lba: parse_u64(f[2], "lba")?,
            blocks: parse_u64(f[3], "blocks")?,
            sent: SimTime::from_nanos(parse_u64(f[4], "sent")?),
            completed: SimTime::from_nanos(parse_u64(f[5], "completed")?),
            from_memory,
        };
        if rec.completed < rec.sent {
            return Err(format!("line {}: completed precedes sent", i + 1));
        }
        let latency_us: f64 = f[6]
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad latency_us {:?}", i + 1, f[6]))?;
        // `to_csv` writes the latency with one decimal ({:.1}), so allow
        // half a unit in the last place of rounding slack. NaN/inf parse
        // as valid f64 but make every comparison below vacuously false,
        // so reject them explicitly.
        if !latency_us.is_finite()
            || (latency_us - rec.latency().as_micros_f64()).abs() > 0.05 + 1e-9
        {
            return Err(format!(
                "line {}: latency_us {latency_us} does not match completed - sent ({:.1})",
                i + 1,
                rec.latency().as_micros_f64()
            ));
        }
        out.push(rec);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(stream: usize, sent_us: u64, done_us: u64) -> TraceRecord {
        TraceRecord {
            stream,
            disk: 0,
            lba: stream as u64 * 1000,
            blocks: 128,
            sent: SimTime::from_nanos(sent_us * 1_000),
            completed: SimTime::from_nanos(done_us * 1_000),
            from_memory: stream.is_multiple_of(2),
        }
    }

    #[test]
    fn latency_is_completion_minus_send() {
        let r = rec(1, 100, 350);
        assert_eq!(r.latency().as_micros_f64(), 250.0);
    }

    #[test]
    fn csv_round_trips() {
        let records = vec![rec(0, 0, 100), rec(1, 50, 400), rec(2, 60, 90)];
        let parsed = from_csv(&to_csv(&records)).unwrap();
        assert_eq!(parsed.len(), 3);
        for (a, b) in records.iter().zip(&parsed) {
            assert_eq!(a.stream, b.stream);
            assert_eq!(a.lba, b.lba);
            assert_eq!(a.sent, b.sent);
            assert_eq!(a.from_memory, b.from_memory);
        }
    }

    #[test]
    fn from_csv_reports_bad_lines() {
        assert!(from_csv("1,2,3").is_err());
        assert!(from_csv("a,b,c,d,e,f,g,h").is_err());
        assert!(from_csv("").unwrap().is_empty());
    }

    #[test]
    fn from_csv_rejects_garbage_from_memory() {
        // Anything other than exactly "true"/"false" is an error, not a
        // silent `false`.
        for bad in ["TRUE", "1", "yes", "tru", ""] {
            let line = format!("0,0,0,128,0,100000,100.0,{bad}");
            let err = from_csv(&line).unwrap_err();
            assert!(err.contains("line 1"), "{err}");
            assert!(err.contains("from_memory"), "{err}");
        }
        assert!(from_csv("0,0,0,128,0,100000,100.0,false").is_ok());
    }

    #[test]
    fn from_csv_validates_latency_against_timestamps() {
        // latency 100 us matches completed - sent = 100_000 ns.
        assert!(from_csv("0,0,0,128,0,100000,100.0,true").is_ok());
        // Rounding slack of half a ULP of the {:.1} format is accepted.
        assert!(from_csv("0,0,0,128,0,100049,100.0,true").is_ok());
        // A latency column that contradicts the timestamps is an error.
        let err = from_csv("0,0,0,128,0,100000,250.0,true").unwrap_err();
        assert!(err.contains("line 1") && err.contains("latency_us"), "{err}");
        // Unparsable latency names the line too.
        assert!(from_csv("0,0,0,128,0,100000,abc,true").is_err());
        // Completion before send is rejected.
        let err = from_csv("0,0,0,128,100000,0,100.0,true").unwrap_err();
        assert!(err.contains("precedes"), "{err}");
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&[rec(0, 0, 100), rec(1, 50, 400)]);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("stream,disk,lba"));
        assert_eq!(lines.clone().count(), 2);
        let row: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(row[0], "0");
        assert_eq!(row[6], "100.0");
        assert_eq!(row[7], "true");
    }
}
