//! # seqio-cluster
//!
//! Multi-node scale-out for the `seqio` storage-node simulation: `K`
//! full node simulations behind a deterministic front-end router,
//! co-simulated on one shared clock with mid-run stream migration.
//!
//! The paper's stream scheduler is a per-node building block; this crate
//! models the layer above it. A [`ClusterExperiment`] takes a per-node
//! [`Experiment`](seqio_node::Experiment) template and shards the global
//! client streams across nodes with a [`ShardPolicy`] (hash, range, or
//! straggler-aware steering driven by per-node [`NodeHealth`] derived
//! from fault plans). The driver then runs every node as a steppable
//! [`SimComponent`](seqio_simcore::SimComponent) on a single simulated
//! clock: statically to completion, or — with a [`RebalanceConfig`] — in
//! deterministic lockstep epochs, where a [`Rebalancer`] watches each
//! node's health and migrates live streams off degraded nodes, carrying
//! each stream's exact remainder to its new home. Per-node results merge
//! into a [`ClusterResult`] over the cluster **makespan** (exactly, per
//! global stream, when migrations occurred).
//!
//! Everything stays bit-deterministic at any worker count, faults are
//! opt-in per node, observability is opt-in via the template and never
//! feeds the rebalancer, and a 1-node scenario is bit-identical to
//! running the template [`Experiment`](seqio_node::Experiment) directly.
//!
//! # Examples
//!
//! Build through [`Scenario`], the unified single-node/cluster surface:
//!
//! ```
//! use seqio_cluster::{RebalanceConfig, Scenario, ShardPolicy};
//! use seqio_simcore::{FaultPlan, SimDuration};
//!
//! let result = Scenario::builder()
//!     .streams_per_disk(12)
//!     .requests_per_stream(12)
//!     .warmup(SimDuration::ZERO)
//!     .duration(SimDuration::from_secs(120))
//!     .nodes(2)
//!     .policy(ShardPolicy::HashByStream)
//!     .base_seed(7)
//!     // Node 1's only disk slows down 8x mid-run; check health every
//!     // 50 ms of simulated time and migrate its live streams away.
//!     .node_fault(1, FaultPlan::new().straggler(0, 8.0, SimDuration::from_millis(300), None))
//!     .rebalance(RebalanceConfig::new(SimDuration::from_millis(50)))
//!     .build()
//!     .unwrap()
//!     .run()
//!     .unwrap();
//! assert_eq!(result.per_stream_mbs.len(), 24);
//! assert!(!result.migrations.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod rebalance;
mod router;
mod scenario;
mod slo;

pub use cluster::{ClusterExperiment, ClusterExperimentBuilder, ClusterResult, NodeOutcome};
pub use rebalance::{
    MigratableStream, MigrationRecord, MoveDecision, NodeView, RebalanceConfig, Rebalancer,
};
pub use router::{NodeHealth, Router, ShardPolicy};
pub use scenario::{Scenario, ScenarioBuilder};
pub use slo::{percentile, SessionSlo};
