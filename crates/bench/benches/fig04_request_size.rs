//! Figure 4 — Impact of request size on throughput (simulated disk,
//! segment size tuned to the request size so no prefetching takes place,
//! 8 MB total disk cache).

use seqio_bench::{quick_mode, window_secs, Figure, Grid};
use seqio_disk::CacheConfig;
use seqio_node::{Experiment, NodeShape};
use seqio_simcore::units::{format_bytes, KIB, MIB};

fn main() {
    let (warmup, duration) = window_secs((2, 3), (4, 8));
    let request_sizes: Vec<u64> = if quick_mode() {
        vec![8 * KIB, 64 * KIB, 256 * KIB]
    } else {
        vec![8 * KIB, 16 * KIB, 64 * KIB, 128 * KIB, 256 * KIB]
    };
    let stream_counts: Vec<usize> =
        if quick_mode() { vec![1, 30, 100] } else { vec![1, 10, 30, 60, 100] };

    let mut grid = Grid::new();
    for &n in &stream_counts {
        let label = format!("{n} Stream{}", if n == 1 { "" } else { "s" });
        for &req in &request_sizes {
            // Tune segment size and read-ahead equal to the request size;
            // shrink the segment count to keep the cache at 8 MB (paper §3.1).
            let mut shape = NodeShape::single_disk();
            shape.disk.cache = CacheConfig {
                segment_count: ((8 * MIB) / req).max(1) as usize,
                segment_bytes: req,
                read_ahead_bytes: req,
            };
            grid = grid.point(
                &label,
                format_bytes(req),
                Experiment::builder()
                    .shape(shape)
                    .streams_per_disk(n)
                    .request_size(req)
                    .warmup(warmup)
                    .duration(duration)
                    .seed(44)
                    .build(),
            );
        }
    }

    let mut fig = Figure::new(
        "Figure 4",
        "Impact of request size on throughput (segment = request, 8MB cache)",
        "I/O Request Size",
        "Throughput (MB/s)",
    );
    grid.run().fill(&mut fig, |r| r.total_throughput_mbs());
    fig.report("fig04_request_size");

    // Shape checks: throughput grows with request size for every stream
    // count, and one stream far outperforms one hundred.
    for s in &fig.series {
        let ys = s.ys();
        assert!(
            ys.last().unwrap() > ys.first().unwrap(),
            "{}: larger requests must help ({ys:?})",
            s.label
        );
    }
    let one = fig.series.first().unwrap().ys();
    let hundred = fig.series.last().unwrap().ys();
    assert!(one[0] > 2.0 * hundred[0], "collapse missing at the smallest request size");
    println!(
        "shape ok: 64K request, 1 stream {:.0} MB/s vs 100 streams {:.0} MB/s",
        one[1], hundred[1]
    );
}
