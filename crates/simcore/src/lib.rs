//! # seqio-simcore
//!
//! Discrete-event simulation kernel for the `seqio` workspace — the
//! foundation under the disk, controller and storage-node models used to
//! reproduce *"Reducing Disk I/O Performance Sensitivity for Large Numbers
//! of Sequential Streams"* (ICDCS 2009).
//!
//! The crate provides four small, dependency-light building blocks:
//!
//! * [`SimTime`] / [`SimDuration`] — integer-nanosecond virtual time;
//! * [`EventQueue`] — a calendar (bucket-ring) queue with stable FIFO
//!   tie-breaking, so simulations are bit-for-bit reproducible; amortized
//!   O(1) push/pop. [`HeapEventQueue`] is the `BinaryHeap` reference
//!   implementation with identical semantics, kept for differential testing;
//! * [`SimRng`] — explicitly seeded randomness with per-component forking;
//! * [`SimComponent`] — the steppable-simulation contract
//!   (`init / peek_next_time / advance_to`) that lets a co-simulation
//!   driver advance several independent simulations on one shared clock;
//! * measurement: [`OnlineStats`], [`LatencyHistogram`], [`ThroughputMeter`];
//! * [`FaultPlan`] — deterministic, seeded per-disk fault schedules
//!   (stragglers, transient read errors, bad regions) consumed by the
//!   device models;
//! * [`FairShareLink`] — a shared-bandwidth client-facing network link
//!   dividing its capacity max-min fairly among concurrent transfers;
//! * [`ClauseFields`] — the shared `kind:key=value,...` clause grammar
//!   behind the `--faults` spec and the scenario trace files;
//! * [`EpochController`] — the feedback-controller contract polled by
//!   epoch-stepping drivers (cluster rebalancing, adaptive tuning);
//! * observability: [`ObsConfig`], [`SpanPhase`], [`MetricsHub`] /
//!   [`MetricSeries`] — strictly opt-in lifecycle-span and metric
//!   time-series recording, guaranteed not to perturb simulation output;
//! * kernel self-profiling: [`ProfConfig`] / [`KernelProfile`] — opt-in
//!   per-event-class count/duration accounting for the engine's dispatch
//!   loop, with calendar-queue shape statistics ([`QueueStats`]);
//! * [`SeqioError`] — typed validation errors shared by the higher layers.
//!
//! # Examples
//!
//! A minimal event loop:
//!
//! ```
//! use seqio_simcore::{EventQueue, SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev {
//!     Tick(u32),
//! }
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::ZERO + SimDuration::from_millis(1), Ev::Tick(0));
//! let mut fired = 0;
//! while let Some((now, Ev::Tick(i))) = q.pop() {
//!     fired += 1;
//!     if i < 9 {
//!         q.push(now + SimDuration::from_millis(1), Ev::Tick(i + 1));
//!     }
//! }
//! assert_eq!(fired, 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod calendar;
mod component;
mod controller;
mod error;
mod event;
mod fault;
mod link;
mod obs;
mod prof;
mod record;
mod rng;
mod stats;
mod time;
pub mod units;

pub use calendar::EventQueue;
pub use component::SimComponent;
pub use controller::EpochController;
pub use error::SeqioError;
pub use event::HeapEventQueue;
pub use fault::{BadRegion, DiskFaults, FaultPlan, RetryPolicy, Straggler};
pub use link::{max_min_rates, FairShareLink, LinkDelivery};
pub use obs::{MetricId, MetricKind, MetricSeries, MetricsHub, ObsConfig, SpanPhase};
pub use prof::{EventClassStats, KernelProfile, ProfConfig, ProfTally, QueueStats};
pub use record::{parse_duration, ClauseFields};
pub use rng::SimRng;
pub use stats::{LatencyHistogram, OnlineStats, ThroughputMeter};
pub use time::{SimDuration, SimTime};
