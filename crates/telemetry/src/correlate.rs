//! Cross-tier trace correlation: one end-to-end record per session.
//!
//! The layers below each observe a fragment of a session's life. The
//! client tier knows arrival instants and titles; the cluster driver
//! knows placement and every mid-run migration; each storage node records
//! phase-stamped [`SpanRecord`]s keyed by *local* stream slot. None of
//! them holds the whole story — and none needs to: the cluster result
//! already carries the final local-slot → global-id map
//! ([`ClusterResult::node_stream_ids`]) and the migration log, so the
//! join is a pure post-run computation that perturbs nothing.
//!
//! [`correlate`] performs that join. Each [`SessionTrace`] carries the
//! session's arrival, the node path it took (initial placement plus every
//! migration hop), and its spans from *all* nodes it visited, merged in
//! enqueue order. Session-level latency decomposes exactly into
//! `arrival_wait + per-phase time + gap` (see
//! [`SessionTrace::decompose`]) — the additive form tail attribution
//! needs.
//!
//! Traces serialize to JSON Lines ([`traces_to_jsonl`]) and parse back
//! ([`traces_from_jsonl`]), so `seqio report --correlate` and
//! `--attribute` work from files alone.

use std::fmt::Write as _;

use seqio_client::SessionSpec;
use seqio_cluster::ClusterResult;
use seqio_node::SpanRecord;
use seqio_simcore::{SimDuration, SimTime, SpanPhase};

use crate::json::{self, Json};

/// One span with the node that recorded it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// The node whose engine stamped this span.
    pub node: usize,
    /// The phase-stamped record, with its node-local stream index.
    pub record: SpanRecord,
}

/// The correlated end-to-end record of one session.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionTrace {
    /// Global session id (equals the global stream id).
    pub session: usize,
    /// Arrival instant; `t = 0` for closed-loop populations.
    pub arrival: SimTime,
    /// Catalogue title, when the client tier generated the session.
    pub title: Option<usize>,
    /// Requests the session was admitted to issue, when known. Without
    /// it a trace cannot distinguish "completed" from "abandoned".
    pub requests: Option<u64>,
    /// Nodes visited in order: initial placement, then one entry per
    /// migration hop.
    pub node_path: Vec<usize>,
    /// All spans the session's requests produced, across every node on
    /// the path, in enqueue order.
    pub spans: Vec<TraceSpan>,
}

/// The additive decomposition of one completed session's latency, in the
/// order [`bucket_names`] reports: arrival wait, the seven non-trivial
/// span phases, and the inter-request gap.
pub const BUCKETS: usize = 1 + (SpanPhase::COUNT - 1) + 1;

/// Human-readable bucket names, index-aligned with
/// [`SessionTrace::decompose`].
pub fn bucket_names() -> [&'static str; BUCKETS] {
    let mut names = ["arrival_wait"; BUCKETS];
    for (i, p) in SpanPhase::ALL.iter().enumerate().skip(1) {
        names[i] = p.name();
    }
    names[BUCKETS - 1] = "gap";
    names
}

impl SessionTrace {
    /// The instant the session's final byte reached its consumer: the
    /// maximal stamp of the last span. `None` until the session's full
    /// request budget produced spans — an abandoned or still-running
    /// session has no completion. Without a known budget the last
    /// recorded span is taken as final.
    pub fn completed(&self) -> Option<SimTime> {
        if let Some(budget) = self.requests {
            if (self.spans.len() as u64) < budget {
                return None;
            }
        }
        self.spans.iter().flat_map(|s| s.record.stamps.iter().flatten()).copied().max()
    }

    /// End-to-end session latency, arrival to completion.
    pub fn latency(&self) -> Option<SimDuration> {
        self.completed().map(|t| t.saturating_duration_since(self.arrival))
    }

    /// Time between the session's arrival and its first request hitting
    /// a storage node — injection and queueing ahead of service.
    pub fn arrival_wait(&self) -> Option<SimDuration> {
        self.spans.first().map(|s| s.record.enqueued().saturating_duration_since(self.arrival))
    }

    /// Per-phase time summed over every span of the session, in
    /// [`SpanPhase::ALL`] order (the `Enqueued` entry is always zero).
    pub fn phase_totals(&self) -> [SimDuration; SpanPhase::COUNT] {
        let mut out = [SimDuration::ZERO; SpanPhase::COUNT];
        for s in &self.spans {
            for (acc, d) in out.iter_mut().zip(s.record.phase_durations()) {
                *acc += d;
            }
        }
        out
    }

    /// Splits the session's latency into [`BUCKETS`] additive parts:
    /// arrival wait, the seven non-trivial phases, and the gap (time
    /// between requests — client pacing plus anything the phase stamps
    /// do not cover). The parts sum to [`latency`](Self::latency)
    /// whenever requests do not overlap in time; with overlap the gap
    /// saturates at zero and the parts over-cover the wall latency.
    /// `None` for sessions that never completed.
    pub fn decompose(&self) -> Option<[SimDuration; BUCKETS]> {
        let latency = self.latency()?;
        let mut out = [SimDuration::ZERO; BUCKETS];
        out[0] = self.arrival_wait()?;
        let phases = self.phase_totals();
        out[1..SpanPhase::COUNT].copy_from_slice(&phases[1..]);
        let covered: SimDuration = out.iter().copied().sum();
        out[BUCKETS - 1] = latency.saturating_sub(covered);
        Some(out)
    }
}

/// Joins a cluster result with the client tier's session schedule into
/// one trace per session. Requires span recording to have been enabled
/// on the run; nodes without spans contribute nothing. Works on
/// migrated sessions: spans recorded on every node along the path land
/// in the same trace, ordered by enqueue instant.
pub fn correlate(result: &ClusterResult, sessions: &[SessionSpec]) -> Vec<SessionTrace> {
    correlate_with(result, |g| {
        sessions.get(g).map(|s| (s.arrival, Some(s.title), Some(s.requests))).unwrap_or((
            SimTime::ZERO,
            None,
            None,
        ))
    })
}

/// [`correlate`] for runs without a client tier: every stream is a
/// session arriving at `t = 0` with no title and an unknown request
/// budget (the last recorded span reads as final).
pub fn correlate_cluster(result: &ClusterResult) -> Vec<SessionTrace> {
    correlate_with(result, |_| (SimTime::ZERO, None, None))
}

fn correlate_with(
    result: &ClusterResult,
    info: impl Fn(usize) -> (SimTime, Option<usize>, Option<u64>),
) -> Vec<SessionTrace> {
    let mut traces: Vec<SessionTrace> = result
        .assignment
        .iter()
        .enumerate()
        .map(|(g, &node)| {
            let (arrival, title, requests) = info(g);
            SessionTrace {
                session: g,
                arrival,
                title,
                requests,
                node_path: vec![node],
                spans: Vec::new(),
            }
        })
        .collect();
    for m in &result.migrations {
        if let Some(t) = traces.get_mut(m.stream) {
            t.node_path.push(m.to);
        }
    }
    for outcome in &result.nodes {
        let Some(r) = &outcome.result else { continue };
        let Some(spans) = &r.spans else { continue };
        let ids = &result.node_stream_ids[outcome.node];
        for s in spans {
            if let Some(&g) = ids.get(s.stream) {
                if let Some(t) = traces.get_mut(g) {
                    t.spans.push(TraceSpan { node: outcome.node, record: *s });
                }
            }
        }
    }
    for t in &mut traces {
        t.spans.sort_by_key(|s| (s.record.enqueued(), s.node, s.record.lba));
    }
    traces
}

/// Renders traces as JSON Lines: one object per session, span stamps as
/// an eight-entry array of nanosecond timestamps (`null` = phase
/// skipped).
pub fn traces_to_jsonl(traces: &[SessionTrace]) -> String {
    let mut out = String::new();
    for t in traces {
        let _ = write!(out, "{{\"session\":{},\"arrival_ns\":{}", t.session, t.arrival.as_nanos());
        match t.title {
            Some(title) => {
                let _ = write!(out, ",\"title\":{title}");
            }
            None => out.push_str(",\"title\":null"),
        }
        match t.requests {
            Some(n) => {
                let _ = write!(out, ",\"requests\":{n}");
            }
            None => out.push_str(",\"requests\":null"),
        }
        out.push_str(",\"nodes\":[");
        for (i, n) in t.node_path.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{n}");
        }
        out.push_str("],\"spans\":[");
        for (i, s) in t.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let r = &s.record;
            let _ = write!(
                out,
                "{{\"node\":{},\"stream\":{},\"disk\":{},\"lba\":{},\"blocks\":{},\
                 \"from_memory\":{},\"retries\":{},\"timed_out\":{},\"stamps\":[",
                s.node, r.stream, r.disk, r.lba, r.blocks, r.from_memory, r.retries, r.timed_out
            );
            for (k, stamp) in r.stamps.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                match stamp {
                    Some(at) => {
                        let _ = write!(out, "{}", at.as_nanos());
                    }
                    None => out.push_str("null"),
                }
            }
            out.push_str("]}");
        }
        out.push_str("]}\n");
    }
    out
}

/// Parses the JSON Lines written by [`traces_to_jsonl`].
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn traces_from_jsonl(text: &str) -> Result<Vec<SessionTrace>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(
            trace_from_json(&json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?)
                .map_err(|e| format!("line {}: {e}", i + 1))?,
        );
    }
    Ok(out)
}

fn trace_from_json(v: &Json) -> Result<SessionTrace, String> {
    let field = |key: &str| v.get(key).ok_or_else(|| format!("missing field {key:?}"));
    let opt_usize = |key: &str| -> Result<Option<usize>, String> {
        let f = field(key)?;
        if f.is_null() {
            Ok(None)
        } else {
            f.as_usize().map(Some).ok_or_else(|| format!("bad {key}"))
        }
    };
    let mut spans = Vec::new();
    for s in field("spans")?.as_arr().ok_or("spans is not an array")? {
        spans.push(span_from_json(s)?);
    }
    Ok(SessionTrace {
        session: field("session")?.as_usize().ok_or("bad session")?,
        arrival: SimTime::from_nanos(field("arrival_ns")?.as_u64().ok_or("bad arrival_ns")?),
        title: opt_usize("title")?,
        requests: opt_usize("requests")?.map(|n| n as u64),
        node_path: field("nodes")?
            .as_arr()
            .ok_or("nodes is not an array")?
            .iter()
            .map(|n| n.as_usize().ok_or_else(|| "bad node id".to_string()))
            .collect::<Result<_, _>>()?,
        spans,
    })
}

fn span_from_json(v: &Json) -> Result<TraceSpan, String> {
    let field = |key: &str| v.get(key).ok_or_else(|| format!("missing span field {key:?}"));
    let stamps_json = field("stamps")?.as_arr().ok_or("stamps is not an array")?;
    if stamps_json.len() != SpanPhase::COUNT {
        return Err(format!("expected {} stamps, got {}", SpanPhase::COUNT, stamps_json.len()));
    }
    let mut stamps = [None; SpanPhase::COUNT];
    for (slot, s) in stamps.iter_mut().zip(stamps_json) {
        if !s.is_null() {
            *slot = Some(SimTime::from_nanos(s.as_u64().ok_or("bad stamp")?));
        }
    }
    if stamps[SpanPhase::Enqueued.index()].is_none() {
        return Err("span lacks an enqueue stamp".into());
    }
    if stamps[SpanPhase::Delivered.index()].is_none() {
        return Err("span lacks a delivery stamp".into());
    }
    Ok(TraceSpan {
        node: field("node")?.as_usize().ok_or("bad node")?,
        record: SpanRecord {
            stream: field("stream")?.as_usize().ok_or("bad stream")?,
            disk: field("disk")?.as_usize().ok_or("bad disk")?,
            lba: field("lba")?.as_u64().ok_or("bad lba")?,
            blocks: field("blocks")?.as_u64().ok_or("bad blocks")?,
            from_memory: field("from_memory")?.as_bool().ok_or("bad from_memory")?,
            retries: field("retries")?.as_u64().ok_or("bad retries")? as u32,
            timed_out: field("timed_out")?.as_bool().ok_or("bad timed_out")?,
            stamps,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    fn span(node: usize, enq_us: u64, done_us: u64) -> TraceSpan {
        let mut stamps = [None; SpanPhase::COUNT];
        stamps[SpanPhase::Enqueued.index()] = Some(t(enq_us));
        stamps[SpanPhase::DiskComplete.index()] = Some(t(enq_us + (done_us - enq_us) / 2));
        stamps[SpanPhase::Delivered.index()] = Some(t(done_us));
        TraceSpan {
            node,
            record: SpanRecord {
                stream: 0,
                disk: 0,
                lba: 128,
                blocks: 16,
                from_memory: false,
                retries: 0,
                timed_out: false,
                stamps,
            },
        }
    }

    fn trace() -> SessionTrace {
        SessionTrace {
            session: 3,
            arrival: t(50),
            title: Some(7),
            requests: Some(2),
            node_path: vec![0, 1],
            spans: vec![span(0, 100, 200), span(1, 450, 700)],
        }
    }

    #[test]
    fn decomposition_is_additive() {
        let tr = trace();
        assert_eq!(tr.completed(), Some(t(700)));
        assert_eq!(tr.latency(), Some(SimDuration::from_micros(650)));
        assert_eq!(tr.arrival_wait(), Some(SimDuration::from_micros(50)));
        let parts = tr.decompose().unwrap();
        let sum: SimDuration = parts.iter().copied().sum();
        assert_eq!(sum, tr.latency().unwrap());
        // The inter-request gap (200us -> 450us) lands in the last bucket.
        assert_eq!(parts[BUCKETS - 1], SimDuration::from_micros(250));
        assert_eq!(bucket_names()[0], "arrival_wait");
        assert_eq!(bucket_names()[BUCKETS - 1], "gap");
    }

    #[test]
    fn incomplete_sessions_have_no_latency() {
        let mut tr = trace();
        tr.requests = Some(3); // one span short of the budget
        assert_eq!(tr.completed(), None);
        assert_eq!(tr.decompose(), None);
        tr.requests = None; // unknown budget: last span reads as final
        assert_eq!(tr.completed(), Some(t(700)));
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let traces = vec![
            trace(),
            SessionTrace {
                session: 9,
                arrival: SimTime::ZERO,
                title: None,
                requests: None,
                node_path: vec![2],
                spans: Vec::new(),
            },
        ];
        let jsonl = traces_to_jsonl(&traces);
        assert_eq!(jsonl.lines().count(), 2);
        let parsed = traces_from_jsonl(&jsonl).unwrap();
        assert_eq!(parsed, traces);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(traces_from_jsonl("{\"session\":0}").is_err());
        assert!(traces_from_jsonl("not json").is_err());
        // A span without a delivery stamp cannot be attributed.
        let mut tr = trace();
        tr.spans[0].record.stamps[SpanPhase::Delivered.index()] = None;
        let jsonl = traces_to_jsonl(&[tr]);
        assert!(traces_from_jsonl(&jsonl).is_err());
    }
}
