//! # seqio-hostsched
//!
//! A Linux-2.6.11-era kernel I/O path for the paper's baseline comparison
//! (Figure 2): per-file ramping read-ahead over a page cache
//! ([`StreamRa`]) and the block-layer schedulers of the day —
//! [`Noop`], [`Deadline`], [`Anticipatory`] and
//! [`Cfq`] — behind the [`IoScheduler`] trait.
//!
//! # Examples
//!
//! ```
//! use seqio_hostsched::{BlockRequest, IoScheduler, SchedDecision, SchedKind};
//! use seqio_simcore::SimTime;
//!
//! let mut sched = SchedKind::Anticipatory.build();
//! sched.add(BlockRequest { id: 1, process: 0, lba: 0, blocks: 32 }, SimTime::ZERO);
//! assert!(matches!(sched.next(SimTime::ZERO), SchedDecision::Dispatch(_)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod anticipatory;
mod cfq;
mod readahead;
mod scheduler;

pub use anticipatory::Anticipatory;
pub use cfq::Cfq;
pub use readahead::{RaOutcome, ReadaheadConfig, StreamRa};
pub use scheduler::{BlockRequest, Deadline, IoScheduler, Lba, Noop, SchedDecision, SchedKind};
