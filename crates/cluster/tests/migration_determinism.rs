//! Determinism of the shared-clock co-simulation with mid-run stream
//! migration: bit-identical results at any worker count — healthy or
//! faulted, rebalancer on or off, observability recorder on or off — and
//! exact conservation of the workload and span invariants across a
//! migrated stream. (The "never migrate to a more degraded node"
//! property lives as a proptest next to the planner in
//! `src/rebalance.rs`.)

use seqio_cluster::{ClusterExperiment, ClusterResult, RebalanceConfig, ShardPolicy};
use seqio_node::span::spans_to_csv;
use seqio_node::{Experiment, ObsConfig};
use seqio_simcore::units::KIB;
use seqio_simcore::{FaultPlan, SimDuration};

/// 2 single-disk nodes, 12 streams each under the hash deal, finite
/// batches so every run has an exact, conserved amount of work.
const STREAMS_PER_NODE: usize = 12;
const REQUESTS: u64 = 12;

fn template() -> Experiment {
    Experiment::builder()
        .streams_per_disk(STREAMS_PER_NODE)
        .request_size(64 * KIB)
        .requests_per_stream(REQUESTS)
        .warmup(SimDuration::ZERO)
        .duration(SimDuration::from_secs(120))
        .build()
}

/// A straggler on node 1's only disk, from 300 ms to the end of time.
fn straggler() -> FaultPlan {
    FaultPlan::new().straggler(0, 8.0, SimDuration::from_millis(300), None)
}

fn cluster(faulted: bool, rebalance: bool, obs: bool, jobs: usize) -> ClusterExperiment {
    let mut t = template();
    if obs {
        t.obs = Some(ObsConfig::all().sample_every(SimDuration::from_millis(10)));
    }
    let mut b = ClusterExperiment::builder()
        .template(t)
        .nodes(2)
        .policy(ShardPolicy::HashByStream)
        .base_seed(7)
        .jobs(jobs);
    if faulted {
        b = b.node_fault(1, straggler());
    }
    if rebalance {
        b = b.rebalance(RebalanceConfig::new(SimDuration::from_millis(50)));
    }
    b.build()
}

/// Every observable bit of a cluster run, including each node's raw
/// per-slot byte counters and the migration log.
fn fingerprint(r: &ClusterResult) -> String {
    let per_node: Vec<_> = r
        .nodes
        .iter()
        .map(|n| {
            n.result.as_ref().map(|res| {
                (
                    res.per_stream_bytes.clone(),
                    res.per_stream_mbs.iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
                    res.window,
                    res.events_simulated,
                )
            })
        })
        .collect();
    format!(
        "{:?} {:?} {:?} {:?} {} {} {} {:?} {:?}",
        r.per_stream_mbs.iter().map(|m| m.to_bits()).collect::<Vec<_>>(),
        r.assignment,
        r.node_stream_ids,
        r.migrations,
        r.bytes_delivered,
        r.requests_completed,
        r.events_simulated,
        r.window,
        per_node,
    )
}

const TOTAL_BYTES: u64 = 2 * STREAMS_PER_NODE as u64 * REQUESTS * 64 * KIB;

#[test]
fn faulted_rebalanced_run_is_bit_identical_across_worker_counts() {
    let one = cluster(true, true, false, 1).run().unwrap();
    let eight = cluster(true, true, false, 8).run().unwrap();
    assert!(!one.migrations.is_empty(), "the straggler must trigger migrations");
    assert_eq!(fingerprint(&one), fingerprint(&eight));
    // The full batch completes despite the straggler.
    assert_eq!(one.bytes_delivered, TOTAL_BYTES);
    assert_eq!(one.requests_completed, 2 * STREAMS_PER_NODE as u64 * REQUESTS);
}

#[test]
fn faulted_static_run_is_bit_identical_across_worker_counts() {
    let one = cluster(true, false, false, 1).run().unwrap();
    let four = cluster(true, false, false, 4).run().unwrap();
    assert!(one.migrations.is_empty());
    assert_eq!(fingerprint(&one), fingerprint(&four));
    assert_eq!(one.bytes_delivered, TOTAL_BYTES);
}

#[test]
fn healthy_rebalancer_is_exactly_the_static_cluster() {
    // With nothing degraded the rebalancer plans nothing, and the epoch
    // lockstep itself must not perturb a single bit relative to the
    // one-shot static run.
    let balanced = cluster(false, true, false, 2).run().unwrap();
    let static_ = cluster(false, false, false, 2).run().unwrap();
    assert!(balanced.migrations.is_empty());
    assert_eq!(fingerprint(&balanced), fingerprint(&static_));
}

#[test]
fn recorder_never_perturbs_a_rebalanced_run() {
    let dark = cluster(true, true, false, 2).run().unwrap();
    let lit = cluster(true, true, true, 2).run().unwrap();
    // Same migrations, same simulation outputs, bit for bit.
    assert_eq!(format!("{:?}", dark.migrations), format!("{:?}", lit.migrations));
    let mbs = |r: &ClusterResult| r.per_stream_mbs.iter().map(|m| m.to_bits()).collect::<Vec<_>>();
    assert_eq!(mbs(&dark), mbs(&lit));
    assert_eq!(dark.bytes_delivered, lit.bytes_delivered);
    assert_eq!(dark.events_simulated, lit.events_simulated);
    assert_eq!(dark.window, lit.window);
    // And the recordings themselves are deterministic across workers.
    let lit8 = cluster(true, true, true, 8).run().unwrap();
    for (a, b) in lit.nodes.iter().zip(&lit8.nodes) {
        let sa = a.result.as_ref().unwrap().spans.as_ref().expect("spans recorded");
        let sb = b.result.as_ref().unwrap().spans.as_ref().expect("spans recorded");
        assert_eq!(spans_to_csv(sa), spans_to_csv(sb));
    }
}

#[test]
fn span_lifecycle_survives_migration_exactly() {
    let result = cluster(true, true, true, 2).run().unwrap();
    assert!(!result.migrations.is_empty());

    // Gather every span of every global stream across all nodes.
    let mut requests_per_global = vec![0u64; result.assignment.len()];
    let mut bytes_per_global = vec![0u64; result.assignment.len()];
    for (k, node) in result.nodes.iter().enumerate() {
        let res = node.result.as_ref().unwrap();
        let spans = res.spans.as_ref().expect("spans recorded");
        for span in spans {
            let global = result.node_stream_ids[k][span.stream];
            requests_per_global[global] += 1;
            // Phase durations always sum exactly to the end-to-end
            // latency, on both sides of a migration.
            let total: SimDuration = span.phase_durations().iter().copied().sum();
            assert_eq!(total, span.total(), "span phase sum broke for stream {global}");
        }
        for (slot, &bytes) in res.per_stream_bytes.iter().enumerate() {
            bytes_per_global[result.node_stream_ids[k][slot]] += bytes;
        }
    }

    // A migrated stream's spans split across nodes but nothing is lost
    // or double-counted: every global stream completes its exact batch.
    for (g, &n) in requests_per_global.iter().enumerate() {
        assert_eq!(n, REQUESTS, "stream {g} completed {n} of {REQUESTS} requests");
        assert_eq!(bytes_per_global[g], REQUESTS * 64 * KIB);
    }
    // And at least one migrated stream really did deliver on both nodes.
    let split_stream = result.migrations.iter().find(|m| {
        let from = result.nodes[m.from].result.as_ref().unwrap();
        let slot = result.node_stream_ids[m.from].iter().position(|&g| g == m.stream).unwrap();
        from.per_stream_bytes[slot] > 0
    });
    assert!(split_stream.is_some(), "some stream should deliver on both its homes");
}

/// The raw material trace correlation joins on: a migrated stream's
/// spans, gathered across both its homes via `node_stream_ids`, form one
/// coherent per-stream timeline — phase stamps monotone over the cut,
/// source-side spans strictly before the migration instant's successors
/// on the target, no overlap. (`seqio-telemetry` builds `SessionTrace`s
/// from exactly this join; its own tests cover the higher-level view.)
#[test]
fn migrated_spans_interleave_into_one_monotone_timeline() {
    let result = cluster(true, true, true, 2).run().unwrap();
    assert!(!result.migrations.is_empty());

    // Per global stream: (enqueue, delivery, node) of every span.
    let mut timeline: Vec<Vec<(seqio_simcore::SimTime, seqio_simcore::SimTime, usize)>> =
        vec![Vec::new(); result.assignment.len()];
    for (k, node) in result.nodes.iter().enumerate() {
        for span in node.result.as_ref().unwrap().spans.as_ref().unwrap() {
            let global = result.node_stream_ids[k][span.stream];
            timeline[global].push((span.enqueued(), span.delivered(), k));
        }
    }
    let migrated: Vec<&seqio_cluster::MigrationRecord> = result.migrations.iter().collect();
    for line in &mut timeline {
        line.sort_unstable();
    }
    for m in &migrated {
        let line = &timeline[m.stream];
        // Node changes exactly once along the sorted timeline, at the
        // migration instant: everything enqueued on the source precedes
        // everything enqueued on the target.
        let first_target = line.iter().position(|&(_, _, k)| k == m.to);
        if let Some(split) = first_target {
            assert!(
                line[..split].iter().all(|&(_, _, k)| k == m.from),
                "stream {}: source spans after the target took over",
                m.stream
            );
            assert!(
                line[split..].iter().all(|&(_, _, k)| k == m.to),
                "stream {}: span bounced back to the source",
                m.stream
            );
            assert!(
                line[split].0 >= m.at,
                "stream {}: target span enqueued before the migration instant",
                m.stream
            );
            // The source accepts no new work after the cut; only its
            // in-flight request may still drain past it.
            assert!(
                line[..split].iter().all(|&(enq, _, _)| enq < m.at),
                "stream {}: source enqueued a request after the migration",
                m.stream
            );
        }
    }
    // Within each node's share of a stream, the closed-loop client is
    // strictly sequential: sorted by enqueue, deliveries never regress
    // and requests never overlap.
    for (g, line) in timeline.iter().enumerate() {
        for pair in line.windows(2) {
            if pair[0].2 == pair[1].2 {
                assert!(pair[0].1 <= pair[1].0, "stream {g}: requests overlap on one node");
            }
        }
    }
}
