//! Correlation across mid-run migration: a session moved between nodes
//! by the rebalancer must come back as ONE trace whose spans cover both
//! homes with monotone phase stamps — the tentpole property that makes
//! cross-tier traces trustworthy under PR 6's migration machinery.

use seqio_cluster::{ClusterExperiment, RebalanceConfig, ShardPolicy};
use seqio_node::{Experiment, ObsConfig};
use seqio_simcore::units::KIB;
use seqio_simcore::{FaultPlan, SimDuration, SimTime};
use seqio_telemetry::{correlate_cluster, traces_from_jsonl, traces_to_jsonl, TailAttribution};

const REQUESTS: u64 = 12;

/// The migration scenario from `seqio-cluster`'s determinism suite: two
/// single-disk nodes, node 1's disk goes 8x slower at 300 ms, the
/// rebalancer sweeps every 50 ms.
fn migrated_run() -> seqio_cluster::ClusterResult {
    let mut t = Experiment::builder()
        .streams_per_disk(12)
        .request_size(64 * KIB)
        .requests_per_stream(REQUESTS)
        .warmup(SimDuration::ZERO)
        .duration(SimDuration::from_secs(120))
        .build();
    t.obs = Some(ObsConfig::new().with_spans());
    ClusterExperiment::builder()
        .template(t)
        .nodes(2)
        .policy(ShardPolicy::HashByStream)
        .base_seed(7)
        .node_fault(1, FaultPlan::new().straggler(0, 8.0, SimDuration::from_millis(300), None))
        .rebalance(RebalanceConfig::new(SimDuration::from_millis(50)))
        .jobs(2)
        .run()
        .unwrap()
}

#[test]
fn a_migrated_session_is_one_trace_spanning_both_nodes() {
    let result = migrated_run();
    assert!(!result.migrations.is_empty(), "the straggler must trigger migrations");
    let traces = correlate_cluster(&result);
    assert_eq!(traces.len(), result.assignment.len());

    let mut checked_multi_node = 0;
    for m in &result.migrations {
        let t = &traces[m.stream];
        // The node path records the hop...
        assert_eq!(t.node_path.first(), Some(&result.assignment[m.stream]));
        assert!(t.node_path.contains(&m.to), "trace misses the migration target");
        // ...and the full request budget is present in ONE trace, in
        // globally monotone enqueue order.
        assert_eq!(t.spans.len() as u64, REQUESTS, "migrated session lost or duplicated spans");
        let mut prev = SimTime::ZERO;
        for s in &t.spans {
            assert!(s.record.enqueued() >= prev, "phase stamps regressed across the cut");
            prev = s.record.enqueued();
        }
        // Spans from both homes appear when the stream delivered on both.
        let nodes: Vec<usize> = t.spans.iter().map(|s| s.node).collect();
        if nodes.contains(&m.from) && nodes.contains(&m.to) {
            checked_multi_node += 1;
            // The node sequence along the trace changes exactly once.
            let flips = nodes.windows(2).filter(|w| w[0] != w[1]).count();
            assert_eq!(flips, 1, "session {} bounced between nodes", m.stream);
        }
    }
    assert!(checked_multi_node > 0, "no session actually delivered on both homes");

    // The unmigrated majority stays single-node and complete.
    for t in &traces {
        assert_eq!(t.spans.len() as u64, REQUESTS);
        if !result.migrations.iter().any(|m| m.stream == t.session) {
            assert_eq!(t.node_path.len(), 1);
            assert!(t.spans.iter().all(|s| s.node == t.node_path[0]));
        }
    }

    // The whole correlated record survives the JSONL interchange, and
    // attribution runs cleanly on a migrated run.
    let parsed = traces_from_jsonl(&traces_to_jsonl(&traces)).unwrap();
    assert_eq!(parsed, traces);
    let tail = TailAttribution::compute(&traces, 0.99, 1.0).unwrap();
    assert!((tail.share_sum_pct() - 100.0).abs() < 1e-6);
    // Closed-loop sessions all start at t=0, so the slowest sessions are
    // exactly those that lived through the straggler/migration; their
    // exemplars must name multi-node paths.
    assert!(tail.exemplars.iter().any(|e| e.node_path.len() > 1));
}
