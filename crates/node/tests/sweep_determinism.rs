//! Sweep determinism: the worker pool must not leak scheduling order into
//! results. A grid run on one worker and the same grid run on eight must
//! produce identical `RunResult` series, and derived per-point seeds must
//! be distinct yet stable across runs.

use seqio_node::{sweep, Experiment, FaultPlan, Frontend, NodeShape, RunResult, Sweep};
use seqio_simcore::units::{KIB, MIB};
use seqio_simcore::SimDuration;

/// A 3x3 grid over (streams, request size), mixing direct and stream
/// scheduler frontends so both code paths are exercised.
fn grid() -> Vec<Experiment> {
    let mut points = Vec::new();
    for (i, &streams) in [1usize, 10, 30].iter().enumerate() {
        for &req in &[16 * KIB, 64 * KIB, 256 * KIB] {
            let mut b = Experiment::builder()
                .streams_per_disk(streams)
                .request_size(req)
                .warmup(SimDuration::from_secs(1))
                .duration(SimDuration::from_secs(2))
                .seed(99);
            if i % 2 == 1 {
                b = b.frontend(Frontend::stream_scheduler_with_readahead(MIB));
            }
            points.push(b.build());
        }
    }
    points
}

/// Every observable a figure could plot, plus the diagnostics.
fn fingerprint(r: &RunResult) -> (u64, u64, Vec<u64>, Vec<u64>, u64, u64, String) {
    (
        r.bytes_delivered,
        r.requests_completed,
        r.disk_seeks.clone(),
        r.disk_ops.clone(),
        r.ctrl_wasted_bytes,
        r.ctrl_bytes_from_disks,
        format!(
            "{:?} {:?} {:?} {:?} {:?}",
            r.per_stream_mbs, r.window, r.disk_read_errors, r.disk_retries, r.disk_timeouts
        ),
    )
}

#[test]
fn one_worker_and_eight_workers_agree_bit_for_bit() {
    let serial = Sweep::builder().points(grid()).jobs(1).run();
    let pooled = Sweep::builder().points(grid()).jobs(8).run();
    assert_eq!(serial.len(), 9);
    assert_eq!(pooled.jobs, 8);
    for (i, (a, b)) in serial.results().zip(pooled.results()).enumerate() {
        assert_eq!(fingerprint(a), fingerprint(b), "point {i} diverged across worker counts");
    }
}

/// The fault layer draws from its own seeded RNG stream, so a faulted
/// grid must stay bit-identical across worker counts and invocations just
/// like a healthy one.
#[test]
fn faulted_grid_is_identical_across_worker_counts() {
    let faulted = || {
        let plan = FaultPlan::new()
            .straggler(0, 4.0, SimDuration::from_millis(500), Some(SimDuration::from_secs(1)))
            .read_errors(0, 0.05)
            .bad_region(0, 50_000, 100_000, SimDuration::from_millis(2));
        grid()
            .into_iter()
            .map(|mut e| {
                e.faults = Some(plan.clone());
                e
            })
            .collect::<Vec<_>>()
    };
    let serial = Sweep::builder().points(faulted()).jobs(1).run();
    let pooled = Sweep::builder().points(faulted()).jobs(8).run();
    let mut saw_errors = false;
    for (i, (a, b)) in serial.results().zip(pooled.results()).enumerate() {
        assert_eq!(fingerprint(a), fingerprint(b), "faulted point {i} diverged across workers");
        saw_errors |= a.disk_read_errors.iter().any(|&e| e > 0);
    }
    assert!(saw_errors, "the 5% error rate must actually fire somewhere in the grid");
}

#[test]
fn base_seed_runs_are_reproducible_across_invocations() {
    let a = Sweep::builder().points(grid()).base_seed(0xfeed).jobs(4).run();
    let b = Sweep::builder().points(grid()).base_seed(0xfeed).jobs(2).run();
    for (i, (x, y)) in a.outcomes().iter().zip(b.outcomes()).enumerate() {
        assert_eq!(x.spec.seed, sweep::derive_seed(0xfeed, i), "seed derivation is pure");
        assert_eq!(x.spec.seed, y.spec.seed);
        assert_eq!(fingerprint(&x.result), fingerprint(&y.result), "point {i} diverged");
    }
}

/// FNV-1a over the rendered CSV bytes — dependency-free and stable.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// A fixed subset of the Figure-1 grid (60 disks, direct path) rendered in
/// the figure CSV format and pinned byte-for-byte to a golden hash. Any
/// change to simulation semantics — event ordering, seed derivation, float
/// accumulation order — shows up here as a CSV drift, whereas the tests
/// above would still pass if both worker counts drifted together.
#[test]
fn fig01_point_subset_csv_matches_golden() {
    const GOLDEN: u64 = 4786420990628480947;

    let per_disk = [1usize, 5];
    let requests = [64 * KIB, 256 * KIB];
    let mut points = Vec::new();
    for &streams in &per_disk {
        for &req in &requests {
            points.push(
                Experiment::builder()
                    .shape(NodeShape::sixty_disk())
                    .streams_per_disk(streams)
                    .request_size(req)
                    .warmup(SimDuration::from_secs(1))
                    .duration(SimDuration::from_secs(2))
                    .seed(11)
                    .build(),
            );
        }
    }
    let report = Sweep::builder().points(points).jobs(4).run();
    let results: Vec<&RunResult> = report.results().collect();

    // Same layout `Figure::to_csv` produces: header of series labels, one
    // row per x value, y values formatted `{:.4}`.
    let mut csv = String::from("Request size,60 Streams,300 Streams\n");
    for (ri, x) in ["64K", "256K"].iter().enumerate() {
        csv.push_str(x);
        for si in 0..per_disk.len() {
            let y = results[si * requests.len() + ri].total_throughput_mbs();
            csv.push_str(&format!(",{y:.4}"));
        }
        csv.push('\n');
    }

    assert_eq!(
        fnv1a(csv.as_bytes()),
        GOLDEN,
        "fig01 subset CSV drifted from the recorded golden output:\n{csv}"
    );
}

#[test]
fn derived_seeds_differ_across_points() {
    let report = Sweep::builder().points(grid()).base_seed(7).jobs(3).run();
    let seeds: Vec<u64> = report.outcomes().iter().map(|o| o.spec.seed).collect();
    for (i, a) in seeds.iter().enumerate() {
        for (j, b) in seeds.iter().enumerate() {
            if i != j {
                assert_ne!(a, b, "points {i} and {j} share a seed");
            }
        }
    }
    // And different seeds actually change the simulation: at least one
    // observable differs between the first two points' re-seeded runs.
    let r0 = fingerprint(&report.outcomes()[0].result);
    let unseeded = Sweep::builder().points(grid()).jobs(3).run();
    let u0 = fingerprint(&unseeded.outcomes()[0].result);
    assert_ne!(r0, u0, "base_seed had no effect on point 0");
}
