//! Stream specifications and per-stream request generation.

use seqio_disk::Lba;
use seqio_simcore::SimRng;

/// The access pattern a stream follows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Strictly sequential: request `i` starts where request `i-1` ended.
    Sequential,
    /// Mostly sequential, but with probability `p` a request skips forward
    /// up to `jitter_blocks` (models container formats and slightly
    /// reordered readers).
    NearSequential {
        /// Probability of a skip per request.
        p: f64,
        /// Maximum forward skip in blocks.
        jitter_blocks: u64,
    },
    /// Uniformly random within `[start, start + span_blocks)`.
    Random {
        /// Extent of the random region in blocks.
        span_blocks: u64,
    },
}

/// Static description of one I/O stream (the paper's client parameters:
/// destination disk and offset, number and size of requests).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamSpec {
    /// Destination disk (global disk index at the storage node).
    pub disk: usize,
    /// Starting block.
    pub start: Lba,
    /// Request size in blocks.
    pub request_blocks: u64,
    /// Number of requests to issue (`u64::MAX` for open-ended streams that
    /// run until the measurement window closes).
    pub num_requests: u64,
    /// Access pattern.
    pub pattern: Pattern,
}

impl StreamSpec {
    /// A strictly sequential stream.
    pub fn sequential(disk: usize, start: Lba, request_blocks: u64, num_requests: u64) -> Self {
        StreamSpec { disk, start, request_blocks, num_requests, pattern: Pattern::Sequential }
    }

    /// Validates the specification.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.request_blocks == 0 {
            return Err("request size must be positive".into());
        }
        if self.num_requests == 0 {
            return Err("stream must issue at least one request".into());
        }
        if let Pattern::Random { span_blocks } = self.pattern {
            if span_blocks < self.request_blocks {
                return Err("random span smaller than one request".into());
            }
        }
        Ok(())
    }
}

/// Mutable generation state for one stream.
#[derive(Debug, Clone)]
pub struct StreamState {
    spec: StreamSpec,
    next_lba: Lba,
    issued: u64,
    rng: SimRng,
}

impl StreamState {
    /// Creates the generator; `rng` seeds pattern randomness (unused for
    /// strictly sequential streams).
    ///
    /// # Panics
    ///
    /// Panics if the spec is invalid.
    pub fn new(spec: StreamSpec, rng: SimRng) -> Self {
        spec.validate().expect("invalid stream spec");
        StreamState { next_lba: spec.start, spec, issued: 0, rng }
    }

    /// The stream's static description.
    pub fn spec(&self) -> &StreamSpec {
        &self.spec
    }

    /// Requests issued so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Requests the stream has yet to issue.
    pub fn remaining(&self) -> u64 {
        self.spec.num_requests.saturating_sub(self.issued)
    }

    /// The block the next request would start at (for sequential and
    /// near-sequential patterns; random streams draw fresh positions).
    pub fn position(&self) -> Lba {
        self.next_lba
    }

    /// Splits off the unissued tail of the stream as a fresh spec and
    /// exhausts this generator in place, so the stream can be handed to
    /// another node mid-run (live migration).
    ///
    /// The remainder resumes exactly where this generator stopped:
    /// sequential and near-sequential streams continue from the current
    /// position, random streams keep their original span. Any request
    /// already issued (including one still in flight) stays accounted to
    /// this generator. Returns `None` when nothing is left to split.
    pub fn split_remainder(&mut self) -> Option<StreamSpec> {
        if self.exhausted() {
            return None;
        }
        let start = match self.spec.pattern {
            Pattern::Random { .. } => self.spec.start,
            Pattern::Sequential | Pattern::NearSequential { .. } => self.next_lba,
        };
        let remainder = StreamSpec {
            disk: self.spec.disk,
            start,
            request_blocks: self.spec.request_blocks,
            num_requests: self.remaining(),
            pattern: self.spec.pattern,
        };
        self.spec.num_requests = self.issued;
        Some(remainder)
    }

    /// `true` once the stream has generated all its requests.
    pub fn exhausted(&self) -> bool {
        self.issued >= self.spec.num_requests
    }

    /// Produces the next request as `(lba, blocks)`, or `None` when done.
    pub fn next_request(&mut self) -> Option<(Lba, u64)> {
        if self.exhausted() {
            return None;
        }
        self.issued += 1;
        let blocks = self.spec.request_blocks;
        let lba = match self.spec.pattern {
            Pattern::Sequential => {
                let l = self.next_lba;
                self.next_lba += blocks;
                l
            }
            Pattern::NearSequential { p, jitter_blocks } => {
                if jitter_blocks > 0 && self.rng.chance(p) {
                    self.next_lba += self.rng.below(jitter_blocks) + 1;
                }
                let l = self.next_lba;
                self.next_lba += blocks;
                l
            }
            Pattern::Random { span_blocks } => {
                self.spec.start + self.rng.below(span_blocks - blocks + 1)
            }
        };
        Some((lba, blocks))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rng() -> SimRng {
        SimRng::seed_from(7)
    }

    #[test]
    fn sequential_requests_are_contiguous() {
        let mut s = StreamState::new(StreamSpec::sequential(0, 1000, 128, 5), rng());
        let mut expect = 1000;
        while let Some((lba, blocks)) = s.next_request() {
            assert_eq!(lba, expect);
            assert_eq!(blocks, 128);
            expect += 128;
        }
        assert_eq!(s.issued(), 5);
        assert!(s.exhausted());
        assert_eq!(s.next_request(), None);
    }

    #[test]
    fn near_sequential_moves_forward() {
        let spec = StreamSpec {
            disk: 0,
            start: 0,
            request_blocks: 64,
            num_requests: 200,
            pattern: Pattern::NearSequential { p: 0.3, jitter_blocks: 32 },
        };
        let mut s = StreamState::new(spec, rng());
        let mut last_end = 0;
        let mut skips = 0;
        while let Some((lba, blocks)) = s.next_request() {
            assert!(lba >= last_end, "near-sequential never goes backwards");
            if lba > last_end {
                skips += 1;
            }
            last_end = lba + blocks;
        }
        assert!(skips > 20, "expected some skips, saw {skips}");
        assert!(skips < 150, "too many skips: {skips}");
    }

    #[test]
    fn random_stays_in_span() {
        let spec = StreamSpec {
            disk: 0,
            start: 5_000,
            request_blocks: 16,
            num_requests: 500,
            pattern: Pattern::Random { span_blocks: 1_000 },
        };
        let mut s = StreamState::new(spec, rng());
        while let Some((lba, blocks)) = s.next_request() {
            assert!(lba >= 5_000);
            assert!(lba + blocks <= 6_000);
        }
    }

    #[test]
    fn split_remainder_resumes_where_the_stream_stopped() {
        let mut s = StreamState::new(StreamSpec::sequential(2, 1_000, 128, 10), rng());
        for _ in 0..4 {
            s.next_request();
        }
        let rem = s.split_remainder().expect("6 requests left");
        assert_eq!(rem.disk, 2);
        assert_eq!(rem.start, 1_000 + 4 * 128);
        assert_eq!(rem.num_requests, 6);
        assert_eq!(rem.request_blocks, 128);
        // The donor is exhausted in place and issues nothing further.
        assert!(s.exhausted());
        assert_eq!(s.next_request(), None);
        assert_eq!(s.split_remainder(), None);
        // The remainder covers exactly the unissued tail.
        let mut r = StreamState::new(rem, rng());
        let mut expect = 1_000 + 4 * 128;
        let mut count = 0;
        while let Some((lba, blocks)) = r.next_request() {
            assert_eq!(lba, expect);
            expect += blocks;
            count += 1;
        }
        assert_eq!(count, 6);
    }

    #[test]
    fn split_remainder_of_random_stream_keeps_the_span() {
        let spec = StreamSpec {
            disk: 0,
            start: 5_000,
            request_blocks: 16,
            num_requests: 20,
            pattern: Pattern::Random { span_blocks: 1_000 },
        };
        let mut s = StreamState::new(spec, rng());
        s.next_request();
        let rem = s.split_remainder().unwrap();
        assert_eq!(rem.start, 5_000, "random remainder anchors at the original span");
        assert_eq!(rem.num_requests, 19);
    }

    #[test]
    fn validation_catches_bad_specs() {
        assert!(StreamSpec::sequential(0, 0, 0, 1).validate().is_err());
        assert!(StreamSpec::sequential(0, 0, 8, 0).validate().is_err());
        let bad = StreamSpec {
            disk: 0,
            start: 0,
            request_blocks: 100,
            num_requests: 1,
            pattern: Pattern::Random { span_blocks: 50 },
        };
        assert!(bad.validate().is_err());
        assert!(StreamSpec::sequential(0, 0, 8, 1).validate().is_ok());
    }

    proptest! {
        /// A sequential stream of n requests covers exactly
        /// [start, start + n*blocks) with no gaps or overlaps.
        #[test]
        fn prop_sequential_coverage(start in 0u64..1_000_000, blocks in 1u64..512, n in 1u64..100) {
            let mut s = StreamState::new(StreamSpec::sequential(0, start, blocks, n), SimRng::seed_from(1));
            let mut expect = start;
            let mut count = 0;
            while let Some((lba, b)) = s.next_request() {
                prop_assert_eq!(lba, expect);
                expect += b;
                count += 1;
            }
            prop_assert_eq!(count, n);
            prop_assert_eq!(expect, start + n * blocks);
        }
    }
}
