//! # seqio-disk
//!
//! A single-disk mechanical + cache model — the DiskSim-equivalent substrate
//! for the `seqio` reproduction of *"Reducing Disk I/O Performance
//! Sensitivity for Large Numbers of Sequential Streams"* (ICDCS 2009).
//!
//! The model covers exactly the knobs the paper's evaluation sweeps:
//!
//! * zoned geometry with outer-to-inner media-rate falloff ([`Geometry`]);
//! * a three-parameter seek curve fitted from datasheet numbers
//!   ([`SeekModel`]);
//! * a segmented disk cache with configurable segment count, segment size
//!   and read-ahead ([`SegmentedCache`], [`CacheConfig`]);
//! * a command queue with FIFO or elevator ordering ([`CommandQueue`]);
//! * the event-driven drive itself ([`Disk`]).
//!
//! # Examples
//!
//! ```
//! use seqio_disk::{Disk, DiskConfig, DiskOutput, DiskRequest, RequestId};
//! use seqio_simcore::SimTime;
//!
//! let mut disk = Disk::new(DiskConfig::wd800jd(), 1);
//! let outs = disk.submit(SimTime::ZERO, DiskRequest::read(RequestId(1), 0, 128));
//! // The caller relays outputs into its event loop:
//! for o in outs {
//!     match o {
//!         DiskOutput::Complete { id, at, .. } => {
//!             assert_eq!(id, RequestId(1));
//!             assert!(at > SimTime::ZERO);
//!         }
//!         DiskOutput::OpFinished { at } => {
//!             disk.on_op_finished(at);
//!         }
//!     }
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analytic;
mod cache;
mod config;
mod geometry;
mod model;
mod queue;
mod request;
mod seek;

pub use cache::{CacheConfig, CacheMetrics, FillTicket, SegmentedCache};
pub use config::DiskConfig;
pub use geometry::{Geometry, GeometryConfig, Zone};
pub use model::{Disk, DiskMetrics, DiskOutput};
pub use queue::{CommandQueue, QueuePolicy};
pub use request::{bytes_to_blocks, Direction, DiskRequest, Lba, RequestId, BLOCK_SIZE};
pub use seek::{SeekConfig, SeekModel};
