//! Dispatch-policy comparison harness coverage: the three policies run
//! the same scenario under the same tune and the harness reports one
//! outcome per policy, deterministically.

use seqio_core::ServerConfig;
use seqio_node::Frontend;
use seqio_scenario::{
    compare_policies, matrix_scenario, matrix_template, MatrixScale, ScenarioKind, POLICIES,
};

#[test]
fn policy_comparison_covers_all_policies_deterministically() {
    let scale = MatrixScale::quick();
    let mut diverged = false;
    for kind in [ScenarioKind::Steady, ScenarioKind::Mixed] {
        let scenario = matrix_scenario(kind, &scale, 11).unwrap();
        let mut template = matrix_template(&scale, 11);
        template.frontend = Frontend::StreamScheduler(ServerConfig::auto_tune(1 << 30, 8));
        template.faults = scenario.faults.clone();

        let a = compare_policies(&template, &scenario.trace).unwrap();
        let b = compare_policies(&template, &scenario.trace).unwrap();
        assert_eq!(a.len(), POLICIES.len());
        for (x, y) in a.iter().zip(&b) {
            println!("{:<7} {:?} {:.2} MB/s", kind.name(), x.policy, x.throughput_mbs);
            assert_eq!(x.policy, y.policy);
            assert_eq!(x.throughput_mbs, y.throughput_mbs, "policy run not deterministic");
            assert!(x.throughput_mbs > 0.0, "{:?} delivered nothing", x.policy);
        }
        diverged |= a.iter().any(|o| o.throughput_mbs != a[0].throughput_mbs);
    }
    // The policies genuinely differ somewhere: admission order is not a
    // no-op across the tested scenarios.
    assert!(diverged, "all dispatch policies produced identical throughput everywhere");
}
