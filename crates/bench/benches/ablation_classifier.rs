//! Ablation — classifier detection threshold.
//!
//! The paper detects a stream once enough distinct blocks are touched in a
//! region bitmap. A lower threshold detects after a single request (risking
//! false positives on random workloads); a higher one delays read-ahead.
//! This ablation sweeps the threshold (expressed in 64 KB requests) and
//! reports throughput plus how many requests went to disk unclassified.

use seqio_bench::{window_secs, Figure, Grid};
use seqio_core::ServerConfig;
use seqio_node::{Experiment, Frontend};
use seqio_simcore::units::{KIB, MIB};

fn main() {
    let (warmup, duration) = window_secs((4, 4), (8, 8));

    let mut grid = Grid::new();
    for reqs_to_detect in [1u64, 2, 4, 8] {
        let cfg = ServerConfig {
            // Threshold in blocks: just under `reqs_to_detect` requests'
            // worth of 128-block requests triggers on the Nth request.
            detect_threshold_blocks: (reqs_to_detect - 1) * 128 + 64,
            ..ServerConfig::all_dispatched(100, MIB)
        };
        grid = grid.point(
            "throughput",
            reqs_to_detect.to_string(),
            Experiment::builder()
                .streams_per_disk(100)
                .request_size(64 * KIB)
                .frontend(Frontend::StreamScheduler(cfg))
                .warmup(warmup)
                .duration(duration)
                .seed(2121)
                .build(),
        );
    }
    let run = grid.run();

    let mut fig = Figure::new(
        "Ablation",
        "Classifier threshold (100 streams, R=1M, D=S)",
        "Detection threshold (64K requests)",
        "Throughput (MBytes/s)",
    );
    run.fill(&mut fig, |r| r.total_throughput_mbs());
    // Second metric from the same runs.
    fig.add(run.extract("throughput", "direct requests (x1000)", |r| {
        r.server_metrics.as_ref().expect("stream scheduler metrics").direct_requests as f64 / 1000.0
    }));
    fig.report("ablation_classifier");
    let ys = fig.series[0].ys();
    println!(
        "threshold sweep: throughput {:.0} (detect@1) .. {:.0} (detect@8) MB/s",
        ys[0],
        ys.last().unwrap()
    );
}
