//! Cross-tier consistency: the correlated traces must agree exactly
//! with what each tier reported on its own — the session SLO from the
//! client tier, span counts from the nodes, placement from the cluster
//! — and the derived telemetry (attribution, burn rate) must be a
//! deterministic function of the run.

use seqio_client::{ArrivalConfig, ClientExperiment, LinkConfig};
use seqio_cluster::SessionSlo;
use seqio_node::{Experiment, ObsConfig};
use seqio_simcore::{SimDuration, SimTime};
use seqio_telemetry::{
    correlate, monitor, traces_from_jsonl, traces_to_jsonl, BurnRateConfig, TailAttribution,
};

fn experiment(link: LinkConfig) -> ClientExperiment {
    let template = Experiment::builder()
        .warmup(SimDuration::ZERO)
        .duration(SimDuration::from_secs(4))
        .observe(ObsConfig::new().with_spans())
        .build();
    ClientExperiment::builder()
        .template(template)
        .nodes(2)
        .base_seed(41)
        .arrivals(ArrivalConfig {
            rate_per_sec: 60.0,
            titles: 64,
            requests_per_session: 3,
            ..ArrivalConfig::default()
        })
        .link(link)
        .build()
}

/// Trace-level latencies must reproduce the SLO summary the client tier
/// computed from the link overlay — the strongest cross-tier statement:
/// two independent code paths, one distribution.
#[test]
fn trace_latencies_reproduce_the_session_slo() {
    for link in [
        LinkConfig::default(),
        LinkConfig { capacity_bps: 40.0 * 1024.0 * 1024.0, ..LinkConfig::default() },
    ] {
        let xp = experiment(link);
        let schedule = xp.session_schedule().unwrap();
        let result = xp.run().unwrap();
        let slo = result.slo.clone().expect("sessions completed");
        let traces = correlate(&result, &schedule);

        assert_eq!(traces.len(), schedule.len(), "one trace per admitted session");
        let latencies: Vec<SimDuration> = traces.iter().filter_map(|t| t.latency()).collect();
        let rebuilt = SessionSlo::from_latencies(schedule.len() as u64, latencies)
            .expect("completed sessions");
        assert_eq!(rebuilt, slo, "correlated traces disagree with the client tier's SLO");

        for t in &traces {
            // Arrival and title survive the join.
            let spec = &schedule[t.session];
            assert_eq!(t.arrival, spec.arrival);
            assert_eq!(t.title, Some(spec.title));
            assert_eq!(t.node_path, vec![spec.node], "no migrations in this run");
            // Spans stay in enqueue order and never precede arrival.
            let mut prev = SimTime::ZERO;
            for s in &t.spans {
                assert!(s.record.enqueued() >= t.arrival);
                assert!(s.record.enqueued() >= prev);
                prev = s.record.enqueued();
            }
            // Completed sessions decompose additively.
            if let Some(latency) = t.latency() {
                let parts = t.decompose().unwrap();
                let sum: SimDuration = parts.iter().copied().sum();
                assert_eq!(sum, latency, "session {} decomposition not additive", t.session);
            }
        }
    }
}

/// The JSONL interchange format loses nothing: parse(render(x)) == x on
/// a real run's traces.
#[test]
fn jsonl_round_trips_a_real_run() {
    let xp = experiment(LinkConfig::default());
    let schedule = xp.session_schedule().unwrap();
    let result = xp.run().unwrap();
    let traces = correlate(&result, &schedule);
    let parsed = traces_from_jsonl(&traces_to_jsonl(&traces)).unwrap();
    assert_eq!(parsed, traces);
}

/// Attribution and burn-rate monitoring are deterministic functions of
/// the run and satisfy their structural invariants on real data.
#[test]
fn derived_telemetry_is_deterministic_and_consistent() {
    let xp = experiment(LinkConfig::default());
    let schedule = xp.session_schedule().unwrap();
    let result = xp.run().unwrap();
    let slo = result.slo.clone().unwrap();
    let traces = correlate(&result, &schedule);

    let tail = TailAttribution::compute(&traces, 0.99, 1.0).unwrap();
    assert_eq!(tail.completed as u64, slo.completed);
    assert!(tail.tail_sessions > 0);
    assert!((tail.share_sum_pct() - 100.0).abs() < 1e-6, "shares must sum to 100%");
    assert!(tail.threshold_ms >= slo.p50_ms, "a p99 band cannot start below the median");
    assert!(!tail.exemplars.is_empty());
    let dominated: usize = tail.dominant.iter().map(|(_, c)| c).sum();
    assert_eq!(dominated, tail.tail_sessions, "every tail session has one dominant bucket");

    let cfg = BurnRateConfig::from_slo(&slo);
    let a = monitor(&traces, &cfg, SimDuration::from_millis(100)).unwrap();
    let b = monitor(&traces, &cfg, SimDuration::from_millis(100)).unwrap();
    assert_eq!(a.alerts, b.alerts);
    assert_eq!(a.series.to_csv(), b.series.to_csv());
    assert_eq!(a.completed, slo.completed);
    // At most 1% of a baseline's own sessions sit above its p99.
    assert!(a.violations as f64 <= 0.01 * a.completed as f64 + 1.0);
}
