//! Figure 14 — Single-disk throughput with a small dispatch set.
//!
//! Paper: `D = 1`, `N = 128`, `R = 512K` on one disk, compared against the
//! all-dispatched `R = 2M` and `R = 8M` curves of Figure 10. The small
//! dispatch set slightly improves on them (lower buffer-management
//! overhead) and is insensitive to the stream count.

use seqio_bench::{quick_mode, window_secs, Figure, Grid};
use seqio_core::ServerConfig;
use seqio_node::{Experiment, Frontend};
use seqio_simcore::units::{KIB, MIB};

fn main() {
    let (warmup, duration) = window_secs((6, 6), (10, 10));
    let stream_counts: Vec<usize> =
        if quick_mode() { vec![10, 30, 100] } else { vec![10, 30, 60, 100] };

    let mut grid = Grid::new();
    for &n in &stream_counts {
        let cfg = ServerConfig::small_dispatch(1, 512 * KIB, 128);
        grid = grid.point(
            "R=512K, D=1, N=128",
            n.to_string(),
            Experiment::builder()
                .streams_per_disk(n)
                .frontend(Frontend::StreamScheduler(cfg))
                .warmup(warmup)
                .duration(duration)
                .seed(1414)
                .build(),
        );
        for (label, ra) in [("R=2M, D=S (Fig. 10)", 2 * MIB), ("R=8M, D=S (Fig. 10)", 8 * MIB)] {
            grid = grid.point(
                label,
                n.to_string(),
                Experiment::builder()
                    .streams_per_disk(n)
                    .frontend(Frontend::stream_scheduler_with_readahead(ra))
                    .warmup(warmup)
                    .duration(duration)
                    .seed(1414)
                    .build(),
            );
        }
    }

    let mut fig = Figure::new(
        "Figure 14",
        "Single-disk throughput with a small dispatch set",
        "Streams per Disk",
        "Throughput (MBytes/s)",
    );
    grid.run().fill(&mut fig, |r| r.total_throughput_mbs());
    fig.report("fig14_single_small_d");

    // Shape checks: the D=1 configuration achieves high utilization at every
    // stream count with only 64 MB of memory (vs up to 800 MB for R=8M,D=S).
    let small_ys = fig.series[0].ys();
    assert!(
        small_ys.iter().all(|&y| y > 30.0),
        "D=1/N=128 should stay near the disk maximum: {small_ys:?}"
    );
    let r2m_ys = fig.series[1].ys();
    let last = small_ys.len() - 1;
    assert!(
        small_ys[last] >= 0.9 * r2m_ys[last],
        "D=1 ({:.0}) should at least match R=2M all-dispatched ({:.0})",
        small_ys[last],
        r2m_ys[last]
    );
    println!(
        "shape ok: D=1/N=128 {:.0}-{:.0} MB/s across stream counts (memory: 64MB)",
        small_ys.iter().cloned().fold(f64::MAX, f64::min),
        small_ys.iter().cloned().fold(f64::MIN, f64::max)
    );
}
