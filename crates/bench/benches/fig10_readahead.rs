//! Figure 10 — Effect of the scheduler's read-ahead `R` with adequate
//! memory (`D = S`, `N = 1`, `M = D*R*N`).
//!
//! Paper: one disk, 64 KB client requests, 10–100 streams. With `R` = 8 MB
//! the disk reaches ~50 of its ~55 MB/s maximum at every stream count; the
//! no-read-ahead baseline sits near 5 MB/s.

use seqio_bench::{quick_mode, window_secs, Figure, Grid};
use seqio_node::{Experiment, Frontend};
use seqio_simcore::units::{format_bytes, KIB, MIB};

fn main() {
    let (warmup, duration) = window_secs((4, 6), (8, 12));
    let stream_counts: Vec<usize> =
        if quick_mode() { vec![10, 30, 100] } else { vec![10, 30, 60, 100] };
    let readaheads: Vec<u64> = if quick_mode() {
        vec![8 * MIB, MIB, 128 * KIB]
    } else {
        vec![8 * MIB, 2 * MIB, MIB, 512 * KIB, 128 * KIB]
    };

    let mut grid = Grid::new();
    for &ra in &readaheads {
        let label = format!("R = {} (M = S*{0})", format_bytes(ra));
        for &n in &stream_counts {
            grid = grid.point(
                &label,
                n.to_string(),
                Experiment::builder()
                    .streams_per_disk(n)
                    .frontend(Frontend::stream_scheduler_with_readahead(ra))
                    .warmup(warmup)
                    .duration(duration)
                    .seed(1010)
                    .build(),
            );
        }
    }
    // Baseline: no read-ahead (requests pass through directly).
    for &n in &stream_counts {
        grid = grid.point(
            "No Readahead",
            n.to_string(),
            Experiment::builder()
                .streams_per_disk(n)
                .warmup(warmup)
                .duration(duration)
                .seed(1010)
                .build(),
        );
    }

    let mut fig = Figure::new(
        "Figure 10",
        "Effect of read-ahead, all streams dispatched (D=S, N=1, M=D*R)",
        "Streams per Disk",
        "Throughput (MBytes/s)",
    );
    grid.run().fill(&mut fig, |r| r.total_throughput_mbs());
    fig.report("fig10_readahead");

    // Shape checks: R=8M stays near the disk maximum at every stream count
    // and beats the no-read-ahead baseline by a large factor at 100 streams.
    let big = fig.series[0].ys();
    let none = fig.series.last().unwrap().ys();
    let last = big.len() - 1;
    assert!(big.iter().all(|&y| y > 35.0), "R=8M must stay near max: {big:?}");
    let factor = big[last] / none[last];
    assert!(factor > 3.0, "R=8M should beat no-RA by >3x at 100 streams, got {factor:.1}x");
    println!(
        "shape ok: R=8M at 100 streams {:.0} MB/s = {factor:.1}x the no-RA baseline",
        big[last]
    );
}
