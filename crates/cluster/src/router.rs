//! Deterministic front-end stream routing across cluster nodes.
//!
//! The router decides, before any simulation runs, which storage node
//! serves each client stream. Routing is a pure function of the policy,
//! the node count, the stream count and (for the straggler-aware policy)
//! the per-node health vector — never of worker scheduling or wall-clock
//! state — so cluster runs inherit the repo's bit-determinism guarantee.

use seqio_simcore::{FaultPlan, SeqioError};

/// How client streams are sharded across the cluster's nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPolicy {
    /// Every stream goes to node 0. Only valid for single-node clusters;
    /// exists so a 1-node cluster is bit-identical to a plain
    /// [`Experiment`](seqio_node::Experiment) (the equivalence oracle).
    Identity,
    /// Streams are dealt across nodes in the order of a hash of their
    /// global stream id (a SplitMix64 mix). Dealing by hash *rank* rather
    /// than by `hash % K` keeps placement pseudo-random while guaranteeing
    /// exact balance: node loads differ by at most one stream.
    HashByStream,
    /// Contiguous global-id ranges map to contiguous nodes (stream `g` of
    /// `S` goes to node `g * K / S`). Because global ids enumerate stream
    /// start offsets in disk order, this shards the *address space*:
    /// neighbouring streams land on the same node.
    RangeByOffset,
    /// Like [`HashByStream`](ShardPolicy::HashByStream), but the deal
    /// skips nodes whose health is at or past the degraded threshold, so
    /// new streams steer away from stragglers. Degraded nodes only
    /// receive streams once every healthy node is at capacity.
    StragglerAware,
}

impl ShardPolicy {
    /// Stable lowercase name, used by the CLI and JSON probes.
    pub fn name(self) -> &'static str {
        match self {
            ShardPolicy::Identity => "identity",
            ShardPolicy::HashByStream => "hash",
            ShardPolicy::RangeByOffset => "range",
            ShardPolicy::StragglerAware => "straggler-aware",
        }
    }

    /// Parses a CLI policy name.
    ///
    /// # Errors
    ///
    /// Returns a usage-style message listing the accepted names.
    pub fn parse(s: &str) -> Result<Self, SeqioError> {
        match s {
            "identity" => Ok(ShardPolicy::Identity),
            "hash" => Ok(ShardPolicy::HashByStream),
            "range" => Ok(ShardPolicy::RangeByOffset),
            "straggler-aware" | "aware" => Ok(ShardPolicy::StragglerAware),
            other => Err(SeqioError::Experiment(format!(
                "shard policy: expected identity|hash|range|straggler-aware, got {other:?}"
            ))),
        }
    }
}

/// Front-end view of one node's health, derived from its §5c fault plan
/// before the run starts (the router is an admission-time policy; it does
/// not observe the simulation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeHealth {
    /// Worst straggler slowdown factor across the node's disks and fault
    /// windows (`1.0` = nominal speed everywhere).
    pub worst_straggler_factor: f64,
}

impl NodeHealth {
    /// A node with no known faults.
    pub fn healthy() -> Self {
        NodeHealth { worst_straggler_factor: 1.0 }
    }

    /// Derives health from a node's fault plan: the maximum straggler
    /// factor any of its `disks` spindles is scheduled to suffer. `None`
    /// (no plan) is healthy.
    pub fn from_faults(plan: Option<&FaultPlan>, disks: usize) -> Self {
        let worst = plan
            .iter()
            .flat_map(|p| (0..disks).filter_map(|d| p.disk(d)))
            .flat_map(|df| df.stragglers.iter().map(|s| s.factor))
            .fold(1.0f64, f64::max);
        NodeHealth { worst_straggler_factor: worst }
    }

    /// `true` when the worst scheduled slowdown reaches `threshold` (the
    /// stream scheduler's `degraded_rotate_threshold` convention).
    pub fn is_degraded(&self, threshold: f64) -> bool {
        self.worst_straggler_factor >= threshold
    }
}

impl Default for NodeHealth {
    fn default() -> Self {
        Self::healthy()
    }
}

/// A configured stream router: policy, node count, per-node health and
/// the admission knobs the straggler-aware policy consults.
#[derive(Debug, Clone)]
pub struct Router {
    /// Sharding policy.
    pub policy: ShardPolicy,
    /// Number of nodes `K`.
    pub nodes: usize,
    /// Per-node health (length `K`).
    pub health: Vec<NodeHealth>,
    /// Slowdown factor at which a node counts as degraded.
    pub degraded_threshold: f64,
    /// Maximum streams a node accepts before the straggler-aware deal
    /// spills past it (`None` = unbounded). Other policies ignore this.
    pub capacity: Option<usize>,
}

impl Router {
    /// A router over `nodes` healthy nodes with the stream scheduler's
    /// default degraded threshold and unbounded capacity.
    pub fn new(policy: ShardPolicy, nodes: usize) -> Self {
        Router {
            policy,
            nodes,
            health: vec![NodeHealth::healthy(); nodes],
            degraded_threshold: seqio_core::ServerConfig::default_tuning()
                .degraded_rotate_threshold,
            capacity: None,
        }
    }

    /// Replaces the per-node health vector.
    pub fn with_health(mut self, health: Vec<NodeHealth>) -> Self {
        self.health = health;
        self
    }

    /// Overrides the degraded threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.degraded_threshold = threshold;
        self
    }

    /// Caps the streams any single node accepts under the
    /// straggler-aware deal.
    pub fn with_capacity(mut self, cap: usize) -> Self {
        self.capacity = Some(cap);
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Rejects empty clusters, a health vector of the wrong length, the
    /// identity policy on more than one node, and non-finite thresholds.
    pub fn validate(&self) -> Result<(), SeqioError> {
        if self.nodes == 0 {
            return Err(SeqioError::Experiment("cluster needs at least one node".into()));
        }
        if self.health.len() != self.nodes {
            return Err(SeqioError::Experiment(format!(
                "router health names {} nodes but the cluster has {}",
                self.health.len(),
                self.nodes
            )));
        }
        if self.policy == ShardPolicy::Identity && self.nodes != 1 {
            return Err(SeqioError::Experiment(
                "identity routing is only meaningful on a 1-node cluster".into(),
            ));
        }
        if !self.degraded_threshold.is_finite() || self.degraded_threshold <= 1.0 {
            return Err(SeqioError::Experiment(
                "degraded threshold must be a finite factor above 1.0".into(),
            ));
        }
        Ok(())
    }

    /// Assigns global streams `0..streams` to nodes; element `g` of the
    /// returned vector is the node serving stream `g`.
    ///
    /// The assignment is a pure function of
    /// `(policy, nodes, health, threshold, capacity, streams)`: calling
    /// it twice — or from different worker counts — yields identical
    /// vectors.
    ///
    /// # Panics
    ///
    /// Panics if the router fails [`validate`](Router::validate).
    pub fn assign(&self, streams: usize) -> Vec<usize> {
        if let Err(e) = self.validate() {
            panic!("router: {e}");
        }
        match self.policy {
            ShardPolicy::Identity => vec![0; streams],
            ShardPolicy::HashByStream => self.deal(streams, &(0..self.nodes).collect::<Vec<_>>()),
            ShardPolicy::RangeByOffset => {
                (0..streams).map(|g| g * self.nodes / streams.max(1)).collect()
            }
            ShardPolicy::StragglerAware => {
                let healthy: Vec<usize> = (0..self.nodes)
                    .filter(|&k| !self.health[k].is_degraded(self.degraded_threshold))
                    .collect();
                if healthy.is_empty() {
                    // Everyone is degraded: nothing to steer away from.
                    return self.deal(streams, &(0..self.nodes).collect::<Vec<_>>());
                }
                let cap = self.capacity.unwrap_or(usize::MAX);
                let degraded: Vec<usize> =
                    (0..self.nodes).filter(|k| !healthy.contains(k)).collect();
                let mut loads = vec![0usize; self.nodes];
                let mut assignment = vec![0usize; streams];
                for (rank, g) in hash_order(streams).into_iter().enumerate() {
                    // Deal over healthy nodes while any has room, then
                    // over degraded ones, then (everyone full) over all.
                    let pick = pick_round_robin(&healthy, &loads, cap, rank)
                        .or_else(|| pick_round_robin(&degraded, &loads, cap, rank))
                        .unwrap_or(healthy[rank % healthy.len()]);
                    loads[pick] += 1;
                    assignment[g] = pick;
                }
                assignment
            }
        }
    }

    /// Per-node stream counts implied by [`assign`](Router::assign).
    pub fn node_loads(&self, streams: usize) -> Vec<usize> {
        let mut loads = vec![0usize; self.nodes];
        for node in self.assign(streams) {
            loads[node] += 1;
        }
        loads
    }

    /// Deals streams round-robin over `targets` in hash-rank order:
    /// placement is pseudo-random, balance is exact (loads differ by at
    /// most one).
    fn deal(&self, streams: usize, targets: &[usize]) -> Vec<usize> {
        let mut assignment = vec![0usize; streams];
        for (rank, g) in hash_order(streams).into_iter().enumerate() {
            assignment[g] = targets[rank % targets.len()];
        }
        assignment
    }
}

/// Global stream ids ordered by `(mix(id), id)` — the deterministic
/// pseudo-random deal order shared by the hash and straggler-aware
/// policies.
fn hash_order(streams: usize) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..streams).collect();
    ids.sort_by_key(|&g| (mix(g as u64), g));
    ids
}

/// Next node from `targets` (rotating with `rank`) whose load is under
/// `cap`, or `None` when every target is full.
fn pick_round_robin(targets: &[usize], loads: &[usize], cap: usize, rank: usize) -> Option<usize> {
    if targets.is_empty() {
        return None;
    }
    (0..targets.len()).map(|i| targets[(rank + i) % targets.len()]).find(|&k| loads[k] < cap)
}

/// SplitMix64 finalizer: spreads consecutive stream ids across the full
/// 64-bit space so the deal order looks random but costs one multiply
/// chain per id.
fn mix(id: u64) -> u64 {
    let mut z = id.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio_simcore::SimDuration;

    #[test]
    fn policy_names_round_trip() {
        for p in [
            ShardPolicy::Identity,
            ShardPolicy::HashByStream,
            ShardPolicy::RangeByOffset,
            ShardPolicy::StragglerAware,
        ] {
            assert_eq!(ShardPolicy::parse(p.name()).unwrap(), p);
        }
        assert!(ShardPolicy::parse("round-robin").is_err());
    }

    #[test]
    fn health_derives_from_fault_plans() {
        assert_eq!(NodeHealth::from_faults(None, 8), NodeHealth::healthy());
        let plan = FaultPlan::new().straggler(2, 4.0, SimDuration::ZERO, None).straggler(
            5,
            2.5,
            SimDuration::ZERO,
            None,
        );
        let h = NodeHealth::from_faults(Some(&plan), 8);
        assert_eq!(h.worst_straggler_factor, 4.0);
        assert!(h.is_degraded(2.0));
        assert!(!h.is_degraded(8.0));
        // Faults on disks past the node's shape are ignored.
        let h = NodeHealth::from_faults(Some(&plan), 1);
        assert_eq!(h, NodeHealth::healthy());
    }

    #[test]
    fn hash_deal_is_exactly_balanced() {
        let r = Router::new(ShardPolicy::HashByStream, 3);
        let loads = r.node_loads(100);
        assert_eq!(loads.iter().sum::<usize>(), 100);
        assert!(loads.iter().all(|&l| l == 33 || l == 34), "{loads:?}");
    }

    #[test]
    fn range_policy_keeps_neighbours_together() {
        let r = Router::new(ShardPolicy::RangeByOffset, 4);
        let a = r.assign(8);
        assert_eq!(a, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn straggler_aware_avoids_the_degraded_node() {
        let mut health = vec![NodeHealth::healthy(); 4];
        health[1] = NodeHealth { worst_straggler_factor: 4.0 };
        let r = Router::new(ShardPolicy::StragglerAware, 4).with_health(health);
        let loads = r.node_loads(90);
        assert_eq!(loads[1], 0);
        assert_eq!(loads.iter().sum::<usize>(), 90);
        assert_eq!(loads[0] + loads[2] + loads[3], 90);
    }

    #[test]
    fn straggler_aware_spills_only_past_capacity() {
        let mut health = vec![NodeHealth::healthy(); 3];
        health[0] = NodeHealth { worst_straggler_factor: 8.0 };
        let r = Router::new(ShardPolicy::StragglerAware, 3).with_health(health).with_capacity(10);
        // 25 streams, two healthy nodes x 10 capacity: 5 spill to node 0.
        let loads = r.node_loads(25);
        assert_eq!(loads, vec![5, 10, 10]);
        // Everyone (including the straggler) full: the deal wraps anyway
        // rather than dropping streams.
        let loads = r.node_loads(40);
        assert_eq!(loads.iter().sum::<usize>(), 40);
    }

    #[test]
    fn invalid_routers_are_rejected() {
        assert!(Router::new(ShardPolicy::HashByStream, 0).validate().is_err());
        assert!(Router::new(ShardPolicy::Identity, 2).validate().is_err());
        assert!(Router::new(ShardPolicy::Identity, 1).validate().is_ok());
        let short = Router::new(ShardPolicy::HashByStream, 3).with_health(vec![]);
        assert!(short.validate().is_err());
        let bad = Router::new(ShardPolicy::HashByStream, 2).with_threshold(1.0);
        assert!(bad.validate().is_err());
    }
}
