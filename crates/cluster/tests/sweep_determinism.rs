//! Cluster-level worker-count determinism, extending the node-level
//! `sweep_determinism` suite: a cluster run on one worker and the same
//! cluster run on eight must merge to bit-identical results — healthy or
//! faulted, with the observability recorder off or on.

use seqio_cluster::{ClusterExperiment, ClusterResult, ShardPolicy};
use seqio_node::{Experiment, FaultPlan, Frontend, ObsConfig};
use seqio_simcore::units::{KIB, MIB};
use seqio_simcore::SimDuration;

fn template(obs: bool) -> Experiment {
    let mut b = Experiment::builder()
        .streams_per_disk(8)
        .request_size(64 * KIB)
        .frontend(Frontend::stream_scheduler_with_readahead(MIB))
        .requests_per_stream(12)
        .warmup(SimDuration::ZERO)
        .duration(SimDuration::from_secs(30));
    if obs {
        b = b.observe(ObsConfig::all().sample_every(SimDuration::from_millis(10)));
    }
    b.build()
}

fn cluster(policy: ShardPolicy, faulted: bool, obs: bool, jobs: usize) -> ClusterResult {
    let mut b = ClusterExperiment::builder()
        .template(template(obs))
        .nodes(4)
        .policy(policy)
        .base_seed(0xC1)
        .jobs(jobs);
    if faulted {
        let plan = FaultPlan::new()
            .straggler(0, 4.0, SimDuration::ZERO, Some(SimDuration::from_secs(5)))
            .read_errors(0, 0.25);
        b = b.node_fault(2, plan);
    }
    b.run().unwrap()
}

/// Every merged observable, plus each node's own result series.
fn fingerprint(c: &ClusterResult) -> (u64, u64, u64, String, Vec<String>) {
    (
        c.bytes_delivered,
        c.requests_completed,
        c.events_simulated,
        format!("{:?} {:?} {:?}", c.per_stream_mbs, c.window, c.assignment),
        c.nodes
            .iter()
            .map(|n| {
                let Some(r) = &n.result else { return String::from("skipped") };
                format!(
                    "{:?} {:?} {} {} {:?} {:?}",
                    r.per_stream_mbs,
                    r.window,
                    r.bytes_delivered,
                    r.requests_completed,
                    r.disk_seeks,
                    r.disk_read_errors
                )
            })
            .collect(),
    )
}

#[test]
fn healthy_cluster_is_identical_across_worker_counts() {
    let serial = cluster(ShardPolicy::HashByStream, false, false, 1);
    let pooled = cluster(ShardPolicy::HashByStream, false, false, 8);
    assert_eq!(fingerprint(&serial), fingerprint(&pooled));
    assert_eq!(serial.requests_completed, 4 * 8 * 12);
}

#[test]
fn faulted_cluster_is_identical_across_worker_counts() {
    let serial = cluster(ShardPolicy::HashByStream, true, false, 1);
    let pooled = cluster(ShardPolicy::HashByStream, true, false, 8);
    assert_eq!(fingerprint(&serial), fingerprint(&pooled));
    // The fault plan actually fired on the faulted node.
    let faulted = serial.nodes[2].result.as_ref().unwrap();
    assert!(
        faulted.disk_read_errors.iter().any(|&e| e > 0),
        "the 25% error rate must fire on node 2"
    );
}

#[test]
fn straggler_aware_routing_is_identical_across_worker_counts() {
    let serial = cluster(ShardPolicy::StragglerAware, true, false, 1);
    let pooled = cluster(ShardPolicy::StragglerAware, true, false, 8);
    assert_eq!(fingerprint(&serial), fingerprint(&pooled));
    // Steering emptied the degraded node; its absence must not have
    // shifted the healthy nodes' seeds (asserted inside fingerprint by
    // the per-node series, and here explicitly).
    assert_eq!(serial.nodes[2].assigned_streams, 0);
    assert!(serial.nodes[2].result.is_none());
}

#[test]
fn observability_recorder_does_not_perturb_merged_results() {
    for jobs in [1, 8] {
        let dark = cluster(ShardPolicy::HashByStream, true, false, jobs);
        let lit = cluster(ShardPolicy::HashByStream, true, true, jobs);
        assert_eq!(
            fingerprint(&dark),
            fingerprint(&lit),
            "obs recording changed merged results at jobs={jobs}"
        );
        assert!(dark.metrics.is_none());
        let merged = lit.metrics.as_ref().expect("metrics merged when enabled");
        assert!(merged.names().iter().any(|n| n.starts_with("node0.")));
        assert!(merged.names().iter().any(|n| n.starts_with("node3.")));
        assert!(!merged.is_empty());
    }
}
