//! Dispatch-policy comparison harness: one scenario trace, one scheduler
//! tune, every admission policy.

use seqio_core::DispatchPolicy;
use seqio_node::{Experiment, Frontend};
use seqio_simcore::SeqioError;

use crate::run::ScenarioRun;
use crate::trace::ScenarioTrace;

/// One policy's aggregate throughput on the scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyOutcome {
    /// The admission policy compared.
    pub policy: DispatchPolicy,
    /// Aggregate node throughput, MB/s.
    pub throughput_mbs: f64,
}

/// Every policy the harness compares, in report order.
pub const POLICIES: [DispatchPolicy; 3] =
    [DispatchPolicy::RoundRobin, DispatchPolicy::OffsetOrdered, DispatchPolicy::OdsaScan];

/// Runs `trace` once per admission policy over `template` (which must use
/// the stream-scheduler frontend) and reports each policy's aggregate
/// throughput. Everything but the policy — tune, seed, trace — is held
/// fixed, so the comparison isolates the admission order.
///
/// # Errors
///
/// Rejects a non-scheduler template and propagates run errors.
pub fn compare_policies(
    template: &Experiment,
    trace: &ScenarioTrace,
) -> Result<Vec<PolicyOutcome>, SeqioError> {
    let Frontend::StreamScheduler(cfg) = &template.frontend else {
        return Err(SeqioError::Experiment(
            "policy comparison requires the stream-scheduler frontend".into(),
        ));
    };
    let mut out = Vec::with_capacity(POLICIES.len());
    for policy in POLICIES {
        let mut cfg = cfg.clone();
        cfg.dispatch_policy = policy;
        let mut t = template.clone();
        t.frontend = Frontend::StreamScheduler(cfg);
        let outcome = ScenarioRun::new(t, trace.clone()).run()?;
        out.push(PolicyOutcome { policy, throughput_mbs: outcome.total_throughput_mbs() });
    }
    Ok(out)
}
