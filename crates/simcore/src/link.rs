//! Shared-bandwidth network link with progressive max-min fair sharing.
//!
//! The paper's testbed serves every client over one 1 GbE link; the
//! aggregate disk throughput a client *observes* is therefore capped by
//! how the link divides its capacity among concurrent responses. A
//! [`FairShareLink`] models that division: every active transfer gets a
//! max-min fair share of the capacity (computed by the pure allocator
//! [`max_min_rates`]), and rates are recomputed from scratch every time a
//! transfer starts or finishes — the *progressive filling* interpretation
//! of fairness.
//!
//! The link is a [`SimComponent`](crate::SimComponent) on the shared
//! simulation clock, so a co-simulation driver can advance it in lockstep
//! with storage nodes. Determinism: a transfer's rate depends only on its
//! own demand and the multiset of active demands (never on insertion
//! order), completions at equal instants are delivered sorted by caller
//! tag, and all bookkeeping is settled at integer-nanosecond boundaries —
//! so permuting the insertion order of simultaneous transfers cannot
//! change any delivery time.
//!
//! # Examples
//!
//! ```
//! use seqio_simcore::{FairShareLink, SimComponent, SimTime};
//!
//! // A 100 B/s link carrying two unbounded transfers of 100 B each:
//! // both run at 50 B/s and finish together at t = 2 s.
//! let mut link = FairShareLink::new(100.0).unwrap();
//! link.init();
//! link.start_transfer(SimTime::ZERO, 100, f64::INFINITY, 7);
//! link.start_transfer(SimTime::ZERO, 100, f64::INFINITY, 3);
//! link.advance_to(SimTime::MAX);
//! let done = link.take_deliveries();
//! assert_eq!(done.len(), 2);
//! assert_eq!(done[0].tag, 3); // equal instants delivered in tag order
//! assert_eq!(done[0].at, SimTime::from_nanos(2_000_000_000));
//! ```

use crate::component::SimComponent;
use crate::error::SeqioError;
use crate::time::SimTime;

/// Max-min fair allocation of `capacity_bps` among `demands` (bytes/s).
///
/// Water-filling: demands are satisfied in ascending order, each transfer
/// receiving `min(demand, remaining_capacity / transfers_left)`. The
/// result is returned in input order but depends only on each entry's own
/// value and the multiset of demands, so it is invariant under input
/// permutation. Properties (verified by `tests/link_properties.rs`):
///
/// * conservation — granted rates sum to `min(capacity, sum of demands)`;
/// * fairness — nobody is below `min(demand, capacity / n)`;
/// * monotonicity — adding a demand never raises anyone else's rate.
///
/// An infinite capacity grants every demand in full; infinite demands are
/// allowed and mean "take whatever the link offers".
///
/// # Panics
///
/// Panics if `capacity_bps` is NaN, zero or negative, or any demand is
/// NaN, zero or negative.
pub fn max_min_rates(capacity_bps: f64, demands: &[f64]) -> Vec<f64> {
    assert!(!capacity_bps.is_nan() && capacity_bps > 0.0, "link capacity must be positive");
    assert!(demands.iter().all(|d| !d.is_nan() && *d > 0.0), "transfer demands must be positive");
    if capacity_bps.is_infinite() {
        return demands.to_vec();
    }
    let mut order: Vec<usize> = (0..demands.len()).collect();
    order.sort_by(|&a, &b| demands[a].total_cmp(&demands[b]).then(a.cmp(&b)));
    let mut rates = vec![0.0; demands.len()];
    let mut capacity = capacity_bps;
    let mut left = demands.len();
    for &i in &order {
        let fair = capacity / left as f64;
        let granted = demands[i].min(fair);
        rates[i] = granted;
        capacity = (capacity - granted).max(0.0);
        left -= 1;
    }
    rates
}

/// One transfer that finished crossing the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkDelivery {
    /// The caller-supplied transfer tag (e.g. a session id).
    pub tag: u64,
    /// When the last byte left the link.
    pub at: SimTime,
}

#[derive(Debug, Clone)]
struct Transfer {
    tag: u64,
    /// Bytes still to move, settled up to `FairShareLink::now`.
    remaining: f64,
    /// The most the receiver can absorb, bytes/s.
    demand_bps: f64,
    /// Currently granted rate, bytes/s.
    rate_bps: f64,
    /// Planned completion instant under the current rate.
    finish: SimTime,
}

/// A shared-bandwidth link dividing its capacity max-min fairly among
/// concurrent transfers (see the module-level docs above).
#[derive(Debug, Clone)]
pub struct FairShareLink {
    capacity_bps: f64,
    now: SimTime,
    active: Vec<Transfer>,
    deliveries: Vec<LinkDelivery>,
}

impl FairShareLink {
    /// Creates a link with the given capacity in bytes per second.
    /// `f64::INFINITY` models an uncontended (zero-delay) network.
    ///
    /// # Errors
    ///
    /// Rejects NaN, zero or negative capacities.
    pub fn new(capacity_bps: f64) -> Result<Self, SeqioError> {
        if capacity_bps.is_nan() || capacity_bps <= 0.0 {
            return Err(SeqioError::Experiment(format!(
                "link capacity must be positive, got {capacity_bps}"
            )));
        }
        Ok(FairShareLink {
            capacity_bps,
            now: SimTime::ZERO,
            active: Vec::new(),
            deliveries: Vec::new(),
        })
    }

    /// An infinite-capacity link: every transfer completes the instant it
    /// starts, adding exactly zero delay (the identity configuration).
    pub fn infinite() -> Self {
        FairShareLink::new(f64::INFINITY).expect("infinity is a valid capacity")
    }

    /// The configured capacity, bytes per second.
    pub fn capacity_bps(&self) -> f64 {
        self.capacity_bps
    }

    /// The instant the link's bookkeeping is settled to.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of transfers currently in flight.
    pub fn active_count(&self) -> usize {
        self.active.len()
    }

    /// `true` when nothing is in flight.
    pub fn is_idle(&self) -> bool {
        self.active.is_empty()
    }

    /// Begins moving `bytes` for `tag` at instant `at`, demanding at most
    /// `demand_bps` (the receiver's own bottleneck; `f64::INFINITY` for
    /// "as fast as the link allows"). Rates of every active transfer are
    /// recomputed immediately. A zero-byte transfer completes at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes the link's settled clock (starts must be
    /// fed in non-decreasing time order) or `demand_bps` is not positive.
    pub fn start_transfer(&mut self, at: SimTime, bytes: u64, demand_bps: f64, tag: u64) {
        assert!(at >= self.now, "transfer starts must not precede the link clock");
        assert!(!demand_bps.is_nan() && demand_bps > 0.0, "transfer demand must be positive");
        // Deliver anything that finishes strictly before the new arrival,
        // then settle the survivors' byte counts to `at`.
        self.run_completions(at);
        self.settle_to(at);
        self.active.push(Transfer {
            tag,
            remaining: bytes as f64,
            demand_bps,
            rate_bps: 0.0,
            finish: SimTime::MAX,
        });
        self.recompute_rates();
    }

    /// Drains the accumulated [`LinkDelivery`] records, in delivery order
    /// (ties broken by ascending tag).
    pub fn take_deliveries(&mut self) -> Vec<LinkDelivery> {
        std::mem::take(&mut self.deliveries)
    }

    /// Moves bytes for the interval `[self.now, to]` at current rates.
    fn settle_to(&mut self, to: SimTime) {
        if to <= self.now {
            return;
        }
        let dt = to.duration_since(self.now).as_secs_f64();
        for t in &mut self.active {
            if t.rate_bps.is_infinite() {
                t.remaining = 0.0;
            } else {
                t.remaining = (t.remaining - t.rate_bps * dt).max(0.0);
            }
        }
        self.now = to;
    }

    /// Reassigns every active transfer its max-min fair rate and replans
    /// its completion instant from the settled clock.
    fn recompute_rates(&mut self) {
        if self.active.is_empty() {
            return;
        }
        let demands: Vec<f64> = self.active.iter().map(|t| t.demand_bps).collect();
        let rates = max_min_rates(self.capacity_bps, &demands);
        for (t, rate) in self.active.iter_mut().zip(rates) {
            t.rate_bps = rate;
            t.finish = if t.remaining <= 0.0 || rate.is_infinite() {
                self.now
            } else {
                // Ceil to whole nanoseconds so the plan never undershoots;
                // completion forces the residue to zero.
                let ns = (t.remaining / rate * 1e9).ceil();
                SimTime::from_nanos(self.now.as_nanos().saturating_add(ns as u64))
            };
        }
    }

    /// Delivers every planned completion at instants `<= limit`, in time
    /// order, recomputing rates after each completion batch.
    fn run_completions(&mut self, limit: SimTime) {
        loop {
            let Some(next) = self.active.iter().map(|t| t.finish).min() else {
                return;
            };
            if next > limit {
                return;
            }
            self.settle_to(next);
            let mut done: Vec<u64> =
                self.active.iter().filter(|t| t.finish == next).map(|t| t.tag).collect();
            done.sort_unstable();
            self.active.retain(|t| t.finish != next);
            for tag in done {
                self.deliveries.push(LinkDelivery { tag, at: next });
            }
            self.recompute_rates();
        }
    }
}

impl SimComponent for FairShareLink {
    fn init(&mut self) {}

    fn peek_next_time(&self) -> Option<SimTime> {
        self.active.iter().map(|t| t.finish).min()
    }

    fn advance_to(&mut self, limit: SimTime) {
        self.run_completions(limit);
        self.settle_to(limit.max(self.now));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn drained(link: &mut FairShareLink) -> Vec<LinkDelivery> {
        link.advance_to(SimTime::MAX);
        link.take_deliveries()
    }

    #[test]
    fn single_transfer_runs_at_link_speed() {
        let mut l = FairShareLink::new(1000.0).unwrap();
        l.init();
        l.start_transfer(SimTime::ZERO, 500, f64::INFINITY, 1);
        let d = drained(&mut l);
        assert_eq!(d, vec![LinkDelivery { tag: 1, at: SimTime::from_nanos(500_000_000) }]);
        assert!(l.is_idle());
    }

    #[test]
    fn demand_cap_limits_a_transfer() {
        // 1000 B/s link, client can only take 100 B/s: 500 B takes 5 s.
        let mut l = FairShareLink::new(1000.0).unwrap();
        l.start_transfer(SimTime::ZERO, 500, 100.0, 9);
        let d = drained(&mut l);
        assert_eq!(d[0].at, SimTime::ZERO + SimDuration::from_secs(5));
    }

    #[test]
    fn rates_rise_progressively_as_transfers_finish() {
        // Two 100 B transfers share 100 B/s: both at 50 B/s. One 50 B
        // transfer joining at t=0 with demand 50 would change shares; use
        // a staggered pair instead: A=150 B and B=50 B from t=0. Both run
        // at 50 B/s; B finishes at 1 s; A then gets the full 100 B/s for
        // its remaining 100 B, finishing at 2 s (not 3 s).
        let mut l = FairShareLink::new(100.0).unwrap();
        l.start_transfer(SimTime::ZERO, 150, f64::INFINITY, 0);
        l.start_transfer(SimTime::ZERO, 50, f64::INFINITY, 1);
        let d = drained(&mut l);
        assert_eq!(d[0], LinkDelivery { tag: 1, at: SimTime::ZERO + SimDuration::from_secs(1) });
        assert_eq!(d[1], LinkDelivery { tag: 0, at: SimTime::ZERO + SimDuration::from_secs(2) });
    }

    #[test]
    fn late_arrival_slows_an_active_transfer() {
        // A: 200 B from t=0 alone at 100 B/s. B: 100 B arrives at t=1
        // when A has 100 B left; both then run at 50 B/s, finishing at 3 s.
        let mut l = FairShareLink::new(100.0).unwrap();
        l.start_transfer(SimTime::ZERO, 200, f64::INFINITY, 0);
        l.start_transfer(SimTime::ZERO + SimDuration::from_secs(1), 100, f64::INFINITY, 1);
        let d = drained(&mut l);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].at, SimTime::ZERO + SimDuration::from_secs(3));
        assert_eq!(d[1].at, SimTime::ZERO + SimDuration::from_secs(3));
        assert_eq!((d[0].tag, d[1].tag), (0, 1), "equal instants deliver in tag order");
    }

    #[test]
    fn infinite_capacity_adds_zero_delay() {
        let mut l = FairShareLink::infinite();
        let t = SimTime::from_nanos(123_456);
        l.start_transfer(t, u64::MAX / 2, f64::INFINITY, 4);
        l.advance_to(t);
        assert_eq!(l.take_deliveries(), vec![LinkDelivery { tag: 4, at: t }]);
    }

    #[test]
    fn zero_byte_transfer_completes_at_start() {
        let mut l = FairShareLink::new(10.0).unwrap();
        let t = SimTime::from_nanos(5);
        l.start_transfer(t, 0, 1.0, 2);
        l.advance_to(t);
        assert_eq!(l.take_deliveries(), vec![LinkDelivery { tag: 2, at: t }]);
    }

    #[test]
    fn chunked_advance_is_bit_identical_to_one_shot() {
        let runs: Vec<Vec<LinkDelivery>> = [1u64, 7, 1000]
            .iter()
            .map(|&step_ms| {
                let mut l = FairShareLink::new(777.0).unwrap();
                l.init();
                for i in 0..20u64 {
                    l.advance_to(SimTime::from_nanos(i * 50_000_000));
                    l.start_transfer(
                        SimTime::from_nanos(i * 50_000_000),
                        100 + i * 37,
                        if i % 3 == 0 { 250.0 } else { f64::INFINITY },
                        i,
                    );
                }
                let mut t = SimTime::from_nanos(20 * 50_000_000);
                while l.peek_next_time().is_some() {
                    t += SimDuration::from_millis(step_ms);
                    l.advance_to(t);
                }
                l.take_deliveries()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
        assert_eq!(runs[0].len(), 20);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        assert!(FairShareLink::new(0.0).is_err());
        assert!(FairShareLink::new(-5.0).is_err());
        assert!(FairShareLink::new(f64::NAN).is_err());
    }

    #[test]
    #[should_panic(expected = "must not precede")]
    fn starts_must_be_time_ordered() {
        let mut l = FairShareLink::new(10.0).unwrap();
        l.start_transfer(SimTime::from_nanos(100), 10, 1.0, 0);
        l.advance_to(SimTime::from_nanos(50_000_000_000));
        l.start_transfer(SimTime::from_nanos(10), 10, 1.0, 1);
    }

    #[test]
    fn allocator_waterfills() {
        let r = max_min_rates(90.0, &[10.0, 100.0, 100.0]);
        // Small demand fully served; the rest split the remainder evenly.
        assert!((r[0] - 10.0).abs() < 1e-9);
        assert!((r[1] - 40.0).abs() < 1e-9);
        assert!((r[2] - 40.0).abs() < 1e-9);
        assert!(max_min_rates(f64::INFINITY, &[5.0, f64::INFINITY])[1].is_infinite());
        assert!(max_min_rates(10.0, &[]).is_empty());
    }
}
