//! Cluster scale-out: aggregate throughput vs node count, healthy and
//! with one straggler node, for the hash and straggler-aware routers.
//!
//! Every node runs the same batch workload (a fixed request budget per
//! stream from time zero), so a node's realized window is its drain time
//! and the cluster window is the makespan across nodes. The issue's two
//! acceptance bars — >= 3.5x aggregate scaling from 1 to 4 healthy nodes
//! and straggler-aware >= 1.5x hash under one factor-4 straggler, both at
//! 100 streams per disk — are asserted here and in
//! `crates/cluster/tests/cluster_scaling.rs`, and recorded by
//! `probe cluster` into `bench_results/cluster_probe.json`.

use seqio_bench::{quick_mode, Figure, Series};
use seqio_cluster::{ClusterExperiment, ClusterResult, ShardPolicy};
use seqio_node::{Experiment, FaultPlan, Frontend};
use seqio_simcore::units::KIB;
use seqio_simcore::SimDuration;

const BASE_SEED: u64 = 2026;

fn template(streams_per_disk: usize) -> Experiment {
    Experiment::builder()
        .streams_per_disk(streams_per_disk)
        .request_size(64 * KIB)
        .frontend(Frontend::stream_scheduler_with_readahead(512 * KIB))
        .requests_per_stream(16)
        .warmup(SimDuration::ZERO)
        .duration(SimDuration::from_secs(120))
        .build()
}

fn run(
    nodes: usize,
    spd: usize,
    policy: ShardPolicy,
    straggler_node: Option<usize>,
) -> ClusterResult {
    let mut b = ClusterExperiment::builder()
        .template(template(spd))
        .nodes(nodes)
        .policy(policy)
        .base_seed(BASE_SEED);
    if let Some(k) = straggler_node {
        b = b.node_fault(k, FaultPlan::new().straggler(0, 4.0, SimDuration::ZERO, None));
    }
    b.run().unwrap()
}

fn main() {
    let node_counts = [1usize, 2, 4, 8];
    let spds: &[usize] = if quick_mode() { &[100] } else { &[50, 100] };

    let mut fig = Figure::new(
        "Cluster",
        "Aggregate throughput vs node count: healthy and one factor-4 straggler",
        "Nodes",
        "Aggregate throughput (MBytes/s)",
    );

    // Remember the spd=100 operating points the acceptance bars read.
    let mut healthy_at = [0.0f64; 9];
    let mut hash_straggler_4 = 0.0f64;
    let mut aware_straggler_4 = 0.0f64;

    for &spd in spds {
        let mut healthy = Series::new(format!("Healthy S/disk={spd}"));
        let mut hash = Series::new(format!("Straggler hash S/disk={spd}"));
        let mut aware = Series::new(format!("Straggler aware S/disk={spd}"));
        for &nodes in &node_counts {
            // The straggler lives on node 1 when the cluster has one
            // (node 0 on a 1-node cluster, where there is nowhere to
            // steer and both routers degenerate to the same deal).
            let straggler = Some(1usize.min(nodes - 1));
            let h = run(nodes, spd, ShardPolicy::HashByStream, None);
            let sh = run(nodes, spd, ShardPolicy::HashByStream, straggler);
            let sa = run(nodes, spd, ShardPolicy::StragglerAware, straggler);
            if spd == 100 {
                healthy_at[nodes] = h.total_throughput_mbs();
                if nodes == 4 {
                    hash_straggler_4 = sh.total_throughput_mbs();
                    aware_straggler_4 = sa.total_throughput_mbs();
                }
            }
            healthy.push(format!("{nodes}"), h.total_throughput_mbs());
            hash.push(format!("{nodes}"), sh.total_throughput_mbs());
            aware.push(format!("{nodes}"), sa.total_throughput_mbs());
        }
        fig.add(healthy);
        fig.add(hash);
        fig.add(aware);
    }
    fig.report("cluster_scaling");

    let scale = healthy_at[4] / healthy_at[1];
    assert!(
        scale >= 3.5,
        "1 -> 4 healthy node scaling {scale:.2}x below 3.5x \
         ({:.2} -> {:.2} MB/s)",
        healthy_at[1],
        healthy_at[4]
    );
    let ratio = aware_straggler_4 / hash_straggler_4;
    assert!(
        ratio >= 1.5,
        "straggler-aware routing held only {ratio:.2}x of hash routing \
         ({aware_straggler_4:.2} vs {hash_straggler_4:.2} MB/s)"
    );
    println!(
        "1->4 healthy scaling {scale:.2}x; straggler-aware vs hash {ratio:.2}x \
         at 4 nodes, 100 streams/disk"
    );
}
