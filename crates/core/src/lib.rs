//! # seqio-core
//!
//! The paper's contribution: a host-level scheduler that makes disk
//! throughput insensitive to the number of concurrent sequential streams
//! (*"Reducing Disk I/O Performance Sensitivity for Large Numbers of
//! Sequential Streams"*, ICDCS 2009).
//!
//! The scheduler (see [`StorageServer`]):
//!
//! 1. **classifies** requests into sequential streams with small
//!    dynamically-allocated per-region bitmaps ([`Classifier`]);
//! 2. **dispatches** up to `D` streams at a time, issuing `R`-sized
//!    read-ahead disk requests, `N` per residency, replacing streams
//!    round-robin;
//! 3. **stages** prefetched data in host memory bounded by `M`
//!    ([`BufferPool`]), serving clients from memory and garbage-collecting
//!    idle buffers.
//!
//! Configuration lives in [`ServerConfig`] with the paper's invariant
//! `M >= D * R * N` enforced at validation.
//!
//! # Examples
//!
//! ```
//! use seqio_core::{ClientRequest, ServerConfig, ServerOutput, StorageServer};
//! use seqio_simcore::SimTime;
//!
//! let cfg = ServerConfig::default_tuning();
//! let mut server = StorageServer::new(cfg, vec![1_000_000]);
//!
//! // First request of a stream: unclassified, passed straight through.
//! let outs = server.on_client_request(SimTime::ZERO, ClientRequest::read(0, 0, 0, 128));
//! assert!(matches!(outs[0], ServerOutput::SubmitDisk(_)));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bitmap;
mod buffer;
mod classifier;
mod config;
mod runner;
mod server;
mod stream;

pub use bitmap::RegionBitmap;
pub use buffer::{BufferId, BufferPool, Coverage, IoBuffer, StreamId};
pub use classifier::{Classification, Classifier};
pub use config::{DispatchPolicy, ServerConfig};
pub use runner::RealNode;
pub use server::{
    BackendRequest, ClientRequest, ServerMetrics, ServerOutput, SpanEvent, StorageServer,
};
pub use stream::{PendingRequest, Stream, StreamTable};
