//! Property tests for the scenario trace format: arbitrary generated
//! traces survive serialize → parse structurally intact (which, with the
//! deterministic runner, makes replay bit-identical — the determinism
//! suite pins that end to end), the text form is a fixed point, and
//! malformed inputs fail with errors naming the offending token.

use proptest::prelude::*;
use seqio_scenario::{ScenarioTrace, TraceOp, TraceOpKind};
use seqio_simcore::SimTime;
use seqio_workload::Pattern;

/// Builds a valid trace from raw fuzz material: stream ids are globally
/// unique, times are arbitrary (the sort pass orders them), and every
/// spec satisfies `StreamSpec::validate`.
#[allow(clippy::type_complexity)]
fn build(
    nodes: usize,
    raw: &[((u64, usize, usize, u64), (u64, u64, usize, u64), u64)],
) -> ScenarioTrace {
    let mut t = ScenarioTrace::new("prop-roundtrip", nodes);
    for (stream, &((at, node, disk, start), (blocks, requests, psel, pv), retire)) in
        raw.iter().enumerate()
    {
        let pattern = match psel % 3 {
            0 => Pattern::Sequential,
            1 => Pattern::NearSequential { p: pv as f64 / 1000.0, jitter_blocks: 1 + pv },
            _ => Pattern::Random { span_blocks: blocks + pv },
        };
        let node = node % nodes;
        t.ops.push(TraceOp {
            at: SimTime::from_nanos(at),
            node,
            stream,
            kind: TraceOpKind::Inject { disk, start, blocks, requests, pattern },
        });
        // Half the streams also get retired, at or after their injection
        // (a same-instant retire exercises the inject-before-retire rank).
        if retire % 2 == 0 {
            t.ops.push(TraceOp {
                at: SimTime::from_nanos(at + retire),
                node,
                stream,
                kind: TraceOpKind::Retire,
            });
        }
    }
    t.sort();
    t
}

proptest! {
    /// serialize → parse is the identity on valid traces, and the text
    /// form is a fixed point of the round trip.
    #[test]
    fn prop_trace_text_round_trips(
        nodes in 1usize..4,
        raw in proptest::collection::vec(
            (
                (0u64..50_000_000, 0usize..8, 0usize..8, 0u64..2_000_000),
                (1u64..512, 1u64..2_000, 0usize..3, 0u64..1000),
                0u64..1_000_000,
            ),
            0..25,
        ),
    ) {
        let t = build(nodes, &raw);
        t.validate().expect("constructed traces are valid");
        let text = t.to_text();
        let parsed = ScenarioTrace::from_text(&text).expect("serialized traces parse");
        prop_assert_eq!(&parsed, &t, "parse(serialize(t)) != t");
        prop_assert_eq!(parsed.to_text(), text, "text form is not a fixed point");
    }

    /// Smuggling an unknown field into any line of a valid trace fails,
    /// and the error names the offending token and its line.
    #[test]
    fn prop_unknown_fields_are_named_in_errors(
        nodes in 1usize..3,
        raw in proptest::collection::vec(
            (
                (0u64..1_000_000, 0usize..4, 0usize..4, 0u64..100_000),
                (1u64..64, 1u64..100, 0usize..3, 0u64..1000),
                0u64..1_000,
            ),
            1..8,
        ),
        victim in 0usize..1000,
    ) {
        let t = build(nodes, &raw);
        let text = t.to_text();
        let lines: Vec<&str> = text.lines().collect();
        // Line 0 is the header comment; corrupt one real clause line.
        let victim = 1 + victim % (lines.len() - 1);
        let corrupted: Vec<String> = lines
            .iter()
            .enumerate()
            .map(|(i, l)| {
                if i == victim { format!("{l},bogus_field=1") } else { (*l).to_string() }
            })
            .collect();
        let err = ScenarioTrace::from_text(&corrupted.join("\n"))
            .expect_err("unknown fields must be rejected")
            .to_string();
        prop_assert!(err.contains("bogus_field"), "error does not name the token: {}", err);
        prop_assert!(
            err.contains(&format!("line {}", victim + 1)),
            "error does not name line {}: {}",
            victim + 1,
            err
        );
    }
}
