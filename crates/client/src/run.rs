//! The client front-end driver: open-loop session execution over live
//! storage nodes, plus the shared-link overlay and SLO assembly.
//!
//! # Execution model
//!
//! **Open loop** ([`DriveMode::OpenLoop`]): the pre-generated session
//! schedule (see [`generate_sessions`](crate::generate_sessions)) is split
//! per node; each node runs as a [`NodeSim`] advanced *independently* from
//! arrival to arrival, injecting every new session through the same
//! [`StreamHandoff`] surface mid-run migration uses and retiring sessions
//! whose lifetime bound expires. Nodes never exchange state mid-run, so a
//! worker pool can advance any subset concurrently and results are
//! bit-identical at every `SEQIO_JOBS` value.
//!
//! **Closed loop** ([`DriveMode::ClosedLoop`]): the classic all-streams-
//! at-`t=0` population, executed by the unmodified cluster driver. With an
//! unconstrained link this reduces *bit-identically* to
//! [`ClusterExperiment::run`] — the client tier only fills in the new
//! [`slo`](ClusterResult::slo) field.
//!
//! # The network overlay
//!
//! Data flows one way (storage → client), so the shared front-end link is
//! applied as a *lagged overlay*: after the nodes finish, every completed
//! session's response body enters a [`FairShareLink`] at its exact
//! storage-completion instant (`stream_done_at`), in deterministic
//! `(instant, session)` order. The link recomputes progressive max-min
//! fair shares on every start/finish, and each session's end-to-end
//! latency is `link delivery - arrival`. The overlay adds no events to
//! the storage simulation, so node results stay untouched by link
//! configuration.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use seqio_cluster::{
    ClusterExperiment, ClusterResult, NodeHealth, NodeOutcome, SessionSlo, ShardPolicy,
};
use seqio_node::sweep::{derive_seed, resolve_jobs};
use seqio_node::{Experiment, NodeSim, RunResult, StreamHandoff};
use seqio_simcore::{FairShareLink, SeqioError, SimDuration, SimTime, SpanPhase};
use seqio_workload::StreamSpec;

use crate::session::{generate_sessions, ArrivalConfig, SessionSpec};

/// [`derive_seed`] index reserved for the session-generation RNG stream.
/// Node seeds use indices `0..K`, so the session stream can never collide
/// with a node seed for any realistic cluster size; the storage-side
/// rotational and fault streams are derived from the *node* seeds and
/// stay independent as well (`seed_streams_stay_independent` in
/// `tests/arrival_stats.rs` guards this).
pub const SESSION_SEED_INDEX: usize = 0x5e55_10aa;

/// How the client population drives the cluster.
#[derive(Debug, Clone, PartialEq)]
pub enum DriveMode {
    /// Every stream lives from `t = 0` (the paper's closed-loop clients),
    /// executed by the unmodified cluster driver.
    ClosedLoop,
    /// User-scale open-loop session arrivals against live nodes.
    OpenLoop(ArrivalConfig),
}

/// The shared client-facing network link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// Link capacity in bytes per second, max-min shared among all
    /// in-flight responses. `f64::INFINITY` (the default) removes the
    /// network constraint entirely — the identity configuration.
    pub capacity_bps: f64,
    /// Per-session receive cap in bytes per second (a client NIC or
    /// player drain rate). `f64::INFINITY` takes whatever the link
    /// offers.
    pub session_demand_bps: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig { capacity_bps: f64::INFINITY, session_demand_bps: f64::INFINITY }
    }
}

impl LinkConfig {
    /// A gigabit-Ethernet-class link (125 MB/s), the paper's testbed NIC.
    pub fn gigabit() -> Self {
        LinkConfig { capacity_bps: 125.0 * 1024.0 * 1024.0, ..LinkConfig::default() }
    }

    /// `true` when neither the link nor the per-session demand constrains
    /// anything: every response is delivered the instant storage
    /// completes it, adding exactly zero latency.
    pub fn is_unconstrained(&self) -> bool {
        self.capacity_bps.is_infinite() && self.session_demand_bps.is_infinite()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Rejects NaN, zero or negative capacities and demands.
    pub fn validate(&self) -> Result<(), SeqioError> {
        if self.capacity_bps.is_nan() || self.capacity_bps <= 0.0 {
            return Err(SeqioError::Experiment(format!(
                "link capacity must be positive, got {}",
                self.capacity_bps
            )));
        }
        if self.session_demand_bps.is_nan() || self.session_demand_bps <= 0.0 {
            return Err(SeqioError::Experiment(format!(
                "per-session demand must be positive, got {}",
                self.session_demand_bps
            )));
        }
        Ok(())
    }
}

/// A complete client-driven experiment: a cluster of storage nodes, a
/// drive mode (open- or closed-loop) and the shared front-end link.
/// Build with [`ClientExperiment::builder`], run with
/// [`run`](ClientExperiment::run).
#[derive(Debug, Clone)]
pub struct ClientExperiment {
    /// Per-node storage template (shape, frontend, costs, clock,
    /// observability). In open-loop mode its stream layout is ignored:
    /// nodes start empty and adopt sessions mid-run.
    pub template: Experiment,
    /// Number of storage nodes.
    pub nodes: usize,
    /// Closed-loop stream sharding policy (open-loop placement is by
    /// title, not by this policy).
    pub policy: ShardPolicy,
    /// When set, node `k` runs with seed `derive_seed(base, k)` and the
    /// session stream with `derive_seed(base, SESSION_SEED_INDEX)`.
    pub base_seed: Option<u64>,
    /// Worker override (`None` = `SEQIO_JOBS`, then available
    /// parallelism).
    pub jobs: Option<usize>,
    /// Open- or closed-loop client population.
    pub mode: DriveMode,
    /// The shared client-facing link.
    pub link: LinkConfig,
}

impl ClientExperiment {
    /// Starts a builder: 1 node, identity routing, closed loop,
    /// unconstrained link, template defaults from
    /// [`Experiment::builder`].
    pub fn builder() -> ClientExperimentBuilder {
        ClientExperimentBuilder {
            spec: ClientExperiment {
                template: Experiment::builder().build(),
                nodes: 1,
                policy: ShardPolicy::Identity,
                base_seed: None,
                jobs: None,
                mode: DriveMode::ClosedLoop,
                link: LinkConfig::default(),
            },
        }
    }

    /// Runs the experiment and merges everything into a [`ClusterResult`]
    /// whose [`slo`](ClusterResult::slo) field carries the end-to-end
    /// session percentiles (when any session completed).
    ///
    /// # Errors
    ///
    /// Returns the first specification error; a valid specification
    /// always runs to completion.
    pub fn run(&self) -> Result<ClusterResult, SeqioError> {
        self.link.validate()?;
        match &self.mode {
            DriveMode::ClosedLoop => self.run_closed(),
            DriveMode::OpenLoop(cfg) => self.run_open(cfg),
        }
    }

    /// The exact open-loop session schedule [`run`](Self::run) will
    /// execute: the same deterministic `generate_sessions` call the
    /// driver performs internally, exposed so post-hoc consumers — trace
    /// correlation in `seqio-telemetry`, the CLI's `--correlate-out` —
    /// can join global session ids back to arrival instants and titles
    /// without re-deriving seeds. Returns an empty schedule in
    /// closed-loop mode, where every stream is a session arriving at
    /// `t = 0`.
    ///
    /// # Errors
    ///
    /// Returns the first specification error, exactly as `run` would.
    pub fn session_schedule(&self) -> Result<Vec<SessionSpec>, SeqioError> {
        let DriveMode::OpenLoop(cfg) = &self.mode else { return Ok(Vec::new()) };
        if self.nodes == 0 {
            return Err(SeqioError::Experiment("need at least one node".into()));
        }
        let disks = self.template.shape.total_disks();
        let request_blocks = self.template.request_blocks();
        let usable_blocks =
            self.template.shape.disk.geometry.capacity_bytes / seqio_disk::BLOCK_SIZE;
        let horizon = self.template.warmup + self.template.duration;
        let base = self.base_seed.unwrap_or(self.template.seed);
        let session_seed = derive_seed(base, SESSION_SEED_INDEX);
        generate_sessions(
            cfg,
            self.nodes,
            disks,
            request_blocks,
            usable_blocks,
            horizon,
            session_seed,
        )
    }

    /// Closed loop: the unmodified cluster driver plus the link overlay.
    /// Every stream is one session arriving at `t = 0`; a stream only
    /// yields a latency sample if it exhausts a finite request budget.
    fn run_closed(&self) -> Result<ClusterResult, SeqioError> {
        let mut b = ClusterExperiment::builder()
            .template(self.template.clone())
            .nodes(self.nodes)
            .policy(self.policy);
        if let Some(s) = self.base_seed {
            b = b.base_seed(s);
        }
        if let Some(j) = self.jobs {
            b = b.jobs(j);
        }
        let mut result = b.run()?;
        let total = result.assignment.len();
        let bytes = self.template.requests_per_stream.unwrap_or(0) * self.template.request_bytes;
        let arrivals = vec![SimTime::ZERO; total];
        let session_bytes = vec![bytes; total];
        overlay_link(&self.link, &mut result, &arrivals, &session_bytes, total as u64, &[])?;
        Ok(result)
    }

    /// Open loop: pre-generate the schedule, drive each node
    /// independently, merge, overlay the link.
    fn run_open(&self, cfg: &ArrivalConfig) -> Result<ClusterResult, SeqioError> {
        if self.nodes == 0 {
            return Err(SeqioError::Experiment("need at least one node".into()));
        }
        if self.template.replay.is_some() {
            return Err(SeqioError::Experiment(
                "open-loop sessions are incompatible with trace replay".into(),
            ));
        }
        if self.template.faults.is_some() {
            return Err(SeqioError::Experiment(
                "the open-loop client front-end does not support fault plans yet".into(),
            ));
        }
        // Nodes start empty and adopt sessions mid-run; the template's
        // static stream layout does not apply.
        let mut template = self.template.clone();
        template.streams_per_disk = 0;
        template.stream_counts = None;
        template.open_sessions = true;
        template.requests_per_stream = None;

        let request_blocks = template.request_blocks();
        let base = self.base_seed.unwrap_or(template.seed);
        // None of the template fields cleared above feed session
        // generation, so the public schedule is exactly the one executed.
        let sessions = self.session_schedule()?;

        // Per-node operation timelines: injections at arrival, optional
        // retirements at the lifetime bound. Sorted by (instant, session,
        // kind) so the schedule is one fixed sequence per node.
        #[derive(Clone, Copy)]
        struct Op {
            at: SimTime,
            session: usize,
            retire: bool,
        }
        let horizon_at = SimTime::ZERO + template.warmup + template.duration;
        let mut ops: Vec<Vec<Op>> = vec![Vec::new(); self.nodes];
        for s in &sessions {
            ops[s.node].push(Op { at: s.arrival, session: s.id, retire: false });
            if let Some(life) = cfg.session_lifetime {
                let cut = s.arrival + life;
                if cut < horizon_at {
                    ops[s.node].push(Op { at: cut, session: s.id, retire: true });
                }
            }
        }
        for list in &mut ops {
            list.sort_by_key(|o| (o.at, o.session, o.retire));
        }

        // Specs and sims are built serially so construction order can
        // never depend on the worker schedule.
        let mut specs = Vec::with_capacity(self.nodes);
        let mut cells: Vec<Mutex<Option<NodeSim>>> = Vec::with_capacity(self.nodes);
        for k in 0..self.nodes {
            let mut spec = template.clone();
            if self.base_seed.is_some() {
                spec.seed = derive_seed(base, k);
            }
            let mut sim = NodeSim::new(&spec)?;
            seqio_simcore::SimComponent::init(&mut sim);
            cells.push(Mutex::new(Some(sim)));
            specs.push(spec);
        }

        struct NodeOut {
            result: RunResult,
            /// Local slot → global session id, in injection order.
            slots: Vec<usize>,
            /// Sessions retired at their lifetime bound (abandoned).
            abandoned: Vec<usize>,
        }
        let outs: Vec<Mutex<Option<NodeOut>>> = (0..self.nodes).map(|_| Mutex::new(None)).collect();
        let sessions_ref = &sessions;
        let ops_ref = &ops;
        let cells_ref = &cells;
        let outs_ref = &outs;

        let drive_node = move |k: usize| {
            let mut sim = cells_ref[k]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .take()
                .expect("each node is driven exactly once");
            let mut slots: Vec<usize> = Vec::new();
            let mut slot_of: HashMap<usize, usize> = HashMap::new();
            let mut abandoned: Vec<usize> = Vec::new();
            for op in &ops_ref[k] {
                sim.advance_to(op.at);
                if op.retire {
                    let slot = slot_of[&op.session];
                    if sim.stream_live(slot) {
                        let _ = sim.retire_stream(slot);
                        abandoned.push(op.session);
                    }
                } else {
                    let s: &SessionSpec = &sessions_ref[op.session];
                    let spec = StreamSpec::sequential(s.disk, s.start, request_blocks, s.requests);
                    let handoff = StreamHandoff::fresh(spec)
                        .expect("session specs are validated at generation time");
                    let slot = sim.inject_stream(op.at, handoff);
                    debug_assert_eq!(slot, slots.len(), "open nodes fill slots densely");
                    slot_of.insert(op.session, slot);
                    slots.push(op.session);
                }
            }
            sim.advance_to(SimTime::MAX);
            let out = NodeOut { result: sim.finish(), slots, abandoned };
            *outs_ref[k].lock().unwrap_or_else(|e| e.into_inner()) = Some(out);
        };

        // Deal nodes to workers by an atomic cursor (exactly the cluster
        // driver's discipline): each node is driven by one worker and its
        // own event order is fixed, so the schedule cannot leak in.
        let workers = resolve_jobs(self.jobs).clamp(1, self.nodes);
        if workers == 1 {
            for k in 0..self.nodes {
                drive_node(k);
            }
        } else {
            let cursor = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let k = cursor.fetch_add(1, Ordering::Relaxed);
                        if k >= self.nodes {
                            break;
                        }
                        drive_node(k);
                    });
                }
            });
        }

        let mut assignment = vec![0usize; sessions.len()];
        for s in &sessions {
            assignment[s.id] = s.node;
        }
        let mut node_ids = Vec::with_capacity(self.nodes);
        let mut outcomes = Vec::with_capacity(self.nodes);
        let mut skip = vec![false; sessions.len()];
        for (k, (cell, spec)) in outs.into_iter().zip(specs).enumerate() {
            let out = cell
                .into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("every node was driven");
            for &g in &out.abandoned {
                skip[g] = true;
            }
            outcomes.push(NodeOutcome {
                node: k,
                assigned_streams: out.slots.len(),
                health: NodeHealth::healthy(),
                spec: Some(spec),
                result: Some(out.result),
            });
            node_ids.push(out.slots);
        }
        let mut result = ClusterResult::merge(outcomes, assignment, node_ids, Vec::new());
        let arrivals: Vec<SimTime> = sessions.iter().map(|s| s.arrival).collect();
        let session_bytes: Vec<u64> =
            sessions.iter().map(|s| s.requests * template.request_bytes).collect();
        overlay_link(
            &self.link,
            &mut result,
            &arrivals,
            &session_bytes,
            sessions.len() as u64,
            &skip,
        )?;
        Ok(result)
    }
}

/// Feeds every completed session's response through the shared link at
/// its exact storage-completion instant, fills in
/// [`ClusterResult::slo`], and — on a constrained link — stamps the
/// `network_delivered` phase onto each session's final span. With an
/// unconstrained link the network adds zero delay and spans are left
/// byte-identical to a run without the front-end tier.
fn overlay_link(
    link: &LinkConfig,
    result: &mut ClusterResult,
    arrivals: &[SimTime],
    session_bytes: &[u64],
    admitted: u64,
    skip: &[bool],
) -> Result<(), SeqioError> {
    // Completed sessions in deterministic (instant, session) order.
    let mut done: Vec<(SimTime, usize)> = Vec::new();
    for outcome in &result.nodes {
        let Some(r) = &outcome.result else { continue };
        for (slot, &g) in result.node_stream_ids[outcome.node].iter().enumerate() {
            if skip.get(g).copied().unwrap_or(false) {
                continue;
            }
            if let Some(t) = r.stream_done_at.get(slot).copied().flatten() {
                done.push((t, g));
            }
        }
    }
    done.sort_unstable();

    let mut sim = FairShareLink::new(link.capacity_bps)?;
    for &(t, g) in &done {
        sim.start_transfer(t, session_bytes[g], link.session_demand_bps, g as u64);
    }
    seqio_simcore::SimComponent::advance_to(&mut sim, SimTime::MAX);
    let mut delivered: Vec<Option<SimTime>> = vec![None; arrivals.len()];
    for d in sim.take_deliveries() {
        delivered[d.tag as usize] = Some(d.at);
    }

    let latencies: Vec<SimDuration> = delivered
        .iter()
        .enumerate()
        .filter_map(|(g, t)| t.map(|t| t.duration_since(arrivals[g])))
        .collect();
    result.slo = SessionSlo::from_latencies(admitted, latencies);

    if !link.is_unconstrained() {
        let ids = result.node_stream_ids.clone();
        for outcome in &mut result.nodes {
            let node = outcome.node;
            let Some(r) = outcome.result.as_mut() else { continue };
            let done_at = r.stream_done_at.clone();
            let Some(spans) = r.spans.as_mut() else { continue };
            for span in spans.iter_mut() {
                // The session's final request is the span whose delivery
                // instant equals the stream's completion instant.
                let Some(d) = done_at.get(span.stream).copied().flatten() else { continue };
                if span.stamp(SpanPhase::Delivered) != Some(d) {
                    continue;
                }
                if let Some(net) = ids[node].get(span.stream).and_then(|&g| delivered[g]) {
                    span.stamps[SpanPhase::NetworkDelivered.index()] = Some(net);
                }
            }
        }
    }
    Ok(())
}

/// Builder for [`ClientExperiment`].
#[derive(Debug, Clone)]
pub struct ClientExperimentBuilder {
    spec: ClientExperiment,
}

impl ClientExperimentBuilder {
    /// Replaces the per-node storage template.
    pub fn template(mut self, t: Experiment) -> Self {
        self.spec.template = t;
        self
    }

    /// Sets the node count.
    pub fn nodes(mut self, k: usize) -> Self {
        self.spec.nodes = k;
        self
    }

    /// Sets the closed-loop sharding policy.
    pub fn policy(mut self, p: ShardPolicy) -> Self {
        self.spec.policy = p;
        self
    }

    /// Derives per-node and session seeds from a cluster base seed.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.spec.base_seed = Some(seed);
        self
    }

    /// Overrides the worker count.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.spec.jobs = Some(jobs);
        self
    }

    /// Switches to open-loop session arrivals.
    pub fn arrivals(mut self, cfg: ArrivalConfig) -> Self {
        self.spec.mode = DriveMode::OpenLoop(cfg);
        self
    }

    /// Switches to the closed-loop population (the default).
    pub fn closed_loop(mut self) -> Self {
        self.spec.mode = DriveMode::ClosedLoop;
        self
    }

    /// Configures the shared client-facing link.
    pub fn link(mut self, link: LinkConfig) -> Self {
        self.spec.link = link;
        self
    }

    /// Finalizes the specification without running it.
    pub fn build(self) -> ClientExperiment {
        self.spec
    }

    /// Builds and runs in one step.
    ///
    /// # Errors
    ///
    /// Returns the first specification error.
    pub fn run(self) -> Result<ClusterResult, SeqioError> {
        self.spec.run()
    }
}
