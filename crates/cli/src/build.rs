//! Builds an [`Experiment`] from parsed flags (shared by `run` and `sweep`).

use seqio_core::ServerConfig;
use seqio_hostsched::{ReadaheadConfig, SchedKind};
use seqio_node::{CostModel, Experiment, Frontend, NodeShape, Placement};
use seqio_simcore::SimDuration;
use seqio_workload::Pattern;

use crate::args::{parse_size, Args};
use crate::common::CommonArgs;

/// Flags understood by experiment construction. The fault / output /
/// worker knobs every subcommand shares live in
/// [`crate::common::COMMON_FLAGS`] instead.
pub const EXPERIMENT_FLAGS: &[&str] = &[
    "shape",
    "streams",
    "request",
    "frontend",
    "readahead",
    "d",
    "n",
    "memory",
    "scheduler",
    "pattern",
    "writes",
    "placement",
    "requests",
    "warmup",
    "duration",
    "seed",
    "local-costs",
    "trace",
];

/// Builds the experiment, reporting the first flag problem. The shared
/// flags (`--faults`, the observability outputs) arrive pre-parsed in
/// `common` and are installed on the template here.
///
/// # Errors
///
/// Returns a usage message describing the offending flag.
pub fn experiment_from(args: &Args, common: &CommonArgs) -> Result<Experiment, String> {
    let shape = match args.get("shape").unwrap_or("single") {
        "single" => NodeShape::single_disk(),
        "eight" => NodeShape::eight_disk(),
        "sixty" => NodeShape::sixty_disk(),
        other => return Err(format!("--shape: expected single|eight|sixty, got {other:?}")),
    };
    let streams = args.u64_or("streams", 10)? as usize;
    if streams == 0 {
        return Err("--streams: must be at least 1".into());
    }
    let request = args.size_or("request", 64 * 1024)?;
    let readahead = args.size_or("readahead", 1024 * 1024)?;

    let frontend = match args.get("frontend").unwrap_or("direct") {
        "direct" => Frontend::Direct,
        "stream" => {
            // Explicit D/N/M if given, else the all-dispatched preset.
            match (args.get("d"), args.get("n"), args.get("memory")) {
                (None, None, None) => Frontend::AllDispatched { read_ahead_bytes: readahead },
                _ => {
                    let d = args.u64_or("d", 4)? as usize;
                    let n = args.u64_or("n", 8)?;
                    let m = args.size_or("memory", d as u64 * readahead * n)?;
                    let cfg = ServerConfig {
                        dispatch_streams: d,
                        read_ahead_bytes: readahead,
                        requests_per_residency: n,
                        memory_bytes: m,
                        ..ServerConfig::default_tuning()
                    };
                    cfg.validate()?;
                    Frontend::StreamScheduler(cfg)
                }
            }
        }
        "linux" => {
            let scheduler = match args.get("scheduler").unwrap_or("anticipatory") {
                "noop" => SchedKind::Noop,
                "deadline" => SchedKind::Deadline,
                "cfq" => SchedKind::Cfq,
                "anticipatory" => SchedKind::Anticipatory,
                other => {
                    return Err(format!(
                        "--scheduler: expected noop|deadline|cfq|anticipatory, got {other:?}"
                    ))
                }
            };
            Frontend::Linux { scheduler, readahead: ReadaheadConfig::default() }
        }
        other => return Err(format!("--frontend: expected direct|stream|linux, got {other:?}")),
    };

    let pattern = match args.get("pattern").unwrap_or("seq") {
        "seq" | "sequential" => Pattern::Sequential,
        "near" | "near-seq" => Pattern::NearSequential { p: 0.1, jitter_blocks: 64 },
        "random" => Pattern::Random { span_blocks: 1 << 20 },
        other => return Err(format!("--pattern: expected seq|near|random, got {other:?}")),
    };

    let placement = match args.get("placement") {
        None | Some("uniform") => Placement::Uniform,
        Some(v) => match v.strip_prefix("interval:") {
            Some(sz) => {
                Placement::Interval(parse_size(sz).map_err(|e| format!("--placement: {e}"))?)
            }
            None => return Err(format!("--placement: expected uniform|interval:SIZE, got {v:?}")),
        },
    };

    let mut b = Experiment::builder()
        .shape(shape)
        .streams_per_disk(streams)
        .request_size(request)
        .frontend(frontend)
        .pattern(pattern)
        .placement(placement)
        .writes(args.switch("writes"))
        .warmup(args.duration_or("warmup", SimDuration::from_secs(3))?)
        .duration(args.duration_or("duration", SimDuration::from_secs(5))?)
        .seed(args.u64_or("seed", 1)?);
    if let Some(r) = args.get("requests") {
        let n: u64 = r.parse().map_err(|_| format!("--requests: bad integer {r:?}"))?;
        b = b.requests_per_stream(n);
    }
    if args.switch("local-costs") {
        b = b.costs(CostModel::local_xdd());
    }
    if args.get("trace").is_some() {
        b = b.record_trace(true);
    }
    if let Some(plan) = &common.faults {
        b = b.faults(plan.clone());
    }
    if let Some(cfg) = common.obs() {
        b = b.observe(cfg);
    }
    let e = b.build();
    e.validate()?;
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(items: &[&str]) -> Args {
        Args::parse(items.iter().map(|s| s.to_string())).unwrap()
    }

    /// Parses the shared flags too, the way every subcommand does.
    fn try_build(a: &Args) -> Result<Experiment, String> {
        let common = CommonArgs::from_args(a)?;
        experiment_from(a, &common)
    }

    #[test]
    fn defaults_build() {
        let e = try_build(&args(&[])).unwrap();
        assert_eq!(e.streams_per_disk, 10);
        assert_eq!(e.request_bytes, 64 * 1024);
        assert!(matches!(e.frontend, Frontend::Direct));
    }

    #[test]
    fn stream_frontend_with_explicit_drnm() {
        let e = try_build(&args(&[
            "--frontend",
            "stream",
            "--d",
            "2",
            "--n",
            "4",
            "--readahead",
            "512K",
        ]))
        .unwrap();
        match e.frontend {
            Frontend::StreamScheduler(cfg) => {
                assert_eq!(cfg.dispatch_streams, 2);
                assert_eq!(cfg.requests_per_residency, 4);
                assert_eq!(cfg.read_ahead_bytes, 512 * 1024);
                assert_eq!(cfg.memory_bytes, 2 * 4 * 512 * 1024);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stream_frontend_defaults_to_all_dispatched() {
        let e = try_build(&args(&["--frontend", "stream", "--readahead", "2M"])).unwrap();
        assert!(matches!(
            e.frontend,
            Frontend::AllDispatched { read_ahead_bytes } if read_ahead_bytes == 2 << 20
        ));
    }

    #[test]
    fn linux_frontend_with_scheduler() {
        let e = try_build(&args(&["--frontend", "linux", "--scheduler", "cfq"])).unwrap();
        assert!(matches!(e.frontend, Frontend::Linux { scheduler: SchedKind::Cfq, .. }));
    }

    #[test]
    fn interval_placement_and_pattern() {
        let e = try_build(&args(&[
            "--placement",
            "interval:1G",
            "--pattern",
            "near",
            "--shape",
            "eight",
        ]))
        .unwrap();
        assert!(matches!(e.placement, Placement::Interval(b) if b == 1 << 30));
        assert!(matches!(e.pattern, Pattern::NearSequential { .. }));
        assert_eq!(e.shape.total_disks(), 8);
    }

    #[test]
    fn bad_values_are_reported() {
        assert!(try_build(&args(&["--shape", "giant"])).is_err());
        assert!(try_build(&args(&["--frontend", "warp"])).is_err());
        assert!(try_build(&args(&["--streams", "0"])).is_err());
        assert!(try_build(&args(&["--scheduler", "bfq", "--frontend", "linux"])).is_err());
        assert!(try_build(&args(&["--placement", "pile"])).is_err());
    }

    #[test]
    fn writes_switch_applies() {
        let e = try_build(&args(&["--writes"])).unwrap();
        assert!(e.writes);
    }

    #[test]
    fn observability_flags_enable_the_recorder() {
        // Default: nothing recorded.
        assert!(try_build(&args(&[])).unwrap().obs.is_none());
        // --trace-out enables spans only.
        let e = try_build(&args(&["--trace-out", "spans.csv"])).unwrap();
        let obs = e.obs.expect("--trace-out enables observability");
        assert!(obs.spans && !obs.metrics);
        // --metrics-out enables sampling, with a configurable period.
        let e = try_build(&args(&["--metrics-out", "metrics.csv", "--sample-interval", "2ms"]))
            .unwrap();
        let obs = e.obs.expect("--metrics-out enables observability");
        assert!(!obs.spans && obs.metrics);
        assert_eq!(obs.sample_interval, SimDuration::from_millis(2));
        // Both together.
        let e = try_build(&args(&["--trace-out", "s.jsonl", "--metrics-out", "m.csv"])).unwrap();
        let obs = e.obs.unwrap();
        assert!(obs.spans && obs.metrics);
        assert_eq!(obs.sample_interval, SimDuration::from_millis(10), "default period");
    }

    #[test]
    fn faults_spec_builds_a_plan() {
        let e = try_build(&args(&[
            "--faults",
            "straggler:disk=0,factor=4,from=1s,for=10s;errors:disk=0,rate=0.01",
        ]))
        .unwrap();
        let plan = e.faults.expect("--faults installs a plan");
        assert_eq!(
            plan.straggler_factor(0, seqio_simcore::SimTime::ZERO + SimDuration::from_secs(2)),
            4.0
        );
        // Default: healthy.
        assert!(try_build(&args(&[])).unwrap().faults.is_none());
        // Malformed specs and plans naming absent disks are usage errors.
        assert!(try_build(&args(&["--faults", "wobble:disk=0"])).is_err());
        assert!(try_build(&args(&["--faults", "errors:disk=9,rate=0.1"])).is_err());
    }
}
