//! Controller configuration and presets.

use seqio_simcore::SimDuration;

/// Configuration of one disk controller.
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerConfig {
    /// Number of disk ports (drives attached).
    pub ports: usize,
    /// Per-port link rate (SATA), bytes/second.
    pub link_rate: u64,
    /// Aggregate controller/host-bus rate shared by all ports, bytes/second.
    pub aggregate_rate: u64,
    /// Controller memory available for prefetched data, bytes (0 = none).
    pub cache_bytes: u64,
    /// Controller-level read-ahead per miss, bytes (0 disables controller
    /// prefetch; the disk may still prefetch into its own cache).
    pub prefetch_bytes: u64,
    /// Fixed firmware cost charged per host request on the controller's
    /// (single) processor.
    pub cpu_fixed: SimDuration,
    /// Additional firmware cost per MiB transferred (DMA setup, scatter /
    /// gather bookkeeping).
    pub cpu_per_mib: SimDuration,
    /// Buffer-management pressure: extra cost per host request, per MiB of
    /// request buffers resident in the controller at the time (scatter /
    /// gather descriptor upkeep grows with mapped bytes). This is the
    /// effect the paper names for the Figure 12 collapse (many large
    /// outstanding buffers) and the Figure 13 recovery (few).
    pub cpu_per_resident_mib: SimDuration,
    /// Maximum retries for a disk fetch that reports a transient read
    /// error (fault injection) before the controller gives up and lets the
    /// drive's internal recovery complete the request.
    pub max_retries: u32,
    /// Backoff before the first retry of an errored fetch; doubles on each
    /// further attempt.
    pub retry_backoff: SimDuration,
    /// Per-request deadline: a fetch whose total service time exceeds this
    /// is counted as timed out and is no longer retried. `ZERO` disables
    /// the deadline (the default — healthy runs count nothing).
    pub request_timeout: SimDuration,
}

impl ControllerConfig {
    /// Broadcom BC4810-alike: the entry-level 8-port SATA RAID controller
    /// from the paper's testbed — 450 MB/s aggregate, SATA-150 links.
    pub fn bc4810() -> Self {
        ControllerConfig {
            ports: 8,
            link_rate: 150_000_000,
            aggregate_rate: 450_000_000,
            cache_bytes: 0,
            prefetch_bytes: 0,
            cpu_fixed: SimDuration::from_micros(30),
            cpu_per_mib: SimDuration::from_micros(100),
            cpu_per_resident_mib: SimDuration::from_micros(5),
            max_retries: 3,
            retry_backoff: SimDuration::from_micros(500),
            request_timeout: SimDuration::ZERO,
        }
    }

    /// Single-port variant of [`bc4810`](ControllerConfig::bc4810) used by
    /// the one-disk experiments.
    pub fn single_port() -> Self {
        ControllerConfig { ports: 1, ..Self::bc4810() }
    }

    /// Enables controller-level prefetching with the given cache size and
    /// read-ahead (builder-style).
    pub fn with_prefetch(mut self, cache_bytes: u64, prefetch_bytes: u64) -> Self {
        self.cache_bytes = cache_bytes;
        self.prefetch_bytes = prefetch_bytes;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.ports == 0 {
            return Err("controller needs at least one port".into());
        }
        if self.link_rate == 0 || self.aggregate_rate == 0 {
            return Err("link and aggregate rates must be positive".into());
        }
        if self.prefetch_bytes > 0 && self.cache_bytes == 0 {
            return Err("controller prefetch requires controller cache memory".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio_simcore::units::MIB;

    #[test]
    fn presets_valid() {
        assert!(ControllerConfig::bc4810().validate().is_ok());
        assert!(ControllerConfig::single_port().validate().is_ok());
        assert_eq!(ControllerConfig::single_port().ports, 1);
    }

    #[test]
    fn prefetch_requires_cache() {
        let mut c = ControllerConfig::bc4810();
        c.prefetch_bytes = MIB;
        assert!(c.validate().is_err());
        let c = ControllerConfig::bc4810().with_prefetch(128 * MIB, MIB);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn zero_ports_rejected() {
        let mut c = ControllerConfig::bc4810();
        c.ports = 0;
        assert!(c.validate().is_err());
    }
}
