//! Calendar event queue — the default DES kernel queue.
//!
//! [`EventQueue`] implements the same contract as the binary-heap reference
//! queue ([`HeapEventQueue`](crate::HeapEventQueue)) — strict
//! `(time, insertion-seq)` pop order, panic on scheduling into the past —
//! but stores pending events in a *calendar*: a ring of time buckets, each
//! `width` nanoseconds wide, that together cover one "year" of
//! `width * buckets` nanoseconds (R. Brown, CACM 1988). Push hashes an
//! event to the bucket of its timestamp; pop walks the ring one bucket
//! window at a time. With the bucket count resized to track the pending-set
//! size and the width re-estimated from the observed event spacing, both
//! operations are amortized O(1), versus O(log n) for the heap — this queue
//! is the hot loop of every figure reproduction.
//!
//! Determinism: the structure contains no randomness and no hashing of
//! payloads; for a given push/pop program the pop sequence is identical to
//! the reference queue's, which the differential property tests below (and
//! the bit-identical figure CSVs) verify.

use crate::time::SimTime;

#[derive(Debug)]
struct Entry<E> {
    at: u64,
    seq: u64,
    payload: E,
}

const MIN_BUCKETS: usize = 16;
/// Bucket width used before any spacing estimate exists (~1 µs). Widths
/// are always powers of two so the bucket of a timestamp is a shift, not
/// a division.
const DEFAULT_WIDTH: u64 = 1 << 10;
/// Pop-gap samples kept for the width estimate.
const GAP_SAMPLES: usize = 32;
/// A popped bucket still holding more entries than this triggers a width
/// re-estimate: the current width is funnelling too many events into one
/// bucket (the calendar's classic failure on clustered timestamps).
const REWIDTH_BUCKET_LEN: usize = 32;

/// One calendar day: an unsorted pile of entries plus the cached key of its
/// minimum. Push is O(1) (append + min update); only a pop that removes the
/// minimum pays a rescan of the pile.
struct Bucket<E> {
    entries: Vec<Entry<E>>,
    /// `(at, seq)` of the earliest entry, `None` when empty.
    min: Option<(u64, u64)>,
}

impl<E> Default for Bucket<E> {
    fn default() -> Self {
        Bucket { entries: Vec::new(), min: None }
    }
}

impl<E> Bucket<E> {
    fn push(&mut self, e: Entry<E>) {
        let key = (e.at, e.seq);
        if self.min.is_none_or(|m| key < m) {
            self.min = Some(key);
        }
        self.entries.push(e);
    }

    /// Removes and returns the minimum entry. Keys are unique, so the
    /// extraction (and the resulting pop order) is deterministic even
    /// though the pile itself is unordered. One pass locates the minimum
    /// and the runner-up (the new cached minimum) together.
    fn pop_min(&mut self) -> Entry<E> {
        let key = self.min.expect("pop_min on empty bucket");
        let mut idx = usize::MAX;
        let mut next: Option<(u64, u64)> = None;
        for (i, e) in self.entries.iter().enumerate() {
            let k = (e.at, e.seq);
            if k == key {
                idx = i;
            } else if next.is_none_or(|n| k < n) {
                next = Some(k);
            }
        }
        debug_assert!(idx != usize::MAX, "cached min present in bucket");
        let e = self.entries.swap_remove(idx);
        self.min = next;
        e
    }
}

/// A time-ordered event queue with stable FIFO tie-breaking, backed by a
/// calendar (bucket ring) rather than a heap.
///
/// # Examples
///
/// ```
/// use seqio_simcore::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(20), "late");
/// q.push(SimTime::from_nanos(10), "early");
/// q.push(SimTime::from_nanos(10), "early-second");
///
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    /// Bucket ring; each bucket caches its minimum `(at, seq)` so the pop
    /// scan rejects or accepts a whole bucket in O(1).
    buckets: Vec<Bucket<E>>,
    /// `buckets.len()`, always a power of two (so the ring index is a mask).
    mask: usize,
    /// Nanoseconds covered by one bucket per year; always a power of two.
    width: u64,
    /// `width.trailing_zeros()`, so `at >> shift` is the day of `at`.
    shift: u32,
    /// Ring position the next pop searches first.
    cursor: usize,
    /// Exclusive upper bound of the cursor bucket's current window. Kept in
    /// u128 so `width * buckets` years never overflow.
    window_top: u128,
    len: usize,
    next_seq: u64,
    now: SimTime,
    /// Ring of the most recent nonzero pop-to-pop time gaps. Their median
    /// sizes the buckets at the next resize: unlike a `(max - min) / n`
    /// span estimate it is not fooled by clustered timestamp distributions,
    /// where the span is huge but the head-of-queue spacing is tiny.
    gap_samples: [u64; GAP_SAMPLES],
    gap_fill: usize,
    gap_pos: usize,
    /// Ring rebuilds over the queue's lifetime (cheap bookkeeping for the
    /// kernel self-profile; never read by the scheduling logic).
    resizes: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len)
            .field("buckets", &self.buckets.len())
            .field("width_ns", &self.width)
            .field("now", &self.now)
            .finish()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            buckets: (0..MIN_BUCKETS).map(|_| Bucket::default()).collect(),
            mask: MIN_BUCKETS - 1,
            width: DEFAULT_WIDTH,
            shift: DEFAULT_WIDTH.trailing_zeros(),
            cursor: 0,
            window_top: DEFAULT_WIDTH as u128,
            len: 0,
            next_seq: 0,
            now: SimTime::ZERO,
            gap_samples: [0; GAP_SAMPLES],
            gap_fill: 0,
            gap_pos: 0,
            resizes: 0,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// popped event (or zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled (a simple progress metric).
    pub fn scheduled_count(&self) -> u64 {
        self.next_seq
    }

    /// Shape statistics for the kernel self-profile: lifetime pushes, the
    /// current ring size and bucket width, and how many times the ring
    /// was rebuilt.
    pub fn stats(&self) -> crate::QueueStats {
        crate::QueueStats {
            pushes: self.next_seq,
            buckets: self.buckets.len(),
            width_ns: self.width,
            resizes: self.resizes,
        }
    }

    /// Schedules `payload` to fire at `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current time — scheduling into the
    /// past is always a model bug and would silently corrupt causality.
    pub fn push(&mut self, at: SimTime, payload: E) {
        assert!(at >= self.now, "scheduling into the past: event at {at} but now is {}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.len == 0 {
            // Snap the search cursor to the first event's window so the next
            // pop starts exactly there instead of sweeping the ring.
            self.seek_to(at.as_nanos());
        } else if (at.as_nanos() as u128) < self.window_top - self.width as u128 {
            // The event lands below the current window: rewind so the scan
            // can't skip it. (Happens when a push-to-empty fast-forwarded the
            // cursor and a later push is earlier — legal while >= `now`.)
            self.seek_to(at.as_nanos());
        }
        self.insert(Entry { at: at.as_nanos(), seq, payload });
        self.len += 1;
        if self.len > 2 * self.buckets.len() {
            self.resize(self.buckets.len() * 2);
        }
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.len == 0 {
            return None;
        }
        // Walk the ring, one bucket window per step; an entry belongs to the
        // current window exactly when its time is below the window top (it
        // can never be below the window bottom: everything earlier was
        // popped before the cursor moved past it).
        for _ in 0..=self.mask {
            if let Some((at, _)) = self.buckets[self.cursor].min {
                if (at as u128) < self.window_top {
                    let e = self.buckets[self.cursor].pop_min();
                    return Some(self.take(self.cursor, e));
                }
            }
            self.cursor = (self.cursor + 1) & self.mask;
            self.window_top += self.width as u128;
        }
        // A whole year held nothing: the next event is far away. Find the
        // global minimum directly and jump the calendar to its window.
        let (b, _) = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(b, v)| v.min.map(|key| (b, key)))
            .min_by_key(|&(_, key)| key)
            .expect("len > 0 implies a pending entry");
        let e = self.buckets[b].pop_min();
        self.seek_to(e.at);
        Some(self.take(b, e))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        // Same search as `pop`, without touching the cursor state.
        let mut cursor = self.cursor;
        let mut top = self.window_top;
        for _ in 0..=self.mask {
            if let Some((at, _)) = self.buckets[cursor].min {
                if (at as u128) < top {
                    return Some(SimTime::from_nanos(at));
                }
            }
            cursor = (cursor + 1) & self.mask;
            top += self.width as u128;
        }
        self.buckets.iter().filter_map(|v| v.min).min().map(|(at, _)| SimTime::from_nanos(at))
    }

    /// Books a popped entry out of the queue.
    fn take(&mut self, bucket: usize, e: Entry<E>) -> (SimTime, E) {
        debug_assert!(e.at >= self.now.as_nanos());
        self.len -= 1;
        let gap = e.at - self.now.as_nanos();
        if gap > 0 {
            // Ties carry no spacing information; record only real advances.
            self.gap_samples[self.gap_pos] = gap;
            self.gap_pos = (self.gap_pos + 1) % GAP_SAMPLES;
            self.gap_fill = (self.gap_fill + 1).min(GAP_SAMPLES);
        }
        self.now = SimTime::from_nanos(e.at);
        if self.len < self.buckets.len() / 4 && self.buckets.len() > MIN_BUCKETS {
            self.resize(self.buckets.len() / 2);
        } else if self.buckets[bucket].entries.len() > REWIDTH_BUCKET_LEN {
            // The width is funnelling a crowd into one bucket; re-estimate,
            // but only rebuild if the estimate has actually moved (otherwise
            // a stubbornly bad estimate would trigger an O(n) rebuild per
            // pop).
            if let Some(w) = self.estimated_width() {
                if w < self.width / 2 || w > self.width.saturating_mul(2) {
                    self.set_width(w);
                    self.resize(self.buckets.len());
                }
            }
        }
        (self.now, e.payload)
    }

    /// Points the cursor at the window containing instant `ns`.
    fn seek_to(&mut self, ns: u64) {
        let day = ns >> self.shift;
        self.cursor = (day as usize) & self.mask;
        self.window_top = (day as u128 + 1) << self.shift;
    }

    /// Appends to the bucket of `e.at` (O(1): the pile is unordered, only
    /// its cached minimum is maintained).
    fn insert(&mut self, e: Entry<E>) {
        let b = ((e.at >> self.shift) as usize) & self.mask;
        self.buckets[b].push(e);
    }

    /// Sets the bucket width (rounded up to a power of two by the caller's
    /// estimate) and the matching day shift.
    fn set_width(&mut self, w: u64) {
        self.width = w.next_power_of_two();
        self.shift = self.width.trailing_zeros();
    }

    /// Width candidate from the recent pop-gap samples: a few head-of-queue
    /// gaps per bucket. The *median* gap is robust against both outlier
    /// jumps and clustered distributions, where a `(max - min) / n` span
    /// estimate is off by orders of magnitude. `None` until enough of the
    /// queue's head has been observed.
    fn estimated_width(&self) -> Option<u64> {
        if self.gap_fill < 4 {
            return None;
        }
        let mut s = self.gap_samples[..self.gap_fill].to_vec();
        s.sort_unstable();
        let w = s[self.gap_fill / 2].saturating_mul(4).clamp(1, 1 << 40);
        Some(w.next_power_of_two())
    }

    /// Rebuilds the ring with `n` buckets and a width re-estimated from the
    /// pending set's event spacing.
    fn resize(&mut self, n: usize) {
        debug_assert!(n.is_power_of_two());
        self.resizes += 1;
        let entries: Vec<Entry<E>> =
            self.buckets.iter_mut().flat_map(|b| std::mem::take(&mut b.entries)).collect();
        for b in &mut self.buckets {
            b.min = None;
        }
        if let Some(w) = self.estimated_width() {
            self.set_width(w);
        } else if entries.len() >= 2 {
            // No pops observed yet: spread the pending span over the count.
            let min = entries.iter().map(|e| e.at).min().expect("non-empty");
            let max = entries.iter().map(|e| e.at).max().expect("non-empty");
            let gap = (max - min) / (entries.len() as u64 - 1);
            self.set_width((gap * 2).clamp(1, 1 << 40));
        }
        if n > self.buckets.len() {
            self.buckets.resize_with(n, Bucket::default);
        } else {
            self.buckets.truncate(n);
        }
        self.mask = n - 1;
        for e in entries {
            self.insert(e);
        }
        // The clock never runs backwards, so the earliest pending entry is
        // at or after `now`; restart the search at the clock's window.
        self.seek_to(self.now.as_nanos());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::HeapEventQueue;
    use crate::time::SimDuration;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &t in &[5u64, 3, 9, 1, 7] {
            q.push(SimTime::from_nanos(t), t);
        }
        let mut out = Vec::new();
        while let Some((_, v)) = q.pop() {
            out.push(v);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(42);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), ());
        q.push(SimTime::from_nanos(30), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(10));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(30));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), ());
        q.pop();
        q.push(SimTime::from_nanos(5), ());
    }

    #[test]
    fn same_time_as_now_is_allowed() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(10), 1);
        q.pop();
        q.push(SimTime::from_nanos(10), 2); // zero-delay follow-up event
        assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 2)));
    }

    #[test]
    fn len_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO + SimDuration::from_micros(1), ());
        q.push(SimTime::ZERO + SimDuration::from_micros(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_count(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1_000)));
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_count(), 2);
    }

    #[test]
    fn stats_expose_shape_and_resize_count() {
        let mut q = EventQueue::new();
        let s = q.stats();
        assert_eq!((s.pushes, s.buckets, s.resizes), (0, MIN_BUCKETS, 0));
        for i in 0..10_000u64 {
            q.push(SimTime::from_nanos(i * 1_000), i);
        }
        let s = q.stats();
        assert_eq!(s.pushes, 10_000);
        assert!(s.resizes > 0, "growth rebuilds the ring");
        assert!(s.buckets > MIN_BUCKETS && s.width_ns.is_power_of_two());
        while q.pop().is_some() {}
        assert!(q.stats().resizes > s.resizes, "draining shrinks the ring");
    }

    #[test]
    fn far_future_events_pop_after_a_year_jump() {
        let mut q = EventQueue::new();
        // Sprinkle near events, then one far beyond any calendar year.
        for i in 0..100u64 {
            q.push(SimTime::from_nanos(i * 100), i);
        }
        q.push(SimTime::from_nanos(u64::MAX / 2), 999);
        for i in 0..100u64 {
            assert_eq!(q.pop().unwrap().1, i);
        }
        assert_eq!(q.pop(), Some((SimTime::from_nanos(u64::MAX / 2), 999)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn grows_and_shrinks_through_resizes() {
        let mut q = EventQueue::new();
        for i in 0..100_000u64 {
            q.push(SimTime::from_nanos((i * 2_654_435_761) % 1_000_000_000), i);
        }
        assert!(q.buckets.len() > MIN_BUCKETS, "growth expected");
        let mut last = 0;
        for _ in 0..100_000 {
            let (t, _) = q.pop().expect("full");
            assert!(t.as_nanos() >= last);
            last = t.as_nanos();
        }
        assert_eq!(q.buckets.len(), MIN_BUCKETS, "shrink back when drained");
        assert!(q.pop().is_none());
    }

    /// Drives the calendar queue and the heap reference queue through the
    /// same interleaved push/pop program and asserts identical observable
    /// behaviour at every step — including FIFO ordering at equal
    /// timestamps (the `dt == 0`/tiny-delta cases below hit ties often).
    fn differential(program: &[(u8, u64)]) {
        let mut cal = EventQueue::new();
        let mut heap = HeapEventQueue::new();
        let mut next_payload = 0u64;
        for &(op, dt) in program {
            if op < 3 {
                // Push at now + dt; dt is frequently zero or tiny, so equal
                // timestamps (FIFO ties) are common.
                let at = cal.now() + SimDuration::from_nanos(dt);
                cal.push(at, next_payload);
                heap.push(at, next_payload);
                next_payload += 1;
            } else {
                assert_eq!(cal.pop(), heap.pop(), "pop diverged");
            }
            assert_eq!(cal.len(), heap.len());
            assert_eq!(cal.now(), heap.now());
            assert_eq!(cal.peek_time(), heap.peek_time());
        }
        // Drain: the remaining sequences must match exactly.
        loop {
            let (a, b) = (cal.pop(), heap.pop());
            assert_eq!(a, b, "drain diverged");
            if a.is_none() {
                break;
            }
        }
    }

    proptest! {
        /// Random interleaved push/pop programs produce identical
        /// `(time, payload)` sequences from both implementations.
        #[test]
        fn prop_differential_vs_heap(
            program in proptest::collection::vec((0u8..4, 0u64..500), 0..400)
        ) {
            differential(&program);
        }

        /// Same property under clustered timestamps (many ties, then
        /// far-future jumps) — the calendar's worst-case shapes.
        #[test]
        fn prop_differential_clustered(
            program in proptest::collection::vec(
                prop_oneof![(0u8..3, Just(0u64)), (0u8..3, 1_000_000u64..2_000_000), Just((3u8, 0u64))],
                0..300,
            )
        ) {
            differential(&program);
        }

        /// Popping always yields a non-decreasing time sequence, and within
        /// one timestamp, insertion order.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..1_000, 0..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_nanos(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, i)) = q.pop() {
                if let Some((lt, li)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(i > li, "FIFO violated within a timestamp");
                    }
                }
                last = Some((t, i));
            }
        }

        /// The queue drains exactly the number of events pushed.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0u64..100, 0..100)) {
            let mut q = EventQueue::new();
            for &t in &times {
                q.push(SimTime::from_nanos(t), ());
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            prop_assert_eq!(n, times.len());
        }
    }
}
