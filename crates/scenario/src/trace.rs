//! Replayable scenario trace files.
//!
//! A trace is a deterministic, line-oriented text record of every stream
//! injection and retirement a scenario performs against a set of storage
//! nodes. The grammar is the shared clause format from
//! [`seqio_simcore::ClauseFields`] — one `kind:key=value,...` clause per
//! line, `#` comments, no quoting — so a trace round-trips bit-identically
//! through serialize → parse → serialize and every parse error names the
//! offending token and its clause.
//!
//! ```text
//! # seqio scenario trace v1
//! meta:name=steady,nodes=1
//! inject:at=0,node=0,stream=0,disk=0,start=0,blocks=128,requests=400,pattern=seq
//! inject:at=0,node=0,stream=1,disk=1,start=8192,blocks=128,requests=400,pattern=near:0.1:64
//! retire:at=1500000000,node=0,stream=1
//! ```
//!
//! Timestamps are integer nanoseconds (`at=1500000000`), never floats, so
//! replaying a recorded trace reproduces the original run bit-for-bit.

use seqio_disk::Lba;
use seqio_simcore::{ClauseFields, SeqioError, SimTime};
use seqio_workload::{Pattern, StreamSpec};

/// The header comment emitted at the top of every serialized trace.
pub const TRACE_HEADER: &str = "# seqio scenario trace v1";

/// What a trace operation does to its stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceOpKind {
    /// Start a new stream on the node.
    Inject {
        /// Node-local destination disk.
        disk: usize,
        /// Starting block.
        start: Lba,
        /// Request size in blocks.
        blocks: u64,
        /// Number of requests the stream issues.
        requests: u64,
        /// Access pattern.
        pattern: Pattern,
    },
    /// Retire the stream: it issues nothing further (an in-flight request
    /// still completes and counts).
    Retire,
}

/// One timestamped operation against one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceOp {
    /// When the operation fires.
    pub at: SimTime,
    /// Target node (index into the scenario's node set).
    pub node: usize,
    /// Trace-level stream id, unique per node. Slot numbers on the node
    /// itself are assigned at injection time; the id here is the trace's
    /// own name for the stream so a retire can find its inject.
    pub stream: usize,
    /// The operation.
    pub kind: TraceOpKind,
}

impl TraceOp {
    fn kind_rank(&self) -> u8 {
        match self.kind {
            TraceOpKind::Inject { .. } => 0,
            TraceOpKind::Retire => 1,
        }
    }

    /// Total ordering used by [`ScenarioTrace::sort`]: time, then node,
    /// then stream, with an inject sorting before a same-instant retire.
    fn sort_key(&self) -> (SimTime, usize, usize, u8) {
        (self.at, self.node, self.stream, self.kind_rank())
    }

    /// The stream spec an inject op materializes. `None` for retires.
    pub fn spec(&self) -> Option<StreamSpec> {
        match self.kind {
            TraceOpKind::Inject { disk, start, blocks, requests, pattern } => Some(StreamSpec {
                disk,
                start,
                request_blocks: blocks,
                num_requests: requests,
                pattern,
            }),
            TraceOpKind::Retire => None,
        }
    }
}

/// A named, validated sequence of [`TraceOp`]s against `nodes` storage
/// nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioTrace {
    /// Scenario name (no commas, semicolons, `=` or newlines — it travels
    /// inside a clause field).
    pub name: String,
    /// How many nodes the trace addresses.
    pub nodes: usize,
    /// The operations, kept in canonical `(at, node, stream,
    /// inject-before-retire)` order.
    pub ops: Vec<TraceOp>,
}

fn scenario_err(reason: String) -> SeqioError {
    SeqioError::Component { component: "scenario", reason }
}

impl ScenarioTrace {
    /// An empty trace.
    pub fn new(name: &str, nodes: usize) -> ScenarioTrace {
        ScenarioTrace { name: name.to_string(), nodes, ops: Vec::new() }
    }

    /// Sorts the operations into canonical order (stable, so equal keys —
    /// which [`validate`](Self::validate) rejects anyway — keep insertion
    /// order).
    pub fn sort(&mut self) {
        self.ops.sort_by_key(TraceOp::sort_key);
    }

    /// Checks the trace is well-formed: name is clause-safe, ops are in
    /// canonical order, every stream id is injected exactly once with a
    /// valid spec, and retired at most once after its injection.
    ///
    /// # Errors
    ///
    /// Names the first offending operation.
    pub fn validate(&self) -> Result<(), SeqioError> {
        if self.name.contains([',', ';', '=', '\n', ':']) || self.name.is_empty() {
            return Err(scenario_err(format!(
                "scenario name `{}` must be non-empty and contain no `,;=:` or newlines",
                self.name
            )));
        }
        if self.nodes == 0 {
            return Err(scenario_err("trace must address at least one node".into()));
        }
        let mut injected: Vec<Vec<usize>> = vec![Vec::new(); self.nodes];
        let mut retired: Vec<Vec<usize>> = vec![Vec::new(); self.nodes];
        for (i, op) in self.ops.iter().enumerate() {
            if op.node >= self.nodes {
                return Err(scenario_err(format!(
                    "op {i} targets node {} but the trace declares nodes={}",
                    op.node, self.nodes
                )));
            }
            if i > 0 && self.ops[i - 1].sort_key() >= op.sort_key() {
                return Err(scenario_err(format!(
                    "op {i} is out of order (traces are sorted by time, node, stream)"
                )));
            }
            match op.kind {
                TraceOpKind::Inject { .. } => {
                    if injected[op.node].contains(&op.stream) {
                        return Err(scenario_err(format!(
                            "stream {} on node {} is injected twice",
                            op.stream, op.node
                        )));
                    }
                    let spec = op.spec().expect("inject op has a spec");
                    spec.validate().map_err(|r| {
                        scenario_err(format!("stream {} on node {}: {r}", op.stream, op.node))
                    })?;
                    injected[op.node].push(op.stream);
                }
                TraceOpKind::Retire => {
                    if !injected[op.node].contains(&op.stream) {
                        return Err(scenario_err(format!(
                            "stream {} on node {} is retired before it is injected",
                            op.stream, op.node
                        )));
                    }
                    if retired[op.node].contains(&op.stream) {
                        return Err(scenario_err(format!(
                            "stream {} on node {} is retired twice",
                            op.stream, op.node
                        )));
                    }
                    retired[op.node].push(op.stream);
                }
            }
        }
        Ok(())
    }

    /// Serializes the trace to the deterministic text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(TRACE_HEADER);
        out.push('\n');
        out.push_str(&format!("meta:name={},nodes={}\n", self.name, self.nodes));
        for op in &self.ops {
            match op.kind {
                TraceOpKind::Inject { disk, start, blocks, requests, pattern } => {
                    out.push_str(&format!(
                        "inject:at={},node={},stream={},disk={},start={},blocks={},requests={},pattern={}\n",
                        op.at.as_nanos(),
                        op.node,
                        op.stream,
                        disk,
                        start,
                        blocks,
                        requests,
                        pattern_to_text(pattern),
                    ));
                }
                TraceOpKind::Retire => {
                    out.push_str(&format!(
                        "retire:at={},node={},stream={}\n",
                        op.at.as_nanos(),
                        op.node,
                        op.stream
                    ));
                }
            }
        }
        out
    }

    /// Parses a trace from its text form and validates it.
    ///
    /// # Errors
    ///
    /// Names the offending token, its clause, and the line it sits on.
    pub fn from_text(text: &str) -> Result<ScenarioTrace, SeqioError> {
        let mut trace = ScenarioTrace::new("unnamed", 1);
        let mut saw_meta = false;
        for (line_no, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (kind, rest) = line.split_once(':').ok_or_else(|| {
                scenario_err(format!(
                    "line {}: `{line}` is not a `kind:key=value,...` clause",
                    line_no + 1
                ))
            })?;
            let kind = kind.trim();
            let mut f = ClauseFields::parse("scenario", kind, rest)
                .map_err(|r| at_line(line_no + 1, scenario_err(r)))?;
            match kind {
                "meta" => {
                    if saw_meta {
                        return Err(scenario_err(format!(
                            "line {}: duplicate `meta` clause",
                            line_no + 1
                        )));
                    }
                    saw_meta = true;
                    trace.name = f.required("name").map_err(|e| at_line(line_no + 1, e))?;
                    trace.nodes = f
                        .usize_field("nodes", "a node count")
                        .map_err(|e| at_line(line_no + 1, e))?;
                    f.finish().map_err(|e| at_line(line_no + 1, e))?;
                }
                "inject" => {
                    let op = parse_inject(&mut f).map_err(|e| at_line(line_no + 1, e))?;
                    f.finish().map_err(|e| at_line(line_no + 1, e))?;
                    trace.ops.push(op);
                }
                "retire" => {
                    let op = parse_retire(&mut f).map_err(|e| at_line(line_no + 1, e))?;
                    f.finish().map_err(|e| at_line(line_no + 1, e))?;
                    trace.ops.push(op);
                }
                other => {
                    return Err(scenario_err(format!(
                        "line {}: unknown clause kind `{other}` (expected `meta`, `inject` or `retire`)",
                        line_no + 1
                    )));
                }
            }
        }
        trace.validate()?;
        Ok(trace)
    }
}

fn at_line(line_no: usize, e: SeqioError) -> SeqioError {
    match e {
        SeqioError::Component { component, reason } => {
            SeqioError::Component { component, reason: format!("line {line_no}: {reason}") }
        }
        other => other,
    }
}

fn parse_inject(f: &mut ClauseFields) -> Result<TraceOp, SeqioError> {
    let at = SimTime::from_nanos(f.u64_field("at", "a timestamp in nanoseconds")?);
    let node = f.usize_field("node", "a node index")?;
    let stream = f.usize_field("stream", "a stream id")?;
    let disk = f.usize_field("disk", "a disk index")?;
    let start = f.u64_field("start", "a block address")?;
    let blocks = f.u64_field("blocks", "a block count")?;
    let requests = f.u64_field("requests", "a request count")?;
    let raw = f.required("pattern")?;
    let pattern = pattern_from_text(&raw).map_err(|r| f.fail(format!("`pattern={raw}`: {r}")))?;
    Ok(TraceOp {
        at,
        node,
        stream,
        kind: TraceOpKind::Inject { disk, start, blocks, requests, pattern },
    })
}

fn parse_retire(f: &mut ClauseFields) -> Result<TraceOp, SeqioError> {
    let at = SimTime::from_nanos(f.u64_field("at", "a timestamp in nanoseconds")?);
    let node = f.usize_field("node", "a node index")?;
    let stream = f.usize_field("stream", "a stream id")?;
    Ok(TraceOp { at, node, stream, kind: TraceOpKind::Retire })
}

/// Serializes a [`Pattern`] as `seq`, `near:P:J` or `random:SPAN`. The
/// skip probability uses Rust's shortest-round-trip float formatting, so
/// parsing the text recovers the exact bits.
pub fn pattern_to_text(p: Pattern) -> String {
    match p {
        Pattern::Sequential => "seq".to_string(),
        Pattern::NearSequential { p, jitter_blocks } => format!("near:{p}:{jitter_blocks}"),
        Pattern::Random { span_blocks } => format!("random:{span_blocks}"),
    }
}

/// Parses the [`pattern_to_text`] form.
///
/// # Errors
///
/// Returns a reason string naming the offending token.
pub fn pattern_from_text(s: &str) -> Result<Pattern, String> {
    let s = s.trim();
    if s == "seq" {
        return Ok(Pattern::Sequential);
    }
    if let Some(rest) = s.strip_prefix("near:") {
        let (p, jitter) =
            rest.split_once(':').ok_or_else(|| format!("`{s}` is not `near:P:JITTER_BLOCKS`"))?;
        let p: f64 = p.parse().map_err(|_| format!("`{p}` is not a probability"))?;
        if !(0.0..=1.0).contains(&p) {
            return Err(format!("skip probability `{p}` is outside [0, 1]"));
        }
        let jitter_blocks =
            jitter.parse().map_err(|_| format!("`{jitter}` is not a block count"))?;
        return Ok(Pattern::NearSequential { p, jitter_blocks });
    }
    if let Some(span) = s.strip_prefix("random:") {
        let span_blocks = span.parse().map_err(|_| format!("`{span}` is not a block count"))?;
        return Ok(Pattern::Random { span_blocks });
    }
    Err(format!("`{s}` is not a pattern (expected `seq`, `near:P:J` or `random:SPAN`)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ScenarioTrace {
        let mut t = ScenarioTrace::new("sample", 2);
        t.ops.push(TraceOp {
            at: SimTime::ZERO,
            node: 0,
            stream: 0,
            kind: TraceOpKind::Inject {
                disk: 0,
                start: 0,
                blocks: 128,
                requests: 400,
                pattern: Pattern::Sequential,
            },
        });
        t.ops.push(TraceOp {
            at: SimTime::ZERO,
            node: 1,
            stream: 0,
            kind: TraceOpKind::Inject {
                disk: 1,
                start: 8192,
                blocks: 64,
                requests: 200,
                pattern: Pattern::NearSequential { p: 0.1, jitter_blocks: 64 },
            },
        });
        t.ops.push(TraceOp {
            at: SimTime::from_nanos(1_500_000_000),
            node: 1,
            stream: 0,
            kind: TraceOpKind::Retire,
        });
        t.sort();
        t
    }

    #[test]
    fn text_round_trips_bit_identically() {
        let t = sample();
        t.validate().unwrap();
        let text = t.to_text();
        let back = ScenarioTrace::from_text(&text).unwrap();
        assert_eq!(back, t);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn patterns_round_trip() {
        for p in [
            Pattern::Sequential,
            Pattern::NearSequential { p: 0.017, jitter_blocks: 3 },
            Pattern::NearSequential { p: 1.0 / 3.0, jitter_blocks: 1 },
            Pattern::Random { span_blocks: 1 << 20 },
        ] {
            assert_eq!(pattern_from_text(&pattern_to_text(p)).unwrap(), p);
        }
    }

    #[test]
    fn errors_name_the_offending_token() {
        let cases = [
            ("inject:at=soon,node=0,stream=0", "`at=soon`"),
            ("retire:at=1,node=0,stream=zero", "`stream=zero`"),
            ("retire:at=1,node=0", "missing required field `stream`"),
            ("retire:at=1,node=0,stream=0,bogus=1", "unknown field `bogus`"),
            ("meta:name=x,nodes=many", "`nodes=many`"),
            ("warp:at=1", "unknown clause kind `warp`"),
            ("inject at=1", "not a `kind:key=value,...` clause"),
            (
                "inject:at=1,node=0,stream=0,disk=0,start=0,blocks=4,requests=9,pattern=zigzag",
                "`zigzag` is not a pattern",
            ),
        ];
        for (line, needle) in cases {
            // A broken meta clause stands alone; other clauses get a
            // valid meta line first.
            let (text, line_no) = if line.starts_with("meta:") {
                (format!("{line}\n"), "line 1")
            } else {
                (format!("meta:name=t,nodes=1\n{line}\n"), "line 2")
            };
            let e = ScenarioTrace::from_text(&text).unwrap_err().to_string();
            assert!(e.contains(needle), "input `{line}`: error `{e}` lacks `{needle}`");
            assert!(e.contains(line_no), "input `{line}`: error `{e}` lacks the line number");
        }
    }

    #[test]
    fn validate_rejects_protocol_violations() {
        // Retire before inject.
        let mut t = ScenarioTrace::new("bad", 1);
        t.ops.push(TraceOp { at: SimTime::ZERO, node: 0, stream: 7, kind: TraceOpKind::Retire });
        let e = t.validate().unwrap_err().to_string();
        assert!(e.contains("retired before it is injected"), "{e}");

        // Double inject.
        let mut t = sample();
        let dup = t.ops[0];
        t.ops.push(TraceOp { at: SimTime::from_nanos(9_999_999_999), ..dup });
        let e = t.validate().unwrap_err().to_string();
        assert!(e.contains("injected twice"), "{e}");

        // Out of order (the first op stays valid, so the ordering check
        // is what trips).
        let mut t = sample();
        t.ops.swap(0, 1);
        let e = t.validate().unwrap_err().to_string();
        assert!(e.contains("out of order"), "{e}");

        // Node out of range.
        let mut t = sample();
        t.nodes = 1;
        let e = t.validate().unwrap_err().to_string();
        assert!(e.contains("declares nodes=1"), "{e}");
    }
}
