//! The disk state machine.
//!
//! [`Disk`] is a passive, event-driven model: callers [`submit`] requests and
//! relay the returned [`DiskOutput`]s into their own event loop; when an
//! `OpFinished` output fires, they call [`on_op_finished`]. The model runs one
//! mechanical operation at a time; cache hits complete without touching the
//! mechanism.
//!
//! A *media operation* for a read covers the uncached tail of the request
//! plus planned read-ahead (the drive streams the request blocks first, so
//! the request completes as soon as its own blocks are under the head, while
//! the mechanism stays busy filling the rest of the segment — the eager
//! read-ahead behaviour real drives exhibit and the paper's Figures 6–7
//! depend on).
//!
//! [`submit`]: Disk::submit
//! [`on_op_finished`]: Disk::on_op_finished

use seqio_simcore::{DiskFaults, SimDuration, SimRng, SimTime};

use crate::cache::{CacheMetrics, FillTicket, SegmentedCache};
use crate::config::DiskConfig;
use crate::geometry::Geometry;
use crate::queue::CommandQueue;
use crate::request::{Direction, DiskRequest, Lba, RequestId, BLOCK_SIZE};
use crate::seek::SeekModel;

/// Something the caller must act on, produced by [`Disk::submit`] /
/// [`Disk::on_op_finished`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiskOutput {
    /// Request `id` has its data ready (reads) or durably written (writes)
    /// at instant `at`. `hit` is `true` when no media operation was needed.
    Complete {
        /// The completed request.
        id: RequestId,
        /// Payload size in bytes.
        bytes: u64,
        /// Completion instant (never earlier than the call that returned it).
        at: SimTime,
        /// Whether the read was served from the cache / in-flight operation.
        hit: bool,
        /// Whether the media read failed transiently (fault injection); the
        /// caller is expected to retry. Always `false` without an installed
        /// fault plan.
        error: bool,
    },
    /// The caller must invoke [`Disk::on_op_finished`] at instant `at`.
    OpFinished {
        /// When the active media operation releases the mechanism.
        at: SimTime,
    },
}

/// Aggregate behaviour counters for one disk.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiskMetrics {
    /// Host requests submitted.
    pub requests: u64,
    /// Reads served entirely from a segment.
    pub cache_hits: u64,
    /// Reads served by attaching to the in-flight media operation.
    pub inflight_hits: u64,
    /// Media operations started.
    pub media_ops: u64,
    /// Positioning operations that required a seek (non-contiguous start).
    pub seeks: u64,
    /// Total seek time.
    pub seek_time: SimDuration,
    /// Total rotational-latency time.
    pub rot_time: SimDuration,
    /// Total mechanism-busy time (positioning + transfer).
    pub busy_time: SimDuration,
    /// Bytes requested by hosts.
    pub bytes_requested: u64,
    /// Bytes streamed off the media (requests + read-ahead).
    pub bytes_from_media: u64,
    /// Injected transient read errors (fault injection only).
    pub read_errors: u64,
    /// Media operations that paid a bad-region remap penalty (fault
    /// injection only).
    pub remapped_ops: u64,
    /// Media operations started inside a straggler window (fault injection
    /// only).
    pub degraded_ops: u64,
}

impl DiskMetrics {
    /// Fraction of `elapsed` the mechanism spent busy (positioning +
    /// transfer). Returns 0 for a zero elapsed time; values can exceed 1
    /// transiently when `elapsed` undercounts in-flight work.
    pub fn busy_fraction(&self, elapsed: SimDuration) -> f64 {
        if elapsed == SimDuration::ZERO {
            return 0.0;
        }
        self.busy_time.as_nanos() as f64 / elapsed.as_nanos() as f64
    }
}

#[derive(Debug, Clone, Copy)]
struct ActiveOp {
    lba: Lba,
    blocks: u64,
    transfer_start: SimTime,
    finish: SimTime,
    ticket: Option<FillTicket>,
    is_write: bool,
    /// Straggler service-time multiplier in effect when the op started
    /// (`1.0` when healthy); scales in-flight coverage estimates.
    slow: f64,
}

/// Installed fault schedule plus the dedicated RNG for error draws. Kept
/// separate from the rotational-phase RNG so enabling faults never
/// perturbs the healthy timing sequence.
#[derive(Debug)]
struct FaultState {
    plan: DiskFaults,
    rng: SimRng,
}

/// A single simulated disk drive.
#[derive(Debug)]
pub struct Disk {
    cfg: DiskConfig,
    geom: Geometry,
    seek: SeekModel,
    cache: SegmentedCache,
    queue: CommandQueue,
    active: Option<ActiveOp>,
    /// One past the last block the mechanism read/wrote.
    last_media_end: Option<Lba>,
    /// Current head cylinder.
    head_cylinder: u64,
    /// When the mechanism last went idle.
    media_free_at: SimTime,
    rng: SimRng,
    faults: Option<FaultState>,
    metrics: DiskMetrics,
}

impl Disk {
    /// Builds a disk from its configuration with a deterministic RNG seed
    /// (used only for rotational-phase sampling).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`DiskConfig::validate`]).
    pub fn new(cfg: DiskConfig, seed: u64) -> Self {
        cfg.validate().expect("invalid disk config");
        let geom = Geometry::new(&cfg.geometry, cfg.track_switch);
        let seek = SeekModel::fit(&cfg.seek, geom.total_cylinders());
        let cache = SegmentedCache::new(cfg.cache);
        let queue = CommandQueue::new(cfg.queue_policy);
        Disk {
            cfg,
            geom,
            seek,
            cache,
            queue,
            active: None,
            last_media_end: None,
            head_cylinder: 0,
            media_free_at: SimTime::ZERO,
            rng: SimRng::seed_from(seed),
            faults: None,
            metrics: DiskMetrics::default(),
        }
    }

    /// Installs a fault schedule for this disk. `seed` feeds the dedicated
    /// fault RNG (error draws), kept separate from the rotational-phase
    /// RNG so a disabled plan leaves the healthy run bit-identical.
    pub fn install_faults(&mut self, plan: DiskFaults, seed: u64) {
        self.faults = Some(FaultState { plan, rng: SimRng::seed_from(seed) });
    }

    /// The disk's geometry (for placement and capacity queries).
    pub fn geometry(&self) -> &Geometry {
        &self.geom
    }

    /// The configuration this disk was built from.
    pub fn config(&self) -> &DiskConfig {
        &self.cfg
    }

    /// Behaviour counters.
    pub fn metrics(&self) -> DiskMetrics {
        self.metrics
    }

    /// Cache reclaim counters.
    pub fn cache_metrics(&self) -> CacheMetrics {
        self.cache.metrics()
    }

    /// `true` when no operation is active and nothing is queued.
    pub fn is_idle(&self) -> bool {
        self.active.is_none() && self.queue.is_empty()
    }

    /// Number of queued (not yet started) commands.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Checks that a request is well-formed for this disk.
    ///
    /// # Errors
    ///
    /// Returns a message if the request is empty or runs past the disk end.
    pub fn validate_request(&self, req: &DiskRequest) -> Result<(), String> {
        if req.blocks == 0 {
            return Err(format!("{}: zero-length transfer", req.id));
        }
        if req.end() > self.geom.total_blocks() {
            return Err(format!(
                "{}: [{}, {}) beyond disk end {}",
                req.id,
                req.lba,
                req.end(),
                self.geom.total_blocks()
            ));
        }
        Ok(())
    }

    /// Submits a request.
    ///
    /// Convenience wrapper over [`submit_into`](Disk::submit_into) that
    /// allocates a fresh output vector per call; the simulation hot paths use
    /// the `_into` variant with a reusable scratch buffer instead.
    ///
    /// # Panics
    ///
    /// Panics if the request fails [`validate_request`](Disk::validate_request).
    pub fn submit(&mut self, now: SimTime, req: DiskRequest) -> Vec<DiskOutput> {
        let mut out = Vec::new();
        self.submit_into(now, req, &mut out);
        out
    }

    /// Submits a request, appending outputs to `out` instead of allocating.
    ///
    /// # Panics
    ///
    /// Panics if the request fails [`validate_request`](Disk::validate_request).
    pub fn submit_into(&mut self, now: SimTime, req: DiskRequest, out: &mut Vec<DiskOutput>) {
        self.validate_request(&req).expect("invalid disk request");
        self.metrics.requests += 1;
        self.metrics.bytes_requested += req.bytes();
        match req.direction {
            Direction::Write => {
                self.cache.invalidate(req.lba, req.blocks);
                self.queue.push(req);
            }
            Direction::Read => {
                // The drive's cache fast paths only apply to commands that
                // actually reach the drive; with a deep backlog the command
                // sits in the host FIFO instead (and is re-checked when it
                // reaches the mechanism).
                let at_device = self.queue.len() < self.cfg.device_queue_depth;
                // Fully covered by the in-flight media operation?
                if let Some(op) = self.active {
                    if at_device
                        && !op.is_write
                        && op.lba <= req.lba
                        && req.end() <= op.lba + op.blocks
                    {
                        let mut avail =
                            self.geom.covered_at(op.transfer_start, op.lba, op.blocks, req.end());
                        if op.slow > 1.0 {
                            avail = op.transfer_start
                                + avail.duration_since(op.transfer_start).mul_f64(op.slow);
                        }
                        let at = avail.max(now) + self.cfg.command_overhead;
                        self.metrics.inflight_hits += 1;
                        out.push(DiskOutput::Complete {
                            id: req.id,
                            bytes: req.bytes(),
                            at,
                            hit: true,
                            error: false,
                        });
                        return;
                    }
                }
                // Fully in cache?
                if at_device && self.cache.lookup(req.lba, req.blocks, now) {
                    self.metrics.cache_hits += 1;
                    out.push(DiskOutput::Complete {
                        id: req.id,
                        bytes: req.bytes(),
                        at: now + self.cfg.command_overhead,
                        hit: true,
                        error: false,
                    });
                    return;
                }
                self.queue.push(req);
            }
        }
        self.try_start(now, out);
    }

    /// Must be called when an [`DiskOutput::OpFinished`] instant arrives.
    ///
    /// Convenience wrapper over [`on_op_finished_into`](Disk::on_op_finished_into).
    ///
    /// # Panics
    ///
    /// Panics if no operation is active or `now` is not its finish instant.
    pub fn on_op_finished(&mut self, now: SimTime) -> Vec<DiskOutput> {
        let mut out = Vec::new();
        self.on_op_finished_into(now, &mut out);
        out
    }

    /// [`on_op_finished`](Disk::on_op_finished), appending outputs to `out`
    /// instead of allocating.
    ///
    /// # Panics
    ///
    /// Panics if no operation is active or `now` is not its finish instant.
    pub fn on_op_finished_into(&mut self, now: SimTime, out: &mut Vec<DiskOutput>) {
        let op = self.active.take().expect("on_op_finished with no active op");
        assert_eq!(op.finish, now, "on_op_finished at the wrong instant");
        if let Some(ticket) = op.ticket {
            self.cache.commit_fill(ticket, op.lba, op.blocks, now);
        }
        let end = op.lba + op.blocks;
        self.last_media_end = Some(end);
        self.head_cylinder = self.geom.cylinder_of(end.min(self.geom.total_blocks() - 1));
        self.media_free_at = now;
        self.try_start(now, out);
    }

    /// Starts the next queued command if the mechanism is free.
    fn try_start(&mut self, now: SimTime, out: &mut Vec<DiskOutput>) {
        while self.active.is_none() {
            let head = self.last_media_end.unwrap_or(0);
            let Some(req) = self.queue.pop_next(head) else { break };

            // Conditions may have changed while queued: re-check the cache.
            if req.direction == Direction::Read && self.cache.lookup(req.lba, req.blocks, now) {
                self.metrics.cache_hits += 1;
                out.push(DiskOutput::Complete {
                    id: req.id,
                    bytes: req.bytes(),
                    at: now + self.cfg.command_overhead,
                    hit: true,
                    error: false,
                });
                continue;
            }

            // Trim a partially-cached read down to the blocks that need media.
            let op_lba = if req.direction == Direction::Read {
                match self.cache.coverage_end(req.lba, now) {
                    Some(end) if end > req.lba => end.min(req.end() - 1).max(req.lba),
                    _ => req.lba,
                }
            } else {
                req.lba
            };
            debug_assert!(op_lba < req.end());
            let needed = req.end() - op_lba;

            // Plan read-ahead beyond the request.
            let ra = if req.direction == Direction::Read {
                self.cache.plan_read_ahead(needed)
            } else {
                0
            };
            let total = (needed + ra).min(self.geom.total_blocks() - op_lba);

            // Fault injection: the straggler multiplier in effect right now
            // and the remap penalty for the blocks this op covers. Both stay
            // at their identity values (and cost nothing) when no plan is
            // installed, keeping healthy runs bit-identical.
            let (slow, remap) = match &self.faults {
                Some(f) => (f.plan.straggler_factor(now), f.plan.remap_penalty(op_lba, total)),
                None => (1.0, SimDuration::ZERO),
            };

            // Positioning: a contiguous continuation within the
            // speed-matching window pays nothing — and is *credited* for the
            // idle gap, because the firmware kept streaming the track into
            // its buffer while waiting for the command (this is what lets a
            // single synchronous sequential reader run at media rate on real
            // drives). Anything else pays seek + rotational latency.
            let gap = now.saturating_duration_since(self.media_free_at);
            let contiguous =
                self.last_media_end == Some(op_lba) && gap <= self.cfg.sequential_gap_tolerance;
            let mut ttime = self.geom.transfer_time(op_lba, total);
            if slow > 1.0 {
                ttime = ttime.mul_f64(slow);
                self.metrics.degraded_ops += 1;
            }
            let mut transfer_start = if contiguous {
                // Backdate the transfer by the buffered head start (the
                // drive read up to `gap` worth of this data already).
                let credit = gap.min(ttime);
                now + self.cfg.command_overhead - credit
            } else {
                let target = self.geom.cylinder_of(op_lba);
                let dist = target.abs_diff(self.head_cylinder);
                let mut seek = self.seek.time(dist);
                let mut rot = self.geom.rotation().mul_f64(self.rng.unit());
                if slow > 1.0 {
                    seek = seek.mul_f64(slow);
                    rot = rot.mul_f64(slow);
                }
                self.metrics.seeks += 1;
                self.metrics.seek_time += seek;
                self.metrics.rot_time += rot;
                now + self.cfg.command_overhead + seek + rot
            };
            if remap > SimDuration::ZERO {
                transfer_start += remap;
                self.metrics.remapped_ops += 1;
            }
            let finish = transfer_start + ttime;
            let ticket = if req.direction == Direction::Read {
                self.cache.begin_fill(op_lba, total, now)
            } else {
                None
            };

            self.metrics.media_ops += 1;
            self.metrics.bytes_from_media += total * BLOCK_SIZE;
            self.metrics.busy_time += finish.duration_since(now);

            // The submitting request completes once its own blocks are read
            // (or, for writes, when the whole operation lands).
            let complete_at = if req.direction == Direction::Read {
                let mut covered = self.geom.covered_at(transfer_start, op_lba, total, req.end());
                if slow > 1.0 {
                    covered = transfer_start + covered.duration_since(transfer_start).mul_f64(slow);
                }
                // `.max(now)`: a backdated (gap-credited) transfer may have
                // "already covered" the requested blocks.
                (covered + self.cfg.command_overhead).max(now + self.cfg.command_overhead)
            } else {
                finish
            };
            let error = match self.faults.as_mut() {
                Some(f) if req.direction == Direction::Read && f.plan.read_error_rate > 0.0 => {
                    let e = f.rng.chance(f.plan.read_error_rate);
                    if e {
                        self.metrics.read_errors += 1;
                    }
                    e
                }
                _ => false,
            };
            out.push(DiskOutput::Complete {
                id: req.id,
                bytes: req.bytes(),
                at: complete_at,
                hit: false,
                error,
            });

            self.active = Some(ActiveOp {
                lba: op_lba,
                blocks: total,
                transfer_start,
                finish,
                ticket,
                is_write: req.direction == Direction::Write,
                slow,
            });
            out.push(DiskOutput::OpFinished { at: finish });
        }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use crate::cache::CacheConfig;
    use seqio_simcore::units::{KIB, MIB};

    fn disk() -> Disk {
        Disk::new(DiskConfig::wd800jd(), 42)
    }

    fn disk_with_cache(segments: usize, seg_bytes: u64, ra: u64) -> Disk {
        let cfg = DiskConfig::wd800jd().with_cache(CacheConfig {
            segment_count: segments,
            segment_bytes: seg_bytes,
            read_ahead_bytes: ra,
        });
        Disk::new(cfg, 42)
    }

    /// Event-driven harness: `streams[i]` issues `reqs_per_stream`
    /// back-to-back sequential reads of `blocks` starting at its offset,
    /// with one outstanding request per stream. Returns (bytes, end time,
    /// hit count).
    pub(super) fn run_streams(
        d: &mut Disk,
        starts: &[Lba],
        blocks: u64,
        reqs_per_stream: u64,
        turnaround: SimDuration,
    ) -> (u64, SimTime, u64) {
        use seqio_simcore::EventQueue;
        #[derive(Debug)]
        enum Ev {
            Submit(DiskRequest),
            OpFinished,
            Done(RequestId, bool),
        }
        let n = starts.len() as u64;
        let mut q = EventQueue::new();
        let mut issued = vec![0u64; starts.len()];
        let mut bytes = 0u64;
        let mut hits = 0u64;
        let mut end = SimTime::ZERO;
        for (s, &lba) in starts.iter().enumerate() {
            q.push(SimTime::ZERO, Ev::Submit(DiskRequest::read(RequestId(s as u64), lba, blocks)));
            issued[s] = 1;
        }
        let handle = |outs: Vec<DiskOutput>, q: &mut EventQueue<Ev>, now: SimTime| {
            for o in outs {
                match o {
                    DiskOutput::Complete { id, at, hit, .. } => {
                        q.push(at.max(now), Ev::Done(id, hit));
                    }
                    DiskOutput::OpFinished { at } => q.push(at, Ev::OpFinished),
                }
            }
        };
        while let Some((now, ev)) = q.pop() {
            match ev {
                Ev::Submit(r) => {
                    let outs = d.submit(now, r);
                    handle(outs, &mut q, now);
                }
                Ev::OpFinished => {
                    let outs = d.on_op_finished(now);
                    handle(outs, &mut q, now);
                }
                Ev::Done(id, hit) => {
                    bytes += blocks * BLOCK_SIZE;
                    if hit {
                        hits += 1;
                    }
                    end = now;
                    let s = (id.0 % n) as usize;
                    if issued[s] < reqs_per_stream {
                        let lba = starts[s] + issued[s] * blocks;
                        issued[s] += 1;
                        let next = DiskRequest::read(RequestId(id.0 + n), lba, blocks);
                        q.push(now + turnaround, Ev::Submit(next));
                    }
                }
            }
        }
        (bytes, end, hits)
    }

    /// Drives a single request through the state machine, returning
    /// (completion time, hit flag).
    fn run_one(d: &mut Disk, now: SimTime, req: DiskRequest) -> (SimTime, bool) {
        let outs = d.submit(now, req);
        let mut done: Option<(SimTime, bool)> = None;
        let mut finish: Option<SimTime> = None;
        for o in outs {
            match o {
                DiskOutput::Complete { id, at, hit, .. } => {
                    assert_eq!(id, req.id);
                    done = Some((at, hit));
                }
                DiskOutput::OpFinished { at } => finish = Some(at),
            }
        }
        if let Some(at) = finish {
            let more = d.on_op_finished(at);
            assert!(more.is_empty(), "no queued work expected");
        }
        done.expect("request must complete")
    }

    #[test]
    fn cold_read_takes_mechanical_time() {
        let mut d = disk();
        let (at, hit) =
            run_one(&mut d, SimTime::ZERO, DiskRequest::read(RequestId(1), 1_000_000, 128));
        assert!(!hit);
        // Seek + rotation + transfer: somewhere between 0.5ms and 35ms.
        let ms = at.as_millis_f64();
        assert!(ms > 0.5 && ms < 35.0, "cold 64K read took {ms}ms");
        assert_eq!(d.metrics().media_ops, 1);
        assert_eq!(d.metrics().requests, 1);
    }

    #[test]
    fn sequential_reads_hit_readahead() {
        let mut d = disk_with_cache(32, 256 * KIB, 256 * KIB);
        let (_, _, hits) = run_streams(&mut d, &[0], 128, 16, SimDuration::from_micros(50));
        // 256K segments over 64K requests: 3 of every 4 requests hit.
        assert!(hits >= 10, "only {hits}/16 hits");
    }

    #[test]
    fn single_stream_sustains_high_throughput() {
        // Synchronous sequential 64K reads with read-ahead should land in the
        // 35-60 MB/s range the paper measures for one stream.
        let mut d = disk_with_cache(32, 2 * MIB, 2 * MIB);
        let (bytes, end, _) = run_streams(&mut d, &[0], 128, 400, SimDuration::from_micros(100));
        let mbs = bytes as f64 / (1024.0 * 1024.0) / end.as_secs_f64();
        assert!(mbs > 30.0 && mbs < 65.0, "single-stream throughput {mbs} MB/s");
    }

    #[test]
    fn many_streams_without_readahead_collapse() {
        // 30 interleaved streams, no read-ahead: every request seeks.
        let mut d = disk_with_cache(32, 64 * KIB, 64 * KIB); // segment == request
        let spacing = d.geometry().total_blocks() / 30;
        let starts: Vec<Lba> = (0..30).map(|s| s * spacing).collect();
        let (bytes, end, _) = run_streams(&mut d, &starts, 128, 20, SimDuration::from_micros(100));
        let mbs = bytes as f64 / (1024.0 * 1024.0) / end.as_secs_f64();
        assert!(mbs < 15.0, "interleaved no-RA throughput should collapse, got {mbs} MB/s");
        assert!(d.metrics().seeks > 500);
    }

    #[test]
    fn readahead_restores_multi_stream_throughput() {
        // The same 30 streams with 2 MiB segments/read-ahead recover most of
        // the disk's streaming rate — the paper's central observation.
        let mut collapse = disk_with_cache(32, 64 * KIB, 64 * KIB);
        let mut ra = disk_with_cache(32, 2 * MIB, 2 * MIB);
        let spacing = collapse.geometry().total_blocks() / 30;
        let starts: Vec<Lba> = (0..30).map(|s| s * spacing).collect();
        let (b1, e1, _) =
            run_streams(&mut collapse, &starts, 128, 20, SimDuration::from_micros(100));
        let (b2, e2, _) = run_streams(&mut ra, &starts, 128, 60, SimDuration::from_micros(100));
        let slow = b1 as f64 / e1.as_secs_f64();
        let fast = b2 as f64 / e2.as_secs_f64();
        assert!(
            fast > 2.5 * slow,
            "2MiB read-ahead should be >2.5x faster: {:.1} vs {:.1} MB/s",
            fast / (1024.0 * 1024.0),
            slow / (1024.0 * 1024.0)
        );
    }

    #[test]
    fn inflight_request_attaches_to_active_op() {
        let mut d = disk_with_cache(32, MIB, MIB);
        // First request starts a 1 MiB media op (64K request + RA).
        let outs = d.submit(SimTime::ZERO, DiskRequest::read(RequestId(1), 0, 128));
        let finish = outs
            .iter()
            .find_map(|o| match o {
                DiskOutput::OpFinished { at } => Some(*at),
                _ => None,
            })
            .unwrap();
        // While the op is in flight, a request inside its range completes
        // without a second media op.
        let mid = SimTime::from_nanos(finish.as_nanos() / 2);
        let outs2 = d.submit(mid, DiskRequest::read(RequestId(2), 512, 128));
        assert_eq!(outs2.len(), 1);
        match outs2[0] {
            DiskOutput::Complete { id, hit, at, .. } => {
                assert_eq!(id, RequestId(2));
                assert!(hit);
                assert!(at <= finish + SimDuration::from_millis(1));
            }
            _ => panic!("expected completion"),
        }
        assert_eq!(d.metrics().inflight_hits, 1);
        assert_eq!(d.metrics().media_ops, 1);
        d.on_op_finished(finish);
    }

    #[test]
    fn write_invalidates_cache() {
        let mut d = disk_with_cache(32, 256 * KIB, 256 * KIB);
        let (_, _) = run_one(&mut d, SimTime::ZERO, DiskRequest::read(RequestId(1), 0, 128));
        // Cached now; a write to the same range invalidates.
        let (at, hit) = run_one(
            &mut d,
            SimTime::from_nanos(1_000_000_000),
            DiskRequest::write(RequestId(2), 0, 128),
        );
        assert!(!hit);
        let (_, hit3) = run_one(
            &mut d,
            at + SimDuration::from_millis(1),
            DiskRequest::read(RequestId(3), 0, 128),
        );
        assert!(!hit3, "read after write must go to media");
    }

    #[test]
    fn queue_drains_in_order() {
        let mut d = disk_with_cache(0, 0, 0); // no cache
        let mut outs = Vec::new();
        for i in 0..5u64 {
            outs.extend(
                d.submit(SimTime::ZERO, DiskRequest::read(RequestId(i), i * 1_000_000, 128)),
            );
        }
        // Exactly one op active; drain the chain.
        let mut completed = Vec::new();
        loop {
            let mut next_finish = None;
            for o in &outs {
                match *o {
                    DiskOutput::Complete { id, .. } => completed.push(id),
                    DiskOutput::OpFinished { at } => next_finish = Some(at),
                }
            }
            outs.clear();
            match next_finish {
                Some(at) => outs = d.on_op_finished(at),
                None => break,
            }
        }
        completed.sort();
        completed.dedup();
        assert_eq!(completed.len(), 5);
        assert!(d.is_idle());
    }

    #[test]
    #[should_panic(expected = "invalid disk request")]
    fn oversized_request_panics() {
        let mut d = disk();
        let end = d.geometry().total_blocks();
        let _ = d.submit(SimTime::ZERO, DiskRequest::read(RequestId(1), end - 10, 20));
    }

    #[test]
    fn validate_request_reports_errors() {
        let d = disk();
        assert!(d.validate_request(&DiskRequest::read(RequestId(1), 0, 0)).is_err());
        assert!(d.validate_request(&DiskRequest::read(RequestId(1), 0, 8)).is_ok());
    }

    #[test]
    fn contiguous_continuation_skips_seek() {
        let mut d = disk_with_cache(0, 0, 0);
        let (at1, _) = run_one(&mut d, SimTime::ZERO, DiskRequest::read(RequestId(1), 0, 256));
        let seeks_before = d.metrics().seeks;
        // Immediately continue where the media op ended.
        let (_, _) = run_one(&mut d, at1, DiskRequest::read(RequestId(2), 256, 256));
        assert_eq!(d.metrics().seeks, seeks_before, "contiguous read must not seek");
    }

    #[test]
    fn gap_beyond_tolerance_pays_rotation() {
        let mut d = disk_with_cache(0, 0, 0);
        let (at1, _) = run_one(&mut d, SimTime::ZERO, DiskRequest::read(RequestId(1), 0, 256));
        let seeks_before = d.metrics().seeks;
        // Come back far later: the platter has rotated away.
        let (_, _) = run_one(
            &mut d,
            at1 + SimDuration::from_millis(50),
            DiskRequest::read(RequestId(2), 256, 256),
        );
        assert_eq!(d.metrics().seeks, seeks_before + 1);
    }
}

#[cfg(test)]
mod device_queue_tests {
    use super::*;
    use crate::cache::CacheConfig;
    use crate::config::DiskConfig;
    use seqio_simcore::units::KIB;

    fn disk_with_cache(segments: usize, seg_bytes: u64, ra: u64) -> Disk {
        let cfg = DiskConfig::wd800jd().with_cache(CacheConfig {
            segment_count: segments,
            segment_bytes: seg_bytes,
            read_ahead_bytes: ra,
        });
        Disk::new(cfg, 7)
    }

    /// Fill the cache with one op, then bury the disk under a backlog deeper
    /// than the device queue: a fresh submit for cached data must NOT take
    /// the fast path (it waits in the host FIFO), but when it reaches the
    /// mechanism the op-start recheck still serves it from the cache.
    #[test]
    fn deep_backlog_defers_cache_hits_to_op_start() {
        let mut d = disk_with_cache(32, 256 * KIB, 256 * KIB);
        // Op 1: populate the segment at lba 0.
        let outs = d.submit(SimTime::ZERO, DiskRequest::read(RequestId(0), 0, 128));
        let finish = outs
            .iter()
            .find_map(|o| match o {
                DiskOutput::OpFinished { at } => Some(*at),
                _ => None,
            })
            .unwrap();
        let mut next = d.on_op_finished(finish);
        assert!(next.is_empty());
        // Backlog: more queued commands than the device queue holds.
        let depth = d.config().device_queue_depth;
        let mut events = Vec::new();
        let t = finish + SimDuration::from_millis(1);
        for i in 0..(depth as u64 + 4) {
            events.extend(
                d.submit(t, DiskRequest::read(RequestId(10 + i), 40_000_000 + i * 1_000_000, 128)),
            );
        }
        // Now re-read the cached range: with a deep backlog this must not
        // complete instantly as a submit-time hit.
        let before_hits = d.metrics().cache_hits;
        let outs = d.submit(t, DiskRequest::read(RequestId(99), 0, 128));
        assert!(
            outs.iter()
                .all(|o| !matches!(o, DiskOutput::Complete { id, .. } if *id == RequestId(99))),
            "deep backlog must defer the hit: {outs:?}"
        );
        assert_eq!(d.metrics().cache_hits, before_hits);
        events.extend(outs);
        // Drain the whole queue; the buried request eventually completes as
        // an op-start cache hit.
        let mut done99 = false;
        let mut hit99 = false;
        let mut pending: Vec<DiskOutput> = events;
        loop {
            let mut op_finish = None;
            for o in pending.drain(..) {
                match o {
                    DiskOutput::Complete { id, hit, .. } => {
                        if id == RequestId(99) {
                            done99 = true;
                            hit99 = hit;
                        }
                    }
                    DiskOutput::OpFinished { at } => op_finish = Some(at),
                }
            }
            match op_finish {
                Some(at) => pending = d.on_op_finished(at),
                None => break,
            }
        }
        assert!(done99, "buried request completes");
        assert!(hit99, "…as a cache hit at op start");
        next.clear();
    }

    /// The firmware gap credit: a contiguous continuation after a short idle
    /// gap finishes (gap-credit) sooner than after a long one, and far
    /// sooner than a non-contiguous read.
    #[test]
    fn gap_credit_shrinks_contiguous_service() {
        let service = |gap_ms: u64, contiguous: bool| {
            let mut d = disk_with_cache(0, 0, 0);
            let outs = d.submit(SimTime::ZERO, DiskRequest::read(RequestId(1), 0, 2048));
            let finish = outs
                .iter()
                .find_map(|o| match o {
                    DiskOutput::OpFinished { at } => Some(*at),
                    _ => None,
                })
                .unwrap();
            d.on_op_finished(finish);
            let start = finish + SimDuration::from_millis(gap_ms);
            let lba = if contiguous { 2048 } else { 30_000_000 };
            let outs = d.submit(start, DiskRequest::read(RequestId(2), lba, 2048));
            let done = outs
                .iter()
                .find_map(|o| match o {
                    DiskOutput::Complete { at, .. } => Some(*at),
                    _ => None,
                })
                .unwrap();
            done.duration_since(start)
        };
        let credited = service(5, true); // within the 10ms window
        let uncredited = service(50, true); // window expired: rotational hit
        let random = service(5, false);
        assert!(
            credited < uncredited,
            "gap credit must shorten service: {credited} vs {uncredited}"
        );
        assert!(random > credited, "random read pays seek + rotation: {random}");
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::cache::CacheConfig;
    use seqio_simcore::FaultPlan;

    fn disk_no_cache() -> Disk {
        let cfg = DiskConfig::wd800jd().with_cache(CacheConfig {
            segment_count: 0,
            segment_bytes: 0,
            read_ahead_bytes: 0,
        });
        Disk::new(cfg, 42)
    }

    /// Runs one cold read and returns its completion time.
    fn cold_read(d: &mut Disk) -> SimTime {
        let outs = d.submit(SimTime::ZERO, DiskRequest::read(RequestId(1), 1_000_000, 128));
        let mut done = None;
        let mut finish = None;
        for o in outs {
            match o {
                DiskOutput::Complete { at, .. } => done = Some(at),
                DiskOutput::OpFinished { at } => finish = Some(at),
            }
        }
        d.on_op_finished(finish.expect("media op"));
        done.expect("completion")
    }

    #[test]
    fn straggler_inflates_service_time() {
        let healthy = cold_read(&mut disk_no_cache());
        let mut slow = disk_no_cache();
        let plan = FaultPlan::new().straggler(0, 4.0, SimDuration::ZERO, None);
        slow.install_faults(plan.disk(0).unwrap().clone(), 9);
        let degraded = cold_read(&mut slow);
        let ratio = degraded.as_nanos() as f64 / healthy.as_nanos() as f64;
        assert!(ratio > 2.5, "4x straggler should inflate service: ratio {ratio:.2}");
        assert_eq!(slow.metrics().degraded_ops, 1);
        assert_eq!(slow.metrics().read_errors, 0);
    }

    #[test]
    fn inactive_window_leaves_timing_identical() {
        let healthy = cold_read(&mut disk_no_cache());
        let mut d = disk_no_cache();
        // Window far in the future: the op at t=0 must be untouched.
        let plan = FaultPlan::new().straggler(0, 8.0, SimDuration::from_secs(100), None);
        d.install_faults(plan.disk(0).unwrap().clone(), 9);
        assert_eq!(cold_read(&mut d), healthy);
        assert_eq!(d.metrics().degraded_ops, 0);
    }

    #[test]
    fn bad_region_charges_remap_penalty() {
        let healthy = cold_read(&mut disk_no_cache());
        let mut d = disk_no_cache();
        let penalty = SimDuration::from_millis(20);
        let plan = FaultPlan::new().bad_region(0, 1_000_000, 256, penalty);
        d.install_faults(plan.disk(0).unwrap().clone(), 9);
        let remapped = cold_read(&mut d);
        assert_eq!(remapped, healthy + penalty);
        assert_eq!(d.metrics().remapped_ops, 1);
    }

    #[test]
    fn read_errors_are_flagged_and_deterministic() {
        let errors_of = |seed: u64| {
            let mut d = disk_no_cache();
            let plan = FaultPlan::new().read_errors(0, 0.5);
            d.install_faults(plan.disk(0).unwrap().clone(), seed);
            let mut flagged = Vec::new();
            for i in 0..20u64 {
                let outs = d.submit(SimTime::ZERO, DiskRequest::read(RequestId(i), 0, 128));
                let mut finish = None;
                for o in outs {
                    match o {
                        DiskOutput::Complete { id, error, .. } => {
                            if error {
                                flagged.push(id.0);
                            }
                        }
                        DiskOutput::OpFinished { at } => finish = Some(at),
                    }
                }
                d.on_op_finished(finish.expect("media op"));
            }
            (flagged, d.metrics().read_errors)
        };
        let (flagged, count) = errors_of(9);
        assert!(count > 0, "50% error rate over 20 media reads must fire");
        assert_eq!(flagged.len() as u64, count);
        assert_eq!(errors_of(9), (flagged, count), "same seed, same errors");
    }
}

#[cfg(test)]
mod analytic_agreement {
    use super::tests::run_streams;
    use super::*;
    use crate::analytic;
    use crate::cache::CacheConfig;
    use crate::config::DiskConfig;
    use seqio_simcore::units::KIB;

    /// The simulator and the closed-form estimate agree within 40% on the
    /// interleaved-stream regimes the paper sweeps.
    #[test]
    fn simulator_matches_estimate_within_tolerance() {
        for (streams, segments) in [(10usize, 32usize), (30, 32), (100, 32)] {
            let cfg = DiskConfig::wd800jd().with_cache(CacheConfig {
                segment_count: segments,
                segment_bytes: 256 * KIB,
                read_ahead_bytes: 256 * KIB,
            });
            let est = analytic::interleaved_streams(&cfg, streams, 64 * KIB).mbytes_per_sec;
            let mut d = Disk::new(cfg, 3);
            let spacing = d.geometry().total_blocks() / streams as u64;
            let starts: Vec<Lba> = (0..streams as u64).map(|s| s * spacing).collect();
            let (bytes, end, _) =
                run_streams(&mut d, &starts, 128, 40, SimDuration::from_micros(300));
            let sim = bytes as f64 / (1024.0 * 1024.0) / end.as_secs_f64();
            let ratio = sim / est;
            assert!(
                (0.6..=1.6).contains(&ratio),
                "{streams} streams: sim {sim:.1} vs estimate {est:.1} (ratio {ratio:.2})"
            );
        }
    }
}
