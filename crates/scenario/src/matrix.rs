//! The scenario experiment matrix: every named scenario run under the
//! direct frontend, a panel of static scheduler tunes, and the adaptive
//! tuner — the shared harness behind the integration tests, the
//! `probe scenario` smoke binary and the `scenario_matrix` bench.

use seqio_core::ServerConfig;
use seqio_node::{Experiment, Frontend, NodeShape};
use seqio_simcore::{SeqioError, SimDuration};

use crate::adaptive::AdaptiveConfig;
use crate::generators::{generate, Scenario, ScenarioKind, ScenarioParams};
use crate::run::ScenarioRun;

const MIB: u64 = 1 << 20;
const GIB: u64 = 1 << 30;

/// How large a matrix run is. The quick scale keeps the whole 7-scenario
/// matrix inside a few seconds of wall clock for tests and CI; the full
/// scale is for the bench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixScale {
    /// Warmup excluded from measurement.
    pub warmup: SimDuration,
    /// Measured window.
    pub duration: SimDuration,
    /// Long-lived streams per disk.
    pub streams_per_disk: usize,
}

impl MatrixScale {
    /// Test/CI scale.
    pub fn quick() -> MatrixScale {
        MatrixScale {
            warmup: SimDuration::from_millis(250),
            duration: SimDuration::from_millis(1_250),
            streams_per_disk: 4,
        }
    }

    /// Bench scale.
    pub fn full() -> MatrixScale {
        MatrixScale {
            warmup: SimDuration::from_secs(1),
            duration: SimDuration::from_secs(4),
            streams_per_disk: 4,
        }
    }
}

/// One static tune's throughput on a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StaticOutcome {
    /// Candidate name (`auto`, `default`).
    pub name: &'static str,
    /// Aggregate throughput, MB/s.
    pub mbs: f64,
}

/// One scenario's full comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixRow {
    /// Scenario name.
    pub scenario: &'static str,
    /// Direct (no scheduler) throughput, MB/s.
    pub direct_mbs: f64,
    /// Every static scheduler tune's throughput.
    pub statics: Vec<StaticOutcome>,
    /// The over-wide reference tune's throughput, MB/s. Recorded for the
    /// report but not part of the static candidate panel: its `D = 64`
    /// dispatch set abandons the paper's few-streams-at-a-time discipline
    /// and, on scenarios it happens to win, does so for reasons (open
    /// sessions draining a huge staging pool) the `D/R/N` feedback rules
    /// cannot observe from disk health alone.
    pub wide_mbs: f64,
    /// Adaptive throughput (tuner seeded from the `auto` tune), MB/s.
    pub adaptive_mbs: f64,
    /// Retunes the adaptive tuner applied across nodes.
    pub retunes: usize,
}

impl MatrixRow {
    /// The best static candidate.
    pub fn best_static(&self) -> StaticOutcome {
        *self
            .statics
            .iter()
            .max_by(|a, b| a.mbs.total_cmp(&b.mbs))
            .expect("matrix rows carry at least one static candidate")
    }
}

/// The single-node, eight-disk template every matrix cell shares; the
/// scenario trace provides the whole stream population.
pub fn matrix_template(scale: &MatrixScale, seed: u64) -> Experiment {
    Experiment::builder()
        .shape(NodeShape::eight_disk())
        .streams_per_disk(0)
        .open_sessions(true)
        .warmup(scale.warmup)
        .duration(scale.duration)
        .seed(seed)
        .build()
}

/// The static scheduler tunes the adaptive controller is measured
/// against: the repo's two canonical named tunes. `auto` is the
/// memory-aware tuner at 1 GiB; `default` the historical hand tune
/// (`D=4`).
pub fn static_candidates() -> Vec<(&'static str, ServerConfig)> {
    vec![("auto", ServerConfig::auto_tune(GIB, 8)), ("default", ServerConfig::default_tuning())]
}

/// The deliberately over-wide reference tune recorded alongside the
/// candidate panel (see [`MatrixRow::wide_mbs`]).
pub fn wide_reference() -> ServerConfig {
    ServerConfig::memory_limited(512 * MIB, MIB, 8)
}

/// Generates scenario `kind` at the matrix scale.
///
/// # Errors
///
/// Propagates generator errors.
pub fn matrix_scenario(
    kind: ScenarioKind,
    scale: &MatrixScale,
    seed: u64,
) -> Result<Scenario, SeqioError> {
    let template = matrix_template(scale, seed);
    let params = ScenarioParams::from_template(&template, 1, scale.streams_per_disk);
    generate(kind, &params, seed)
}

fn run_cell(
    template: &Experiment,
    scenario: &Scenario,
    frontend: Frontend,
    adaptive: Option<AdaptiveConfig>,
) -> Result<(f64, usize), SeqioError> {
    let mut t = template.clone();
    t.frontend = frontend;
    t.faults = scenario.faults.clone();
    let mut run = ScenarioRun::new(t, scenario.trace.clone());
    run.adaptive = adaptive;
    let outcome = run.run()?;
    Ok((outcome.total_throughput_mbs(), outcome.retunes.len()))
}

/// Runs one scenario across the direct frontend, every static candidate
/// and the adaptive tuner.
///
/// # Errors
///
/// Propagates generation and run errors.
pub fn run_row(
    kind: ScenarioKind,
    scale: &MatrixScale,
    seed: u64,
) -> Result<MatrixRow, SeqioError> {
    let template = matrix_template(scale, seed);
    let scenario = matrix_scenario(kind, scale, seed)?;
    let (direct_mbs, _) = run_cell(&template, &scenario, Frontend::Direct, None)?;
    let mut statics = Vec::new();
    for (name, cfg) in static_candidates() {
        let (mbs, _) = run_cell(&template, &scenario, Frontend::StreamScheduler(cfg), None)?;
        statics.push(StaticOutcome { name, mbs });
    }
    let (wide_mbs, _) =
        run_cell(&template, &scenario, Frontend::StreamScheduler(wide_reference()), None)?;
    let (adaptive_mbs, retunes) = run_cell(
        &template,
        &scenario,
        Frontend::StreamScheduler(ServerConfig::auto_tune(GIB, 8)),
        Some(AdaptiveConfig::standard()),
    )?;
    Ok(MatrixRow { scenario: kind.name(), direct_mbs, statics, wide_mbs, adaptive_mbs, retunes })
}

/// Runs the whole matrix, one row per scenario kind.
///
/// # Errors
///
/// Propagates the first row error.
pub fn run_matrix(scale: &MatrixScale, seed: u64) -> Result<Vec<MatrixRow>, SeqioError> {
    ScenarioKind::ALL.iter().map(|&k| run_row(k, scale, seed)).collect()
}

/// The degraded-rescue demonstration: on the [`Degraded`] scenario with a
/// *narrow* static tune (`default`, `D=4` on 8 disks — dispatch slots are
/// shared across disks), the adaptive tuner's straggler rule lowers the
/// rotate threshold below the 1.8x factor and rotation stops the slow
/// disk from hoarding slots. Returns `(static_mbs, adaptive_mbs,
/// retunes)`; adaptive strictly wins.
///
/// [`Degraded`]: ScenarioKind::Degraded
///
/// # Errors
///
/// Propagates generation and run errors.
pub fn degraded_rescue(scale: &MatrixScale, seed: u64) -> Result<(f64, f64, usize), SeqioError> {
    let template = matrix_template(scale, seed);
    let scenario = matrix_scenario(ScenarioKind::Degraded, scale, seed)?;
    let narrow = Frontend::StreamScheduler(ServerConfig::default_tuning());
    let (static_mbs, _) = run_cell(&template, &scenario, narrow.clone(), None)?;
    let (adaptive_mbs, retunes) =
        run_cell(&template, &scenario, narrow, Some(AdaptiveConfig::standard()))?;
    Ok((static_mbs, adaptive_mbs, retunes))
}
