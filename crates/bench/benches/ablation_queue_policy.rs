//! Ablation — what if the drive reordered its queue?
//!
//! The paper's commodity SATA drives service commands in order; NCQ-style
//! reordering is the obvious hardware counter-measure to the collapse. This
//! ablation swaps the disk queue policy under the 100-stream direct
//! workload: reordering softens the collapse but does not remove it, which
//! is exactly why a host-level fix remains worthwhile.

use seqio_bench::{window_secs, Figure, Grid};
use seqio_disk::QueuePolicy;
use seqio_node::{Experiment, NodeShape};

fn main() {
    let (warmup, duration) = window_secs((3, 4), (4, 8));

    let mut grid = Grid::new();
    for policy in [QueuePolicy::Fifo, QueuePolicy::Elevator, QueuePolicy::Sstf] {
        let label = format!("{policy:?}");
        for n in [1usize, 10, 30, 100] {
            let mut shape = NodeShape::single_disk();
            shape.disk.queue_policy = policy;
            grid = grid.point(
                &label,
                n.to_string(),
                Experiment::builder()
                    .shape(shape)
                    .streams_per_disk(n)
                    .warmup(warmup)
                    .duration(duration)
                    .seed(2525)
                    .build(),
            );
        }
    }

    let mut fig = Figure::new(
        "Ablation",
        "Disk queue policy under the direct path (64K requests)",
        "Streams per Disk",
        "Throughput (MBytes/s)",
    );
    grid.run().fill(&mut fig, |r| r.total_throughput_mbs());
    fig.report("ablation_queue_policy");
    let fifo = fig.series[0].ys();
    let sstf = fig.series[2].ys();
    println!(
        "at 100 streams: FIFO {:.1} MB/s, SSTF {:.1} MB/s — reordering helps {:.1}x, \
         far short of the stream scheduler's ~8x",
        fifo[3],
        sstf[3],
        sstf[3] / fifo[3]
    );
}
