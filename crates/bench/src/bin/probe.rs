//! Calibration probe: prints the key operating points the figures depend
//! on, so model constants can be sanity-checked quickly.
//!
//! `probe perf` instead runs the kernel performance harness: a few
//! representative macro points timed wall-clock, reporting events
//! simulated and events/sec, with machine-readable JSON written to
//! `bench_results/perf_probe.json`.
//!
//! `probe faults` exercises the fault-injection layer: straggler
//! severities and transient-error rates on the direct and scheduler
//! paths, with throughput and error/retry/timeout counters written to
//! `bench_results/fault_probe.json`.
//!
//! `probe timeline` runs the scheduler-vs-direct pair with the metric
//! sampler on and writes `bench_results/timeline_probe.json`: per-disk
//! utilization timelines plus the scheduler's staged-memory high-water
//! mark, cross-checked against the runs' aggregate counters.
//!
//! `probe cluster` runs the multi-node scale-out points (1/2/4/8 healthy
//! nodes, plus the hash-vs-straggler-aware pair under one factor-4
//! straggler node) and writes `bench_results/cluster_probe.json` with the
//! scaling factor and routing ratio the issue's acceptance bars read.
//!
//! `probe migrate` runs the mid-run migration point: a straggler lands on
//! one of two nodes *after* the batch is underway, and the shared-clock
//! rebalancer's live migration is compared against the best static
//! routings. Writes `bench_results/migrate_probe.json` and asserts the
//! >= 1.3x migration win.
//!
//! `probe slo` runs the user-scale open-loop point: a million diurnally
//! modulated sessions (override with `SEQIO_SLO_SESSIONS`) against a
//! 4-node cluster behind a 250 MiB/s fair-share link, writing end-to-end
//! session SLO percentiles to `bench_results/slo_probe.json` alongside a
//! closed-loop companion run for contrast.
//!
//! `probe tail` runs the slo scenario at a reduced default scale
//! (override with `SEQIO_TAIL_SESSIONS`) with span recording on,
//! correlates the run into cross-tier session traces, attributes the
//! p99.9 latency band, and monitors the SLO burn rate. Writes
//! `bench_results/tail_probe.json` plus the correlated traces to
//! `bench_results/tail_trace.jsonl`.
//!
//! `probe scenario` runs the scenario experiment matrix (every named
//! scenario under direct, the static candidate panel, the over-wide
//! reference and the adaptive tuner) plus the degraded-rescue point,
//! asserts the adaptive-vs-static acceptance bars, and writes
//! `bench_results/scenario_probe.json`.

use std::fmt::Write as _;
use std::time::Instant;

use seqio_core::ServerConfig;
use seqio_disk::CacheConfig;
use seqio_hostsched::{ReadaheadConfig, SchedKind};
use seqio_node::{CostModel, Experiment, Frontend, NodeShape, ObsConfig};
use seqio_simcore::units::{KIB, MIB};
use seqio_simcore::{ProfConfig, SimDuration};

/// One timed macro point of the perf harness.
struct PerfPoint {
    name: &'static str,
    wall_secs: f64,
    events: u64,
    repeats: u32,
}

impl PerfPoint {
    fn events_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.events as f64 / self.wall_secs
        } else {
            0.0
        }
    }
}

/// Times `spec` `repeats` times and keeps the best (minimum) wall time —
/// the usual way to suppress scheduler noise in a throughput harness.
fn time_point(name: &'static str, spec: Experiment, repeats: u32) -> PerfPoint {
    let mut best = f64::INFINITY;
    let mut events = 0;
    for _ in 0..repeats {
        let start = Instant::now();
        let r = spec.run();
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        events = r.events_simulated;
    }
    PerfPoint { name, wall_secs: best, events, repeats }
}

/// Runs the representative macro points and writes the JSON report.
fn perf_mode() {
    let secs: u64 =
        std::env::var("SEQIO_PERF_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(58);
    let repeats: u32 =
        std::env::var("SEQIO_PERF_REPEATS").ok().and_then(|v| v.parse().ok()).unwrap_or(3);
    let w = SimDuration::from_secs(2);
    let d = SimDuration::from_secs(secs);
    let base = || Experiment::builder().warmup(w).duration(d).seed(7);

    let points = [
        time_point("direct-1disk-100streams", base().streams_per_disk(100).build(), repeats),
        time_point(
            "stream-sched-100streams",
            base()
                .streams_per_disk(100)
                .frontend(Frontend::stream_scheduler_with_readahead(4 * MIB))
                .build(),
            repeats,
        ),
        time_point(
            "direct-8disk-10streams",
            base().shape(NodeShape::eight_disk()).streams_per_disk(10).build(),
            repeats,
        ),
        time_point(
            "direct-60disk-30streams",
            base().shape(NodeShape::sixty_disk()).streams_per_disk(30).build(),
            repeats,
        ),
    ];

    println!("-- kernel perf: {secs}s simulated window, min of {repeats} runs --");
    let mut json = String::from("{\n  \"window_secs\": ");
    let _ = write!(json, "{secs},\n  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        println!(
            "  {:<26} {:>8.3}s wall  {:>10} events  {:>12.0} events/sec",
            p.name,
            p.wall_secs,
            p.events,
            p.events_per_sec()
        );
        let _ = write!(
            json,
            "{}\n    {{\"name\": \"{}\", \"wall_secs\": {:.6}, \"events\": {}, \
             \"events_per_sec\": {:.1}, \"repeats\": {}}}",
            if i == 0 { "" } else { "," },
            p.name,
            p.wall_secs,
            p.events,
            p.events_per_sec(),
            p.repeats
        );
    }
    json.push_str("\n  ]\n}\n");
    let dir = seqio_bench::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("perf_probe.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("   -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    // SEQIO_PERF_OBS=1: guard the observability layer's zero-cost promise.
    // The recorder is always compiled in now; a run carrying a disabled
    // ObsConfig must stay within 10% of the plain baseline's event rate.
    if std::env::var("SEQIO_PERF_OBS").is_ok_and(|v| v == "1") {
        let baseline = time_point("obs-absent", base().streams_per_disk(100).build(), repeats);
        let disabled = time_point(
            "obs-disabled",
            base().streams_per_disk(100).build().observe(ObsConfig::new()),
            repeats,
        );
        let (b, d) = (baseline.events_per_sec(), disabled.events_per_sec());
        println!("-- recorder overhead: {b:.0} events/sec absent, {d:.0} disabled --");
        assert_eq!(baseline.events, disabled.events, "a disabled recorder must not add events");
        assert!(
            d >= 0.9 * b,
            "disabled recorder regressed the kernel by more than 10%: \
             {d:.0} vs {b:.0} events/sec"
        );

        // The kernel self-profiler rides the same promise: counting
        // alone must also stay inside the 10% envelope, and the full
        // wall-clock duration accounting is reported informationally.
        let counted = time_point(
            "prof-counts",
            base().streams_per_disk(100).build().profile(ProfConfig::counts_only()),
            repeats,
        );
        let timed = time_point(
            "prof-full",
            base().streams_per_disk(100).build().profile(ProfConfig::new()),
            repeats,
        );
        let (c, t) = (counted.events_per_sec(), timed.events_per_sec());
        println!("-- profiler overhead: {c:.0} events/sec counting, {t:.0} with durations --");
        assert_eq!(baseline.events, counted.events, "profiling must not add events");
        assert_eq!(baseline.events, timed.events, "profiling must not add events");
        assert!(
            c >= 0.9 * b,
            "count-only profiling cost more than 10%: {c:.0} vs {b:.0} events/sec"
        );
    }
}

/// Runs the scheduler-vs-direct pair with metric sampling on and writes
/// per-disk utilization timelines plus the scheduler's staged-memory
/// high-water mark to `bench_results/timeline_probe.json`.
fn timeline_mode() {
    let secs: u64 =
        std::env::var("SEQIO_TIMELINE_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(2);
    let w = SimDuration::from_secs(1);
    let d = SimDuration::from_secs(secs);
    let interval = SimDuration::from_millis(20);
    let run = |sched: bool| {
        let mut b = Experiment::builder()
            .shape(NodeShape::eight_disk())
            .streams_per_disk(30)
            .warmup(w)
            .duration(d)
            .seed(17);
        if sched {
            b = b.frontend(Frontend::stream_scheduler_with_readahead(MIB));
        }
        b.build().observe(ObsConfig::new().with_metrics().sample_every(interval)).run()
    };

    println!("-- timeline probe: 8 disks, 30 streams/disk, sampled every {interval} --");
    let mut json = String::from("{\n  \"sample_interval_ms\": 20,\n  \"runs\": [");
    let run_secs = (w + d).as_secs_f64();
    for (i, (name, r)) in [("direct", run(false)), ("scheduler", run(true))].iter().enumerate() {
        let series = r.metrics.as_ref().expect("sampling enabled");
        let _ = write!(
            json,
            "{}\n    {{\"name\": \"{name}\", \"throughput_mbs\": {:.4}, \"disks\": [",
            if i == 0 { "" } else { "," },
            r.total_throughput_mbs()
        );
        for (disk, busy) in r.disk_busy.iter().enumerate() {
            let col = format!("disk{disk}.busy_frac");
            let sampled = series.column_mean(&col);
            let aggregate = busy.as_secs_f64() / run_secs;
            // The acceptance bar for the sampler: the timeline's mean must
            // reproduce the run's aggregate utilization within 5%.
            assert!(
                (sampled - aggregate).abs() <= 0.05 * aggregate.max(0.01),
                "{name} disk {disk}: sampled utilization {sampled:.4} \
                 drifted from aggregate {aggregate:.4}"
            );
            let timeline: Vec<String> = series
                .column_by_name(&col)
                .expect("registered column")
                .iter()
                .map(|v| format!("{v:.4}"))
                .collect();
            let _ = write!(
                json,
                "{}\n      {{\"disk\": {disk}, \"mean_util\": {sampled:.4}, \
                 \"aggregate_util\": {aggregate:.4}, \"timeline\": [{}]}}",
                if disk == 0 { "" } else { "," },
                timeline.join(",")
            );
        }
        let staged_hw = series.column_max("server.staged_bytes");
        let _ = write!(json, "\n    ], \"staged_high_water_bytes\": {}}}", staged_hw as u64);
        println!(
            "  {name:<10} {:>8.2} MB/s  mean util {:.3}  staged high-water {} KiB",
            r.total_throughput_mbs(),
            (0..r.disk_busy.len())
                .map(|disk| series.column_mean(&format!("disk{disk}.busy_frac")))
                .sum::<f64>()
                / r.disk_busy.len() as f64,
            staged_hw as u64 / 1024
        );
    }
    json.push_str("\n  ]\n}\n");
    let dir = seqio_bench::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("timeline_probe.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("   -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Sweeps straggler severity and error rate through both request paths
/// and writes `bench_results/fault_probe.json`.
fn faults_mode() {
    use seqio_simcore::FaultPlan;

    let secs: u64 =
        std::env::var("SEQIO_FAULT_SECS").ok().and_then(|v| v.parse().ok()).unwrap_or(3);
    let w = SimDuration::from_secs(secs);
    let d = SimDuration::from_secs(secs);
    let run = |plan: FaultPlan, sched: bool| {
        let mut b =
            Experiment::builder().streams_per_disk(100).faults(plan).warmup(w).duration(d).seed(11);
        if sched {
            b = b.frontend(Frontend::stream_scheduler_with_readahead(4 * MIB));
        }
        b.run()
    };

    println!("-- fault probe: {secs}s warmup + {secs}s window, 100 streams, 1 disk --");
    let mut json = String::from("{\n  \"window_secs\": ");
    let _ = write!(json, "{secs},\n  \"points\": [");
    let mut first = true;
    let mut emit = |name: String, direct: &seqio_node::RunResult, sched: &seqio_node::RunResult| {
        println!(
            "  {:<22} direct {:>7.2} MB/s  scheduler {:>7.2} MB/s  \
             errors {} retries {} timeouts {}",
            name,
            direct.total_throughput_mbs(),
            sched.total_throughput_mbs(),
            direct.disk_read_errors[0] + sched.disk_read_errors[0],
            direct.disk_retries[0] + sched.disk_retries[0],
            direct.disk_timeouts[0] + sched.disk_timeouts[0],
        );
        let _ = write!(
            json,
            "{}\n    {{\"name\": \"{}\", \"direct_mbs\": {:.4}, \"scheduler_mbs\": {:.4}, \
             \"read_errors\": {}, \"retries\": {}, \"timeouts\": {}}}",
            if first { "" } else { "," },
            name,
            direct.total_throughput_mbs(),
            sched.total_throughput_mbs(),
            direct.disk_read_errors[0] + sched.disk_read_errors[0],
            direct.disk_retries[0] + sched.disk_retries[0],
            direct.disk_timeouts[0] + sched.disk_timeouts[0],
        );
        first = false;
    };

    for factor in [1.0, 2.0, 4.0, 8.0] {
        let plan = || FaultPlan::new().straggler(0, factor, w, None);
        let direct = run(plan(), false);
        let sched = run(plan(), true);
        emit(format!("straggler-{factor:.0}x"), &direct, &sched);
    }
    for rate in [0.001, 0.01] {
        let plan = || FaultPlan::new().read_errors(0, rate);
        let direct = run(plan(), false);
        let sched = run(plan(), true);
        emit(format!("errors-{rate}"), &direct, &sched);
    }

    json.push_str("\n  ]\n}\n");
    let dir = seqio_bench::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("fault_probe.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("   -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Runs the cluster scale-out points and writes
/// `bench_results/cluster_probe.json`: aggregate throughput and makespan
/// for 1/2/4/8 healthy nodes, plus the hash-vs-straggler-aware routing
/// pair with one factor-4 straggler node at 4 nodes.
fn cluster_mode() {
    use seqio_cluster::{ClusterExperiment, ClusterResult, ShardPolicy};
    use seqio_node::FaultPlan;

    let spd: usize =
        std::env::var("SEQIO_CLUSTER_STREAMS").ok().and_then(|v| v.parse().ok()).unwrap_or(100);
    let requests: u64 = 16;
    let template = || {
        Experiment::builder()
            .streams_per_disk(spd)
            .request_size(64 * KIB)
            .frontend(Frontend::stream_scheduler_with_readahead(512 * KIB))
            .requests_per_stream(requests)
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(120))
            .build()
    };
    let run = |nodes: usize, policy: ShardPolicy, straggler: Option<usize>| -> ClusterResult {
        let mut b = ClusterExperiment::builder()
            .template(template())
            .nodes(nodes)
            .policy(policy)
            .base_seed(2026);
        if let Some(k) = straggler {
            b = b.node_fault(k, FaultPlan::new().straggler(0, 4.0, SimDuration::ZERO, None));
        }
        b.run().expect("cluster probe point")
    };

    println!("-- cluster probe: {spd} streams/disk, {requests} requests/stream, batch drain --");
    let mut json = String::from("{\n  \"streams_per_disk\": ");
    let _ = write!(json, "{spd},\n  \"requests_per_stream\": {requests},\n  \"healthy\": [");
    let mut healthy = [0.0f64; 9];
    for (i, nodes) in [1usize, 2, 4, 8].into_iter().enumerate() {
        let r = run(nodes, ShardPolicy::HashByStream, None);
        healthy[nodes] = r.total_throughput_mbs();
        assert_eq!(r.requests_completed, (nodes * spd) as u64 * requests);
        println!(
            "  nodes={nodes}  {:>8.2} MB/s aggregate  makespan {:.1} ms",
            r.total_throughput_mbs(),
            r.window.as_millis_f64()
        );
        let _ = write!(
            json,
            "{}\n    {{\"nodes\": {nodes}, \"aggregate_mbs\": {:.4}, \"makespan_ms\": {:.3}}}",
            if i == 0 { "" } else { "," },
            r.total_throughput_mbs(),
            r.window.as_millis_f64()
        );
    }
    let scaling = healthy[4] / healthy[1];

    let hash = run(4, ShardPolicy::HashByStream, Some(1));
    let aware = run(4, ShardPolicy::StragglerAware, Some(1));
    let ratio = aware.total_throughput_mbs() / hash.total_throughput_mbs();
    println!(
        "  straggler(4x on node 1): hash {:>7.2} MB/s  aware {:>7.2} MB/s  ratio {ratio:.2}x",
        hash.total_throughput_mbs(),
        aware.total_throughput_mbs()
    );
    println!("  1->4 healthy scaling: {scaling:.2}x");
    let _ = write!(
        json,
        "\n  ],\n  \"scaling_1_to_4\": {scaling:.4},\n  \"straggler\": {{\
         \"factor\": 4.0, \"node\": 1, \"nodes\": 4, \
         \"hash_mbs\": {:.4}, \"aware_mbs\": {:.4}, \"aware_over_hash\": {ratio:.4}}}\n}}\n",
        hash.total_throughput_mbs(),
        aware.total_throughput_mbs()
    );

    // The issue's acceptance bars, enforced at probe time too so the CI
    // smoke step fails loudly if scale-out regresses.
    assert!(scaling >= 3.5, "1 -> 4 node scaling {scaling:.2}x below 3.5x");
    assert!(ratio >= 1.5, "straggler-aware routing held only {ratio:.2}x of hash");

    let dir = seqio_bench::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("cluster_probe.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("   -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Runs the mid-run migration point and writes
/// `bench_results/migrate_probe.json`: one of two nodes develops a
/// factor-8 straggler at 60% of the healthy makespan, and the rebalanced
/// run must beat both the hash deal and the fault-aware static router by
/// the issue's >= 1.3x bar.
fn migrate_mode() {
    use seqio_cluster::{ClusterResult, RebalanceConfig, Scenario, ShardPolicy};
    use seqio_node::FaultPlan;

    let spd: usize =
        std::env::var("SEQIO_MIGRATE_STREAMS").ok().and_then(|v| v.parse().ok()).unwrap_or(16);
    let requests: u64 = 16;
    let run = |policy: ShardPolicy,
               fault: Option<FaultPlan>,
               rebalance: Option<RebalanceConfig>|
     -> ClusterResult {
        let mut b = Scenario::builder()
            .streams_per_disk(spd)
            .request_size(64 * KIB)
            .requests_per_stream(requests)
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(300))
            .nodes(2)
            .policy(policy)
            .base_seed(19)
            .jobs(2);
        if let Some(f) = fault {
            b = b.node_fault(1, f);
        }
        if let Some(r) = rebalance {
            b = b.rebalance(r);
        }
        b.build().expect("valid migrate scenario").run().expect("migrate probe point")
    };

    // Calibrate the straggler onset off the healthy makespan so the fault
    // genuinely lands mid-run, whatever the stream count.
    let healthy = run(ShardPolicy::HashByStream, None, None);
    let onset = SimDuration::from_millis((healthy.window.as_millis_f64() * 0.6) as u64);
    let fault = || FaultPlan::new().straggler(0, 8.0, onset, None);
    let epoch = SimDuration::from_millis(((healthy.window.as_millis_f64() / 25.0) as u64).max(1));

    let hash = run(ShardPolicy::HashByStream, Some(fault()), None);
    let aware = run(ShardPolicy::StragglerAware, Some(fault()), None);
    let migrated = run(ShardPolicy::HashByStream, Some(fault()), Some(RebalanceConfig::new(epoch)));

    let (tp_hash, tp_aware, tp_mig) = (
        hash.total_throughput_mbs(),
        aware.total_throughput_mbs(),
        migrated.total_throughput_mbs(),
    );
    let win = tp_mig / tp_hash.max(tp_aware);
    println!("-- migrate probe: 2 nodes, {spd} streams/node, 8x straggler from {onset} --");
    println!(
        "  static hash      {tp_hash:>8.2} MB/s  makespan {:.1} ms",
        hash.window.as_millis_f64()
    );
    println!(
        "  static aware     {tp_aware:>8.2} MB/s  makespan {:.1} ms",
        aware.window.as_millis_f64()
    );
    println!(
        "  migrated         {tp_mig:>8.2} MB/s  makespan {:.1} ms  ({} move(s))",
        migrated.window.as_millis_f64(),
        migrated.migrations.len()
    );
    println!("  migration win over best static: {win:.2}x");

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"streams_per_node\": {spd},\n  \"requests_per_stream\": {requests},\n  \
         \"straggler_factor\": 8.0,\n  \"onset_ms\": {:.3},\n  \"epoch_ms\": {:.3},\n  \
         \"hash_mbs\": {tp_hash:.4},\n  \"aware_mbs\": {tp_aware:.4},\n  \
         \"migrated_mbs\": {tp_mig:.4},\n  \"migrations\": {},\n  \
         \"win_over_best_static\": {win:.4}\n}}\n",
        onset.as_millis_f64(),
        epoch.as_millis_f64(),
        migrated.migrations.len()
    );

    // The issue's acceptance bar, enforced at probe time so the CI smoke
    // step fails loudly if the migration win regresses.
    assert!(!migrated.migrations.is_empty(), "the straggler must trigger migrations");
    assert!(win >= 1.3, "migration win {win:.2}x below the 1.3x bar");

    let dir = seqio_bench::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("migrate_probe.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("   -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Runs the user-scale open-loop point: a diurnally modulated million-
/// session day against a 4-node cluster behind a shared fair-share link,
/// plus a closed-loop companion for contrast, and writes the end-to-end
/// session SLO percentiles to `bench_results/slo_probe.json`.
fn slo_mode() {
    use seqio_client::{ArrivalConfig, ClientExperiment, LinkConfig, RateModulation};

    let target: u64 =
        std::env::var("SEQIO_SLO_SESSIONS").ok().and_then(|v| v.parse().ok()).unwrap_or(1_000_000);
    let nodes = 4usize;
    let rate = 1600.0;
    // 5% horizon margin over target/rate: Poisson count noise is a few
    // thousand sessions at the million-session scale.
    let duration = SimDuration::from_secs_f64((target as f64 / rate) * 1.05);
    // Eight-disk nodes: the title placement spreads the catalogue over
    // all 32 disks, keeping per-disk concurrency low enough that the
    // storage tier sustains the 200 MiB/s mean demand — the *link* is the
    // contended resource in this probe, not the disks.
    let template = || {
        Experiment::builder()
            .shape(NodeShape::eight_disk())
            .request_size(64 * KIB)
            .warmup(SimDuration::ZERO)
            .duration(duration)
            .build()
    };
    let arrivals = ArrivalConfig {
        rate_per_sec: rate,
        // One full diurnal cycle across the horizon: the mean factor is 1,
        // so the session volume still tracks `rate`, but the peak runs 30%
        // hot — the tail percentiles have to survive the busy hour.
        modulation: RateModulation::Diurnal { period: duration, depth: 0.3 },
        titles: 8192,
        zipf_exponent: 0.8,
        requests_per_session: 2,
        session_lifetime: Some(SimDuration::from_secs(10)),
    };
    // 250 MiB/s shared across all live sessions: ~25% headroom over the
    // mean demand of rate x 128 KiB = 200 MiB/s, so the diurnal peak
    // genuinely contends for the link.
    let link = LinkConfig { capacity_bps: 250.0 * MIB as f64, ..LinkConfig::default() };

    let start = Instant::now();
    let open = ClientExperiment::builder()
        .template(template())
        .nodes(nodes)
        .base_seed(2026)
        .arrivals(arrivals)
        .link(link)
        .run()
        .expect("open-loop slo point");
    let wall = start.elapsed().as_secs_f64();
    let slo = open.slo.clone().expect("sessions completed");

    // Closed-loop companion: the same cluster and link with a fixed
    // 32-streams/disk population pinned from t = 0. Its "sessions" all
    // start together, so the latency spread reflects batch drain, not
    // user-perceived arrival-to-delivery time — the contrast the open
    // loop exists to fix.
    let mut closed_template = template();
    closed_template.streams_per_disk = 32;
    closed_template.requests_per_stream = Some(2);
    let closed = ClientExperiment::builder()
        .template(closed_template)
        .nodes(nodes)
        .policy(seqio_cluster::ShardPolicy::HashByStream)
        .base_seed(2026)
        .link(link)
        .run()
        .expect("closed-loop slo companion");
    let closed_slo = closed.slo.clone().expect("finite streams complete");

    println!(
        "-- slo probe: {} sessions/s open loop, {nodes} nodes, link 250 MiB/s, {} horizon --",
        rate, duration
    );
    println!(
        "  open loop    {:>9} arrived  {:>9} completed ({:.2}%)  {:.1}s wall",
        slo.sessions,
        slo.completed,
        100.0 * slo.completion_ratio(),
        wall
    );
    println!(
        "               p50 {:.2} ms  p95 {:.2} ms  p99 {:.2} ms  p99.9 {:.2} ms  max {:.2} ms",
        slo.p50_ms, slo.p95_ms, slo.p99_ms, slo.p999_ms, slo.max_ms
    );
    println!(
        "  closed loop  {:>9} streams  p50 {:.2} ms  p99.9 {:.2} ms (batch drain, not arrivals)",
        closed_slo.sessions, closed_slo.p50_ms, closed_slo.p999_ms
    );

    // Acceptance bars: the full-scale probe must admit the target session
    // count, nearly all of them must finish inside the 10 s lifetime, and
    // the percentile chain must be coherent.
    assert!(slo.sessions >= target, "only {} sessions admitted, wanted >= {target}", slo.sessions);
    assert!(
        slo.completion_ratio() >= 0.98,
        "completion ratio {:.4} below 0.98",
        slo.completion_ratio()
    );
    assert!(slo.p50_ms <= slo.p95_ms && slo.p95_ms <= slo.p99_ms && slo.p99_ms <= slo.p999_ms);

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"nodes\": {nodes},\n  \"rate_per_sec\": {rate},\n  \
         \"horizon_secs\": {:.3},\n  \"link_mibs\": 250,\n  \
         \"requests_per_session\": 2,\n  \"request_kib\": 64,\n  \
         \"titles\": 8192,\n  \"zipf_exponent\": 0.8,\n  \"diurnal_depth\": 0.3,\n  \
         \"lifetime_secs\": 10,\n  \"wall_secs\": {wall:.3},\n  \
         \"open_loop\": {{\"sessions\": {}, \"completed\": {}, \
         \"completion_ratio\": {:.6}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \
         \"p99_ms\": {:.4}, \"p999_ms\": {:.4}, \"mean_ms\": {:.4}, \"max_ms\": {:.4}, \
         \"aggregate_mbs\": {:.4}}},\n  \
         \"closed_loop\": {{\"sessions\": {}, \"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \
         \"p99_ms\": {:.4}, \"p999_ms\": {:.4}, \"mean_ms\": {:.4}}}\n}}\n",
        duration.as_secs_f64(),
        slo.sessions,
        slo.completed,
        slo.completion_ratio(),
        slo.p50_ms,
        slo.p95_ms,
        slo.p99_ms,
        slo.p999_ms,
        slo.mean_ms,
        slo.max_ms,
        open.total_throughput_mbs(),
        closed_slo.sessions,
        closed_slo.p50_ms,
        closed_slo.p95_ms,
        closed_slo.p99_ms,
        closed_slo.p999_ms,
        closed_slo.mean_ms,
    );

    let dir = seqio_bench::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("slo_probe.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("   -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// Runs the tail-attribution point: the slo probe's open-loop scenario
/// at a reduced default scale with span recording on. The run is
/// correlated into cross-tier session traces, the p99.9 latency band is
/// attributed to its dominant phases, and the SLO burn rate is monitored
/// against the run's own p99. Writes `bench_results/tail_probe.json` and
/// the correlated traces to `bench_results/tail_trace.jsonl`.
fn tail_mode() {
    use seqio_client::{ArrivalConfig, ClientExperiment, LinkConfig, RateModulation};
    use seqio_telemetry::{
        correlate, monitor, parse_percentile, traces_to_jsonl, BurnRateConfig, TailAttribution,
    };

    let target: u64 =
        std::env::var("SEQIO_TAIL_SESSIONS").ok().and_then(|v| v.parse().ok()).unwrap_or(50_000);
    let nodes = 4usize;
    let rate = 1600.0;
    // The slo probe's operating point (same cluster, link, catalogue and
    // diurnal shape) so the attribution describes the figure the SLO
    // numbers come from — just with span recording on and a smaller
    // default horizon, since per-request spans cost memory.
    let duration = SimDuration::from_secs_f64((target as f64 / rate) * 1.05);
    let template = Experiment::builder()
        .shape(NodeShape::eight_disk())
        .request_size(64 * KIB)
        .warmup(SimDuration::ZERO)
        .duration(duration)
        .observe(ObsConfig::new().with_spans())
        .build();
    let arrivals = ArrivalConfig {
        rate_per_sec: rate,
        modulation: RateModulation::Diurnal { period: duration, depth: 0.3 },
        titles: 8192,
        zipf_exponent: 0.8,
        requests_per_session: 2,
        session_lifetime: Some(SimDuration::from_secs(10)),
    };
    let link = LinkConfig { capacity_bps: 250.0 * MIB as f64, ..LinkConfig::default() };

    let xp = ClientExperiment::builder()
        .template(template)
        .nodes(nodes)
        .base_seed(2026)
        .arrivals(arrivals)
        .link(link)
        .build();
    let schedule = xp.session_schedule().expect("valid open-loop config");
    let start = Instant::now();
    let result = xp.run().expect("tail probe point");
    let wall = start.elapsed().as_secs_f64();
    let slo = result.slo.clone().expect("sessions completed");

    let traces = correlate(&result, &schedule);
    let band = parse_percentile("p99.9").expect("static spec");
    let tail = TailAttribution::compute(&traces, band, 1.0).expect("completed sessions");
    let burn = monitor(&traces, &BurnRateConfig::from_slo(&slo), SimDuration::from_millis(100))
        .expect("valid burn config");

    println!(
        "-- tail probe: {rate} sessions/s open loop, {nodes} nodes, link 250 MiB/s, \
         {duration} horizon --"
    );
    println!(
        "  {} arrived, {} completed  p99 {:.2} ms  p99.9 {:.2} ms  {wall:.1}s wall",
        slo.sessions, slo.completed, slo.p99_ms, slo.p999_ms
    );
    print!("{}", tail.to_table());
    println!(
        "  burn rate: {} violation(s) over {:.2} ms, peak fast burn {:.2}x, \
         {} alert transition(s)",
        burn.violations,
        burn.config.threshold.as_millis_f64(),
        burn.peak_fast_burn,
        burn.alerts.len()
    );

    // Acceptance bars: the shares form a distribution over the whole
    // band, and the derived telemetry agrees with the client tier.
    assert!(
        (tail.share_sum_pct() - 100.0).abs() < 1e-6,
        "tail shares sum to {:.9}%, not 100%",
        tail.share_sum_pct()
    );
    assert_eq!(tail.completed as u64, slo.completed, "attribution lost completed sessions");
    assert_eq!(burn.completed, slo.completed, "burn monitor lost completed sessions");

    let dir = seqio_bench::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let trace_path = dir.join("tail_trace.jsonl");
    match std::fs::write(&trace_path, traces_to_jsonl(&traces)) {
        Ok(()) => println!("   -> {} ({} traces)", trace_path.display(), traces.len()),
        Err(e) => eprintln!("warning: could not write {}: {e}", trace_path.display()),
    }

    let mut json = String::from("{\n");
    let _ = write!(
        json,
        "  \"nodes\": {nodes},\n  \"rate_per_sec\": {rate},\n  \
         \"horizon_secs\": {:.3},\n  \"link_mibs\": 250,\n  \"band\": \"p99.9\",\n  \
         \"sessions\": {},\n  \"completed\": {},\n  \"wall_secs\": {wall:.3},\n  \
         \"attribution\": {},\n  \
         \"burn\": {{\"threshold_ms\": {:.4}, \"target\": {}, \"violations\": {}, \
         \"peak_fast_burn\": {:.4}, \"alerts\": {}}}\n}}\n",
        duration.as_secs_f64(),
        slo.sessions,
        slo.completed,
        tail.to_json(),
        burn.config.threshold.as_millis_f64(),
        burn.config.target,
        burn.violations,
        burn.peak_fast_burn,
        burn.alerts.len()
    );
    let path = dir.join("tail_probe.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("   -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

/// `probe scenario`: the scenario experiment matrix at the quick scale —
/// every named scenario under the direct frontend, the static candidate
/// panel, the over-wide reference tune and the adaptive tuner — plus the
/// degraded-rescue point. Asserts the issue's acceptance bars (adaptive
/// matches or beats the best static candidate on every scenario; the
/// rescue strictly wins) and writes `bench_results/scenario_probe.json`.
fn scenario_mode() {
    use seqio_scenario::{degraded_rescue, run_matrix, MatrixScale};

    let scale = MatrixScale::quick();
    let seed = 11;
    let start = Instant::now();
    let rows = run_matrix(&scale, seed).expect("the scenario matrix runs");
    let rescue = degraded_rescue(&scale, seed).expect("the rescue point runs");
    let wall = start.elapsed().as_secs_f64();

    println!("-- scenario matrix: quick scale, seed {seed}, {wall:.2}s wall --");
    println!(
        "  {:<13} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "scenario", "direct", "auto", "default", "wide", "adaptive", "retunes"
    );
    for r in &rows {
        let cell = |name: &str| {
            r.statics.iter().find(|s| s.name == name).expect("candidate panel is fixed").mbs
        };
        println!(
            "  {:<13} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>8}",
            r.scenario,
            r.direct_mbs,
            cell("auto"),
            cell("default"),
            r.wide_mbs,
            r.adaptive_mbs,
            r.retunes
        );
    }
    let (rescue_static, rescue_adaptive, rescue_retunes) = rescue;
    println!(
        "  degraded rescue (narrow D=4 tune): static {rescue_static:.2} MB/s -> adaptive \
         {rescue_adaptive:.2} MB/s ({rescue_retunes} retune(s))"
    );

    // Acceptance bars — the same ones the scenario matrix test pins.
    for r in &rows {
        let best = r.best_static();
        assert!(
            r.adaptive_mbs >= best.mbs,
            "{}: adaptive {:.2} MB/s lost to static {} {:.2} MB/s",
            r.scenario,
            r.adaptive_mbs,
            best.name,
            best.mbs
        );
    }
    assert!(
        rescue_adaptive > rescue_static && rescue_retunes >= 1,
        "degraded rescue did not strictly win: {rescue_static:.2} -> {rescue_adaptive:.2} \
         with {rescue_retunes} retune(s)"
    );

    let mut json = String::from("{\n  \"scale\": \"quick\",\n");
    let _ = write!(json, "  \"seed\": {seed},\n  \"wall_secs\": {wall:.3},\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"scenario\": \"{}\", \"direct_mbs\": {:.4}",
            r.scenario, r.direct_mbs
        );
        for s in &r.statics {
            let _ = write!(json, ", \"{}_mbs\": {:.4}", s.name, s.mbs);
        }
        let _ = writeln!(
            json,
            ", \"wide_mbs\": {:.4}, \"adaptive_mbs\": {:.4}, \"retunes\": {}}}{}",
            r.wide_mbs,
            r.adaptive_mbs,
            r.retunes,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"degraded_rescue\": {{\"static_mbs\": {rescue_static:.4}, \
         \"adaptive_mbs\": {rescue_adaptive:.4}, \"retunes\": {rescue_retunes}}}\n}}\n"
    );
    let dir = seqio_bench::results_dir();
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join("scenario_probe.json");
    match std::fs::write(&path, json) {
        Ok(()) => println!("   -> {}", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("perf") => {
            perf_mode();
            return;
        }
        Some("faults") => {
            faults_mode();
            return;
        }
        Some("timeline") => {
            timeline_mode();
            return;
        }
        Some("cluster") => {
            cluster_mode();
            return;
        }
        Some("migrate") => {
            migrate_mode();
            return;
        }
        Some("slo") => {
            slo_mode();
            return;
        }
        Some("tail") => {
            tail_mode();
            return;
        }
        Some("scenario") => {
            scenario_mode();
            return;
        }
        _ => {}
    }
    let w = SimDuration::from_secs(6);
    let d = SimDuration::from_secs(6);

    println!("-- direct path, single disk, 64K requests (Fig 4/5 flavour) --");
    for s in [1usize, 10, 30, 100] {
        let r = Experiment::builder().streams_per_disk(s).warmup(w).duration(d).build().run();
        println!(
            "  S={s:<4} {:>7.2} MB/s  mean resp {:.2} ms",
            r.total_throughput_mbs(),
            r.mean_response_ms()
        );
    }

    println!("-- direct, segment == request (no disk prefetch, Fig 4) --");
    for s in [1usize, 10, 30, 100] {
        let mut shape = NodeShape::single_disk();
        shape.disk.cache =
            CacheConfig { segment_count: 128, segment_bytes: 64 * KIB, read_ahead_bytes: 64 * KIB };
        let r = Experiment::builder()
            .shape(shape)
            .streams_per_disk(s)
            .warmup(w)
            .duration(d)
            .build()
            .run();
        println!("  S={s:<4} {:>7.2} MB/s", r.total_throughput_mbs());
    }

    println!("-- stream scheduler, all dispatched (Fig 10) --");
    for s in [10usize, 30, 100] {
        for ra in [128 * KIB, 512 * KIB, 2 * MIB, 8 * MIB] {
            let r = Experiment::builder()
                .streams_per_disk(s)
                .frontend(Frontend::stream_scheduler_with_readahead(ra))
                .warmup(w)
                .duration(d)
                .build()
                .run();
            println!(
                "  S={s:<4} R={:<5} {:>7.2} MB/s resp {:.1} ms",
                ra / KIB,
                r.total_throughput_mbs(),
                r.mean_response_ms()
            );
        }
    }

    println!("-- small dispatch set (Fig 14): D=1, N=128, R=512K --");
    for s in [10usize, 30, 100] {
        let cfg = ServerConfig::small_dispatch(1, 512 * KIB, 128);
        let r = Experiment::builder()
            .streams_per_disk(s)
            .frontend(Frontend::StreamScheduler(cfg))
            .warmup(w)
            .duration(d)
            .build()
            .run();
        println!("  S={s:<4} {:>7.2} MB/s", r.total_throughput_mbs());
    }

    println!("-- 8 disks, D=S (Fig 12) vs D=8,N=128 (Fig 13) at R=512K --");
    for s in [10usize, 100] {
        let r = Experiment::builder()
            .shape(NodeShape::eight_disk())
            .streams_per_disk(s)
            .frontend(Frontend::stream_scheduler_with_readahead(512 * KIB))
            .warmup(w)
            .duration(d)
            .build()
            .run();
        println!("  D=S  S/disk={s:<4} {:>8.2} MB/s", r.total_throughput_mbs());
        let cfg = ServerConfig::small_dispatch(8, 512 * KIB, 128);
        let r = Experiment::builder()
            .shape(NodeShape::eight_disk())
            .streams_per_disk(s)
            .frontend(Frontend::StreamScheduler(cfg))
            .warmup(w)
            .duration(d)
            .build()
            .run();
        println!("  D=8  S/disk={s:<4} {:>8.2} MB/s", r.total_throughput_mbs());
    }

    println!("-- Linux schedulers, 4K reads (Fig 2) --");
    for kind in [SchedKind::Anticipatory, SchedKind::Cfq, SchedKind::Noop] {
        for s in [1usize, 16, 64, 256] {
            let r = Experiment::builder()
                .streams_per_disk(s)
                .request_size(4 * KIB)
                .frontend(Frontend::Linux {
                    scheduler: kind,
                    readahead: ReadaheadConfig::default(),
                })
                .costs(CostModel::local_xdd())
                .warmup(w)
                .duration(d)
                .build()
                .run();
            println!("  {:<13} S={s:<4} {:>7.2} MB/s", kind.name(), r.total_throughput_mbs());
        }
    }
}
