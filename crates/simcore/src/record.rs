//! Shared text-record grammar: `;`-separated clauses of `kind:key=value,...`
//! pairs, the deterministic hand-rolled format used by the CLI `--faults`
//! spec and the scenario trace files.
//!
//! The grammar is deliberately tiny — no quoting, no escapes — so that a
//! serialized record round-trips bit-identically through
//! serialize → parse → serialize, and every parse error can name the
//! offending token and the clause it sits in rather than echoing the whole
//! input back.
//!
//! # Examples
//!
//! ```
//! use seqio_simcore::{ClauseFields, SimDuration};
//!
//! let mut f = ClauseFields::parse("demo", "tick", "at=5ms,count=3").unwrap();
//! assert_eq!(f.duration_or("at", SimDuration::ZERO).unwrap(), SimDuration::from_millis(5));
//! assert_eq!(f.u64_field("count", "a count").unwrap(), 3);
//! f.finish().unwrap(); // no unknown fields left
//! ```

use crate::error::SeqioError;
use crate::time::SimDuration;

/// `key=value` field list for one spec clause. Every error names the
/// offending token and the clause it sits in, never the whole spec.
#[derive(Debug)]
pub struct ClauseFields {
    component: &'static str,
    kind: String,
    pairs: Vec<(String, String)>,
}

impl ClauseFields {
    /// Splits `rest` (the text after `kind:`) into `key=value` pairs.
    ///
    /// # Errors
    ///
    /// Returns a plain reason string (for the caller to wrap into its
    /// component error) when a field is not of the form `key=value`.
    pub fn parse(component: &'static str, kind: &str, rest: &str) -> Result<ClauseFields, String> {
        let mut pairs = Vec::new();
        for pair in rest.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| format!("field `{pair}` in `{kind}` clause is not `key=value`"))?;
            pairs.push((k.trim().to_string(), v.trim().to_string()));
        }
        Ok(ClauseFields { component, kind: kind.to_string(), pairs })
    }

    /// Wraps `reason` into this component's error, naming the clause.
    pub fn fail(&self, reason: String) -> SeqioError {
        SeqioError::Component {
            component: self.component,
            reason: format!("{reason} in `{}` clause", self.kind),
        }
    }

    /// Removes and returns `key`'s value, if present.
    pub fn take(&mut self, key: &str) -> Option<String> {
        let i = self.pairs.iter().position(|(k, _)| k == key)?;
        Some(self.pairs.remove(i).1)
    }

    /// Removes and returns `key`'s value.
    ///
    /// # Errors
    ///
    /// Names the missing field and its clause.
    pub fn required(&mut self, key: &str) -> Result<String, SeqioError> {
        self.take(key).ok_or_else(|| SeqioError::Component {
            component: self.component,
            reason: format!("`{}` clause is missing required field `{key}`", self.kind),
        })
    }

    /// Parses `key` as a `usize`, describing the expected value as `what`
    /// (e.g. `"a disk index"`) on failure.
    ///
    /// # Errors
    ///
    /// Names the offending `key=value` token.
    pub fn usize_field(&mut self, key: &str, what: &str) -> Result<usize, SeqioError> {
        let v = self.required(key)?;
        v.parse().map_err(|_| self.fail(format!("`{key}={v}` is not {what}")))
    }

    /// Parses `key` as a `u64`, describing the expected value as `what`
    /// (e.g. `"a block count"`) on failure.
    ///
    /// # Errors
    ///
    /// Names the offending `key=value` token.
    pub fn u64_field(&mut self, key: &str, what: &str) -> Result<u64, SeqioError> {
        let v = self.required(key)?;
        v.parse().map_err(|_| self.fail(format!("`{key}={v}` is not {what}")))
    }

    /// Parses `key` as an `f64`.
    ///
    /// # Errors
    ///
    /// Names the offending `key=value` token.
    pub fn float(&mut self, key: &str) -> Result<f64, SeqioError> {
        let v = self.required(key)?;
        v.parse().map_err(|_| self.fail(format!("`{key}={v}` is not a number")))
    }

    /// Parses `key` as a duration, or returns `default` when absent.
    ///
    /// # Errors
    ///
    /// Names the offending `key=value` token.
    pub fn duration_or(
        &mut self,
        key: &str,
        default: SimDuration,
    ) -> Result<SimDuration, SeqioError> {
        match self.take(key) {
            Some(v) => {
                parse_duration(&v).map_err(|reason| self.fail(format!("`{key}={v}`: {reason}")))
            }
            None => Ok(default),
        }
    }

    /// Parses `key` as a duration when present.
    ///
    /// # Errors
    ///
    /// Names the offending `key=value` token.
    pub fn optional_duration(&mut self, key: &str) -> Result<Option<SimDuration>, SeqioError> {
        match self.take(key) {
            Some(v) => parse_duration(&v)
                .map(Some)
                .map_err(|reason| self.fail(format!("`{key}={v}`: {reason}"))),
            None => Ok(None),
        }
    }

    /// Rejects any field the clause handler did not consume, naming it.
    ///
    /// # Errors
    ///
    /// Names the first unknown field and its clause.
    pub fn finish(self) -> Result<(), SeqioError> {
        match self.pairs.first() {
            None => Ok(()),
            Some((k, _)) => {
                let reason = format!("unknown field `{k}`");
                Err(self.fail(reason))
            }
        }
    }
}

/// Parses a duration with an `ns`/`us`/`ms`/`s` suffix; a bare number is
/// seconds.
///
/// # Errors
///
/// Returns a reason string naming the offending token.
pub fn parse_duration(s: &str) -> Result<SimDuration, String> {
    let s = s.trim();
    let (num, nanos_per_unit) = if let Some(n) = s.strip_suffix("ns") {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1e3)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1e6)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1e9)
    } else {
        (s, 1e9)
    };
    let v: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("`{s}` is not a duration (expected e.g. `500us`, `5ms`, `2s`)"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("duration `{s}` must be non-negative"));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    Ok(SimDuration::from_nanos((v * nanos_per_unit).round() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_round_trip_and_reject_unknown() {
        let mut f = ClauseFields::parse("demo", "op", "a=1, b = two ,c=3.5").unwrap();
        assert_eq!(f.u64_field("a", "a count").unwrap(), 1);
        assert_eq!(f.take("b").as_deref(), Some("two"));
        assert!((f.float("c").unwrap() - 3.5).abs() < 1e-12);
        f.finish().unwrap();

        let mut f = ClauseFields::parse("demo", "op", "a=1,stray=9").unwrap();
        let _ = f.take("a");
        let e = f.finish().unwrap_err().to_string();
        assert!(e.contains("unknown field `stray`"), "{e}");
        assert!(e.contains("`op` clause"), "{e}");
    }

    #[test]
    fn errors_carry_the_component_name() {
        let mut f = ClauseFields::parse("scenario", "inject", "disk=zero").unwrap();
        let e = f.usize_field("disk", "a disk index").unwrap_err().to_string();
        assert!(e.contains("scenario"), "{e}");
        assert!(e.contains("`disk=zero`"), "{e}");
    }

    #[test]
    fn not_key_value_is_reported() {
        let e = ClauseFields::parse("demo", "op", "a=1,b 2").unwrap_err();
        assert!(e.contains("`b 2`"), "{e}");
        assert!(e.contains("`op` clause"), "{e}");
    }
}
