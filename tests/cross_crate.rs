//! Cross-crate integration: conservation, determinism and plumbing checks
//! spanning workload -> node -> core -> controller -> disk.

use seqio::core::ServerConfig;
use seqio::hostsched::{ReadaheadConfig, SchedKind};
use seqio::node::{CostModel, Experiment, Frontend, NodeShape, Placement};
use seqio::simcore::units::{GIB, KIB, MIB};
use seqio::simcore::SimDuration;

/// Finite workloads complete exactly once per request, on every front end.
#[test]
fn conservation_across_frontends() {
    let frontends: Vec<(&str, Frontend)> = vec![
        ("direct", Frontend::Direct),
        ("stream", Frontend::stream_scheduler_with_readahead(MIB)),
        (
            "linux",
            Frontend::Linux {
                scheduler: SchedKind::Anticipatory,
                readahead: ReadaheadConfig::default(),
            },
        ),
    ];
    for (name, fe) in frontends {
        let r = Experiment::builder()
            .streams_per_disk(6)
            .requests_per_stream(40)
            .frontend(fe)
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(60))
            .seed(11)
            .run();
        assert_eq!(r.requests_completed, 240, "{name}: every request completes exactly once");
        assert_eq!(r.bytes_delivered, 240 * 64 * KIB, "{name}: bytes conserved");
    }
}

/// Identical seeds give identical results; different seeds differ.
#[test]
fn determinism_and_seed_sensitivity() {
    let run = |seed: u64| {
        Experiment::builder()
            .streams_per_disk(20)
            .warmup(SimDuration::from_millis(300))
            .duration(SimDuration::from_secs(1))
            .seed(seed)
            .run()
    };
    let a = run(7);
    let b = run(7);
    let c = run(8);
    assert_eq!(a.bytes_delivered, b.bytes_delivered);
    assert_eq!(a.requests_completed, b.requests_completed);
    assert_eq!(a.disk_seeks, b.disk_seeks);
    // A different seed must change observable behavior somewhere; which
    // aggregate moves depends on the RNG stream, so accept any of them.
    assert!(
        a.bytes_delivered != c.bytes_delivered
            || a.per_stream_mbs != c.per_stream_mbs
            || a.disk_seeks != c.disk_seeks,
        "different seed, different run"
    );
}

/// Multi-controller topologies route requests to the right disks.
#[test]
fn sixty_disk_topology_routes_everywhere() {
    let r = Experiment::builder()
        .shape(NodeShape::sixty_disk())
        .streams_per_disk(1)
        .warmup(SimDuration::from_millis(500))
        .duration(SimDuration::from_secs(1))
        .seed(12)
        .run();
    assert_eq!(r.disk_seeks.len(), 60);
    assert_eq!(r.per_stream_mbs.len(), 60);
    // Every disk served I/O.
    assert!(r.disk_ops.iter().all(|&n| n > 0), "some disk never worked: {:?}", r.disk_ops);
    assert!(r.total_throughput_mbs() > 500.0);
}

/// Interval placement (the Figure 5 layout) runs and respects spacing.
#[test]
fn interval_placement_runs() {
    let r = Experiment::builder()
        .streams_per_disk(10)
        .placement(Placement::Interval(GIB))
        .requests_per_stream(20)
        .warmup(SimDuration::ZERO)
        .duration(SimDuration::from_secs(30))
        .seed(13)
        .run();
    assert_eq!(r.requests_completed, 200);
}

/// The Linux front end works with every scheduler policy.
#[test]
fn all_linux_schedulers_run() {
    for k in [SchedKind::Noop, SchedKind::Deadline, SchedKind::Cfq, SchedKind::Anticipatory] {
        let r = Experiment::builder()
            .streams_per_disk(4)
            .request_size(4 * KIB)
            .requests_per_stream(200)
            .frontend(Frontend::Linux { scheduler: k, readahead: ReadaheadConfig::default() })
            .costs(CostModel::local_xdd())
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(30))
            .seed(14)
            .run();
        assert_eq!(r.requests_completed, 800, "{} completes the workload", k.name());
    }
}

/// Stream-scheduler metrics are consistent with delivery accounting.
#[test]
fn scheduler_metrics_consistency() {
    let cfg = ServerConfig::all_dispatched(30, MIB);
    let r = Experiment::builder()
        .streams_per_disk(30)
        .requests_per_stream(60)
        .frontend(Frontend::StreamScheduler(cfg))
        .warmup(SimDuration::ZERO)
        .duration(SimDuration::from_secs(60))
        .seed(15)
        .run();
    let m = r.server_metrics.expect("metrics available");
    assert_eq!(m.client_requests, 1800);
    assert_eq!(m.completions, 1800);
    assert_eq!(
        m.memory_hits + m.direct_requests,
        m.completions,
        "every completion is either a memory hit or a direct request"
    );
    assert_eq!(m.streams_detected, 30);
    assert!(m.admissions >= 30);
}

/// Larger client requests shift work from many small ops to fewer large
/// ones without losing bytes.
#[test]
fn request_size_sweep_conserves_bytes() {
    for req in [16 * KIB, 64 * KIB, 256 * KIB] {
        let r = Experiment::builder()
            .streams_per_disk(4)
            .request_size(req)
            .requests_per_stream(32)
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(60))
            .seed(16)
            .run();
        assert_eq!(r.bytes_delivered, 4 * 32 * req, "request size {req}");
    }
}
