//! Scenario matrix — every named workload scenario compared across the
//! direct path, the best static scheduler tune, the over-wide reference
//! tune and the adaptive tuner.
//!
//! Not a paper figure: this is the repo's own experiment matrix for the
//! scenario engine. The scheduler-vs-direct bars echo the paper's core
//! claim (a stream-aware scheduler restores sequential throughput under
//! many-stream interference) scenario by scenario; the adaptive column
//! shows the epoch feedback controller matching the best static tune
//! everywhere and beating it where widening the dispatch set helps
//! (video-style segment churn).

use seqio_bench::{quick_mode, Figure, Series};
use seqio_scenario::{degraded_rescue, run_matrix, MatrixScale};

fn main() {
    let scale = if quick_mode() { MatrixScale::quick() } else { MatrixScale::full() };
    let seed = 11;
    let rows = run_matrix(&scale, seed).expect("the scenario matrix runs");

    let mut fig = Figure::new(
        "Scenario matrix",
        "Named scenarios: direct vs static tunes vs adaptive (8 disks)",
        "Scenario",
        "Throughput (MBytes/s)",
    );
    let mut direct = Series::new("Direct");
    let mut best_static = Series::new("Best static");
    let mut wide = Series::new("Wide reference");
    let mut adaptive = Series::new("Adaptive");
    for r in &rows {
        direct.push(r.scenario, r.direct_mbs);
        best_static.push(r.scenario, r.best_static().mbs);
        wide.push(r.scenario, r.wide_mbs);
        adaptive.push(r.scenario, r.adaptive_mbs);
    }
    fig.add(direct);
    fig.add(best_static);
    fig.add(wide);
    fig.add(adaptive);
    fig.report("scenario_matrix");

    // Shape checks mirroring the matrix test: adaptive never loses to the
    // static candidate panel, and the degraded-rescue point strictly wins.
    for r in &rows {
        assert!(
            r.adaptive_mbs >= r.best_static().mbs,
            "{}: adaptive {:.2} MB/s lost to static {:.2} MB/s",
            r.scenario,
            r.adaptive_mbs,
            r.best_static().mbs
        );
    }
    let (static_mbs, adaptive_mbs, retunes) =
        degraded_rescue(&scale, seed).expect("the rescue point runs");
    assert!(
        adaptive_mbs > static_mbs && retunes >= 1,
        "degraded rescue did not strictly win: {static_mbs:.2} -> {adaptive_mbs:.2}"
    );
    println!(
        "shape ok: adaptive >= best static on all {} scenarios; rescue {:.2} -> {:.2} MB/s",
        rows.len(),
        static_mbs,
        adaptive_mbs
    );
}
