//! Statistical sanity for the session generators at a fixed seed, plus
//! the regression guard keeping the session RNG stream disjoint from
//! every storage-side seed derivation.

use seqio_client::{
    generate_sessions, ArrivalConfig, ArrivalProcess, RateModulation, ZipfSampler,
    SESSION_SEED_INDEX,
};
use seqio_node::sweep::derive_seed;
use seqio_simcore::{SimDuration, SimRng};

/// Poisson arrivals at a fixed seed: the empirical inter-arrival mean
/// over a long horizon lands within 5 standard errors of `1 / rate`.
#[test]
fn poisson_interarrival_mean_matches_the_rate() {
    let rate = 250.0;
    let horizon = SimDuration::from_secs(400);
    let mut process =
        ArrivalProcess::new(rate, RateModulation::Constant, horizon, SimRng::seed_from(17))
            .unwrap();
    let mut arrivals = Vec::new();
    while let Some(t) = process.next_arrival() {
        arrivals.push(t);
    }
    let n = arrivals.len() as f64;
    // Count check: N ~ Poisson(rate * horizon), sd = sqrt(mean).
    let expected = rate * 400.0;
    assert!(
        (n - expected).abs() < 5.0 * expected.sqrt(),
        "saw {n} arrivals, expected {expected} +/- {}",
        5.0 * expected.sqrt()
    );
    // Inter-arrival mean check: exponential with mean 1/rate, sd 1/rate,
    // so the sample mean has standard error 1/(rate * sqrt(n)).
    let gaps: Vec<f64> =
        arrivals.windows(2).map(|w| w[1].duration_since(w[0]).as_secs_f64()).collect();
    let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
    let se = 1.0 / (rate * (gaps.len() as f64).sqrt());
    assert!(
        (mean - 1.0 / rate).abs() < 5.0 * se,
        "inter-arrival mean {mean} strays from {} by more than 5 SE ({se})",
        1.0 / rate
    );
}

/// Zipf sampling at a fixed seed: regressing log-frequency on log-rank
/// over the well-populated head recovers the configured exponent.
#[test]
fn zipf_rank_frequency_slope_matches_the_exponent() {
    let exponent = 1.0;
    let titles = 512;
    let zipf = ZipfSampler::new(titles, exponent).unwrap();
    let mut rng = SimRng::seed_from(23);
    let mut counts = vec![0u64; titles];
    let draws = 400_000;
    for _ in 0..draws {
        counts[zipf.sample(&mut rng)] += 1;
    }
    // Ranks 0..32 each expect >= draws * p(32) ~ thousands of hits; the
    // tail is too sparse for a stable per-rank frequency.
    let head = 32;
    let points: Vec<(f64, f64)> = counts[..head]
        .iter()
        .enumerate()
        .map(|(k, &c)| (((k + 1) as f64).ln(), (c as f64 / draws as f64).ln()))
        .collect();
    let n = points.len() as f64;
    let (sx, sy) = points.iter().fold((0.0, 0.0), |(a, b), &(x, y)| (a + x, b + y));
    let (sxx, sxy) = points.iter().fold((0.0, 0.0), |(a, b), &(x, y)| (a + x * x, b + x * y));
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    assert!((slope + exponent).abs() < 0.05, "log-log slope {slope} should be about -{exponent}");
}

/// A modulated process hits its analytic volume: bursty modulation runs
/// at `on_factor` for the duty fraction of each period and at the base
/// rate otherwise, so total arrivals track the time-averaged factor.
#[test]
fn bursty_modulation_preserves_the_average_rate() {
    let rate = 200.0;
    let (duty, on_factor) = (0.5, 1.6);
    let horizon = SimDuration::from_secs(200);
    let modulation = RateModulation::Bursty { period: SimDuration::from_secs(4), duty, on_factor };
    let mut process =
        ArrivalProcess::new(rate, modulation, horizon, SimRng::seed_from(31)).unwrap();
    let mut n = 0.0;
    while process.next_arrival().is_some() {
        n += 1.0;
    }
    let expected = rate * 200.0 * (duty * on_factor + (1.0 - duty));
    assert!(
        (n - expected).abs() < 6.0 * expected.sqrt(),
        "bursty run saw {n} arrivals, expected about {expected}"
    );
}

/// Regression guard: the dedicated session seed index maps to a seed
/// stream disjoint from every storage-side derivation — per-node seeds
/// (`derive_seed(base, k)`), each disk's rotational-phase seed, and each
/// disk's fault-injection seed. A collision would couple the user
/// population to storage randomness and silently change results when one
/// side's draw count shifts.
#[test]
fn seed_streams_stay_independent() {
    for base in [0u64, 1, 42, 0xDEAD_BEEF, u64::MAX] {
        let session_seed = derive_seed(base, SESSION_SEED_INDEX);
        let mut seen = std::collections::HashSet::new();
        assert!(seen.insert(session_seed));
        for k in 0..4096usize {
            let node_seed = derive_seed(base, k);
            assert_ne!(session_seed, node_seed, "collides with node {k} seed (base {base})");
            assert!(seen.insert(node_seed), "node seeds collide among themselves");
            for disk in 0..64u64 {
                // The exact derivations the node simulation applies per
                // disk (see seqio-node system construction).
                let rotational = node_seed ^ (disk << 8) | 1;
                let fault = node_seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (disk + 1);
                assert_ne!(session_seed, rotational, "collides with a rotational-phase seed");
                assert_ne!(session_seed, fault, "collides with a fault seed");
            }
        }
    }
}

/// The schedule feeding the driver inherits all of the above: a fixed
/// seed yields the same population whichever storage seeds are in play.
#[test]
fn session_schedule_ignores_storage_seed_churn() {
    let cfg = ArrivalConfig { rate_per_sec: 150.0, titles: 128, ..ArrivalConfig::default() };
    let horizon = SimDuration::from_secs(3);
    let seed = derive_seed(7, SESSION_SEED_INDEX);
    let a = generate_sessions(&cfg, 4, 1, 128, 1 << 22, horizon, seed).unwrap();
    let b = generate_sessions(&cfg, 4, 1, 128, 1 << 22, horizon, seed).unwrap();
    assert_eq!(a, b);
    assert!(a.len() > 300, "3 s at 150/s should net hundreds of sessions, got {}", a.len());
}
