//! Completely Fair Queueing (the 2.6.11-era variant).
//!
//! One queue per process, served round-robin with a per-turn request
//! quantum. This CFQ generation has no idling (that arrived with the later
//! time-sliced rewrite), which is why the paper's Figure 2 shows it between
//! noop and anticipatory for many sequential readers.

use std::collections::{HashMap, VecDeque};

use seqio_simcore::SimTime;

use crate::scheduler::{BlockRequest, IoScheduler, SchedDecision};

/// Round-robin fair queueing scheduler.
#[derive(Debug)]
pub struct Cfq {
    queues: HashMap<usize, VecDeque<BlockRequest>>,
    /// Round-robin order of processes with queued requests.
    rr: VecDeque<usize>,
    /// Requests the active process may still dispatch this turn.
    quantum: u32,
    remaining: u32,
    active: Option<usize>,
    queued: usize,
}

impl Cfq {
    /// Creates a CFQ scheduler dispatching up to `quantum` requests per
    /// process turn.
    ///
    /// # Panics
    ///
    /// Panics if `quantum == 0`.
    pub fn new(quantum: u32) -> Self {
        assert!(quantum > 0, "quantum must be positive");
        Cfq {
            queues: HashMap::new(),
            rr: VecDeque::new(),
            quantum,
            remaining: 0,
            active: None,
            queued: 0,
        }
    }

    fn rotate(&mut self) -> Option<usize> {
        while let Some(p) = self.rr.pop_front() {
            if self.queues.get(&p).map(|q| !q.is_empty()).unwrap_or(false) {
                self.active = Some(p);
                self.remaining = self.quantum;
                return Some(p);
            }
        }
        self.active = None;
        None
    }
}

impl IoScheduler for Cfq {
    fn add(&mut self, req: BlockRequest, _now: SimTime) {
        let p = req.process;
        let q = self.queues.entry(p).or_default();
        let was_empty = q.is_empty();
        q.push_back(req);
        self.queued += 1;
        if was_empty && self.active != Some(p) && !self.rr.contains(&p) {
            self.rr.push_back(p);
        }
    }

    fn next(&mut self, _now: SimTime) -> SchedDecision {
        // Stay with the active process while it has quantum and requests.
        let p = match self.active {
            Some(p)
                if self.remaining > 0
                    && self.queues.get(&p).map(|q| !q.is_empty()).unwrap_or(false) =>
            {
                p
            }
            _ => {
                // Requeue the outgoing process if it still has work.
                if let Some(p) = self.active {
                    if self.queues.get(&p).map(|q| !q.is_empty()).unwrap_or(false)
                        && !self.rr.contains(&p)
                    {
                        self.rr.push_back(p);
                    }
                }
                match self.rotate() {
                    Some(p) => p,
                    None => return SchedDecision::Idle,
                }
            }
        };
        let q = self.queues.get_mut(&p).expect("active queue exists");
        let r = q.pop_front().expect("non-empty by selection");
        self.queued -= 1;
        self.remaining -= 1;
        SchedDecision::Dispatch(r)
    }

    fn on_complete(&mut self, _process: usize, _now: SimTime) {}

    fn queued(&self) -> usize {
        self.queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, process: usize, lba: u64) -> BlockRequest {
        BlockRequest { id, process, lba, blocks: 8 }
    }

    fn t() -> SimTime {
        SimTime::ZERO
    }

    fn drain(s: &mut Cfq, n: usize) -> Vec<(usize, u64)> {
        (0..n)
            .map(|_| match s.next(t()) {
                SchedDecision::Dispatch(r) => (r.process, r.id),
                other => panic!("{other:?}"),
            })
            .collect()
    }

    #[test]
    fn round_robin_across_processes() {
        let mut s = Cfq::new(1);
        for p in 0..3usize {
            for i in 0..2u64 {
                s.add(req(p as u64 * 10 + i, p, i * 8), t());
            }
        }
        let order = drain(&mut s, 6);
        let procs: Vec<usize> = order.iter().map(|&(p, _)| p).collect();
        assert_eq!(procs, vec![0, 1, 2, 0, 1, 2]);
        assert_eq!(s.next(t()), SchedDecision::Idle);
    }

    #[test]
    fn quantum_gives_consecutive_turns() {
        let mut s = Cfq::new(3);
        for p in 0..2usize {
            for i in 0..3u64 {
                s.add(req(p as u64 * 10 + i, p, i * 8), t());
            }
        }
        let order = drain(&mut s, 6);
        let procs: Vec<usize> = order.iter().map(|&(p, _)| p).collect();
        assert_eq!(procs, vec![0, 0, 0, 1, 1, 1]);
    }

    #[test]
    fn within_process_order_is_fifo() {
        let mut s = Cfq::new(8);
        s.add(req(1, 0, 800), t());
        s.add(req(2, 0, 0), t());
        let order = drain(&mut s, 2);
        assert_eq!(order, vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn late_arrivals_join_fairly() {
        let mut s = Cfq::new(1);
        s.add(req(1, 0, 0), t());
        assert!(matches!(s.next(t()), SchedDecision::Dispatch(r) if r.id == 1));
        // Process 1 arrives while 0's queue is empty.
        s.add(req(2, 1, 100), t());
        s.add(req(3, 0, 8), t());
        let order = drain(&mut s, 2);
        let procs: Vec<usize> = order.iter().map(|&(p, _)| p).collect();
        assert_eq!(procs, vec![1, 0]);
    }

    #[test]
    fn queued_counts() {
        let mut s = Cfq::new(2);
        assert_eq!(s.queued(), 0);
        s.add(req(1, 0, 0), t());
        s.add(req(2, 1, 0), t());
        assert_eq!(s.queued(), 2);
        let _ = s.next(t());
        assert_eq!(s.queued(), 1);
    }
}
