//! Cluster composition: per-node experiment construction, shared-clock
//! co-simulation with optional mid-run rebalancing, and result merging.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use seqio_node::sweep::{derive_seed, resolve_jobs};
use seqio_node::{Experiment, NodeSim, RunResult};
use seqio_simcore::{FaultPlan, LatencyHistogram, MetricSeries, SeqioError, SimDuration, SimTime};

use crate::rebalance::{MigratableStream, MigrationRecord, NodeView, RebalanceConfig, Rebalancer};
use crate::router::{NodeHealth, Router, ShardPolicy};

/// A multi-node cluster experiment: `K` copies of a per-node
/// [`Experiment`] template behind a front-end [`Router`].
///
/// The client population is `K * template.total_streams()` global
/// streams. The router assigns each global stream to a node before
/// anything runs; each node then becomes a steppable [`NodeSim`]
/// component, and one shared-clock driver advances every node in
/// deterministic lockstep epochs before merging the per-node
/// [`RunResult`]s into one [`ClusterResult`].
///
/// With [`rebalance`](ClusterExperimentBuilder::rebalance) set, a
/// cluster-level [`Rebalancer`] inspects every node's health at each
/// epoch boundary and migrates live streams off disks degraded past the
/// rotate threshold, mid-run. Decisions derive only from the shared
/// clock and the seeds, so results stay bit-identical at any
/// `SEQIO_JOBS` count; without a rebalancer the per-node simulations are
/// bit-identical to running each node standalone.
///
/// All three in-tree disciplines carry over: node epochs are advanced by
/// a worker pool sized like the sweep pool and stay bit-identical at any
/// worker count; faults are opt-in per node; observability is opt-in via
/// the template's `ObsConfig` and never perturbs results.
#[derive(Debug, Clone)]
pub struct ClusterExperiment {
    /// Per-node experiment template (shape, workload, frontend, clock).
    pub template: Experiment,
    /// Number of storage nodes `K`.
    pub nodes: usize,
    /// Stream sharding policy.
    pub policy: ShardPolicy,
    /// Per-node fault plans (`None` entries are healthy nodes). The
    /// template's own `faults` field must stay empty — cluster faults
    /// are always per node.
    pub node_faults: Vec<Option<FaultPlan>>,
    /// When set, node `k` runs with seed [`derive_seed`]`(base, k)`;
    /// when `None`, every node keeps the template seed (used by the
    /// 1-node equivalence oracle).
    pub base_seed: Option<u64>,
    /// Worker override for the fan-out (`None` = `SEQIO_JOBS`, then
    /// available parallelism).
    pub jobs: Option<usize>,
    /// Degraded threshold the straggler-aware router uses (defaults to
    /// the stream scheduler's `degraded_rotate_threshold`).
    pub degraded_threshold: f64,
    /// Per-node stream capacity for the straggler-aware deal.
    pub capacity_per_node: Option<usize>,
    /// Mid-run rebalancing: when set, the shared-clock driver checks
    /// node health every `check_interval` and migrates live streams off
    /// degraded disks. `None` runs the cluster statically.
    pub rebalance: Option<RebalanceConfig>,
}

impl ClusterExperiment {
    /// Starts a builder: 1 node, identity routing, healthy, template
    /// defaults from [`Experiment::builder`].
    ///
    /// Note: new call sites should prefer [`Scenario`](crate::Scenario),
    /// which wraps this specification with flat setters for the template
    /// knobs and moves every validation failure to `build()` time. This
    /// builder remains supported for code that assembles the
    /// `ClusterExperiment` struct directly.
    pub fn builder() -> ClusterExperimentBuilder {
        ClusterExperimentBuilder {
            spec: ClusterExperiment {
                template: Experiment::builder().build(),
                nodes: 1,
                policy: ShardPolicy::Identity,
                node_faults: vec![None],
                base_seed: None,
                jobs: None,
                degraded_threshold: seqio_core::ServerConfig::default_tuning()
                    .degraded_rotate_threshold,
                capacity_per_node: None,
                rebalance: None,
            },
        }
    }

    /// Global client streams across the cluster.
    pub fn total_streams(&self) -> usize {
        self.nodes * self.template.total_streams()
    }

    /// The router this specification implies (health derived from the
    /// per-node fault plans).
    pub fn router(&self) -> Router {
        let disks = self.template.shape.total_disks();
        let health: Vec<NodeHealth> =
            self.node_faults.iter().map(|p| NodeHealth::from_faults(p.as_ref(), disks)).collect();
        let mut r = Router::new(self.policy, self.nodes)
            .with_health(health)
            .with_threshold(self.degraded_threshold);
        if let Some(cap) = self.capacity_per_node {
            r = r.with_capacity(cap);
        }
        r
    }

    /// Validates the full cluster specification.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a [`SeqioError`].
    pub fn validate(&self) -> Result<(), SeqioError> {
        self.template.validate()?;
        if self.template.faults.is_some() {
            return Err(SeqioError::Experiment(
                "cluster faults are per node: use node_fault(k, plan), not the template".into(),
            ));
        }
        if self.template.stream_counts.is_some() && self.nodes > 1 {
            return Err(SeqioError::Experiment(
                "the cluster owns per-disk stream layout across nodes; \
                 template.stream_counts is only honoured on a 1-node cluster"
                    .into(),
            ));
        }
        if self.template.replay.is_some() {
            return Err(SeqioError::Experiment("trace replay cannot be sharded".into()));
        }
        if self.node_faults.len() != self.nodes {
            return Err(SeqioError::Experiment(format!(
                "node_faults names {} nodes but the cluster has {}",
                self.node_faults.len(),
                self.nodes
            )));
        }
        for (k, plan) in self.node_faults.iter().enumerate() {
            if let Some(p) = plan {
                p.validate()?;
                if let Some(d) = p.max_disk() {
                    let disks = self.template.shape.total_disks();
                    if d >= disks {
                        return Err(SeqioError::Experiment(format!(
                            "node {k} fault plan names disk {d} but nodes have {disks} disks"
                        )));
                    }
                }
            }
        }
        if let Some(cfg) = &self.rebalance {
            cfg.validate()?;
        }
        self.router().validate()
    }

    /// Builds the per-node experiment spec for a node assigned
    /// `assigned` streams (`None` when the node received no streams and
    /// is skipped entirely).
    fn node_spec(&self, node: usize, assigned: usize) -> Option<Experiment> {
        if assigned == 0 {
            return None;
        }
        let mut spec = self.template.clone();
        let disks = spec.shape.total_disks();
        if self.nodes == 1 && spec.stream_counts.is_some() {
            // A 1-node cluster honours the template's explicit per-disk
            // layout verbatim (identity routing assigns the whole
            // population to this node anyway).
            debug_assert_eq!(assigned, spec.total_streams());
        } else if assigned.is_multiple_of(disks) {
            // An even share keeps the uniform layout, so a 1-node
            // identity cluster runs the template spec verbatim.
            spec.streams_per_disk = assigned / disks;
        } else {
            let base = assigned / disks;
            let rem = assigned % disks;
            spec.stream_counts = Some((0..disks).map(|d| base + usize::from(d < rem)).collect());
        }
        spec.faults = self.node_faults[node].clone();
        if let Some(b) = self.base_seed {
            spec.seed = derive_seed(b, node);
        }
        Some(spec)
    }

    /// Runs the shared-clock co-simulation and merges the results.
    ///
    /// Every populated node becomes a [`NodeSim`]; a worker pool (sized
    /// by [`resolve_jobs`], same as a [`seqio_node::Sweep`]) advances
    /// all of them to each epoch boundary. Without a rebalancer there is
    /// a single epoch to the end of time, which is exactly each node's
    /// standalone event loop; with one, nodes advance in
    /// `check_interval` lockstep and live streams migrate off degraded
    /// disks between epochs.
    ///
    /// # Errors
    ///
    /// Returns the first specification error; a valid specification
    /// always runs to completion.
    pub fn run(&self) -> Result<ClusterResult, SeqioError> {
        self.validate()?;
        let total = self.total_streams();
        let router = self.router();
        let assignment = router.assign(total);

        // Node k serves its assigned global ids in ascending order,
        // mapped onto local slots 0..n_k (disk-major, the node's own
        // stream order).
        let node_ids: Vec<Vec<usize>> = {
            let mut ids = vec![Vec::new(); self.nodes];
            for (g, &k) in assignment.iter().enumerate() {
                ids[k].push(g);
            }
            ids
        };

        // Seeds are derived per node up front, so a skipped (empty)
        // node never shifts its neighbours' seeds.
        let mut specs: Vec<Option<Experiment>> = Vec::with_capacity(self.nodes);
        let mut sims: Vec<Option<NodeSim>> = Vec::with_capacity(self.nodes);
        for (k, ids) in node_ids.iter().enumerate() {
            let spec = self.node_spec(k, ids.len());
            sims.push(match &spec {
                Some(s) => Some(NodeSim::new(s)?),
                None => None,
            });
            specs.push(spec);
        }
        for sim in sims.iter_mut().flatten() {
            sim.init();
        }
        let jobs = resolve_jobs(self.jobs);

        // The final local-slot -> global-stream map per node; grows on
        // the target side as streams migrate in.
        let mut slot_map = node_ids.clone();
        let mut migrations: Vec<MigrationRecord> = Vec::new();

        match &self.rebalance {
            None => advance_all(&mut sims, SimTime::MAX, jobs),
            Some(cfg) => {
                // Current home of every global stream.
                let mut location: Vec<(usize, usize)> = vec![(0, 0); total];
                for (k, ids) in slot_map.iter().enumerate() {
                    for (slot, &g) in ids.iter().enumerate() {
                        location[g] = (k, slot);
                    }
                }
                let rebalancer = Rebalancer::new(cfg.clone());
                let mut t = SimTime::ZERO;
                loop {
                    t += cfg.check_interval;
                    advance_all(&mut sims, t, jobs);
                    if sims.iter().flatten().all(|s| s.peek_next_time().is_none()) {
                        break;
                    }
                    let views = build_views(&sims, &slot_map, cfg.threshold, t);
                    for mv in rebalancer.plan(&views) {
                        let (src_node, src_slot) = location[mv.global];
                        debug_assert_eq!(src_node, mv.from, "planner and location map agree");
                        let Some(handoff) =
                            sims[mv.from].as_mut().and_then(|s| s.retire_stream(src_slot))
                        else {
                            continue;
                        };
                        let target =
                            sims[mv.to].as_mut().expect("rebalancer only targets live nodes");
                        let new_slot = target.inject_stream(t, handoff);
                        debug_assert_eq!(new_slot, slot_map[mv.to].len());
                        slot_map[mv.to].push(mv.global);
                        location[mv.global] = (mv.to, new_slot);
                        migrations.push(MigrationRecord {
                            at: t,
                            stream: mv.global,
                            from: mv.from,
                            to: mv.to,
                        });
                    }
                }
            }
        }

        let disks = self.template.shape.total_disks();
        let mut outcomes = Vec::with_capacity(self.nodes);
        for (k, (spec, sim)) in specs.into_iter().zip(sims).enumerate() {
            outcomes.push(NodeOutcome {
                node: k,
                assigned_streams: node_ids[k].len(),
                health: NodeHealth::from_faults(self.node_faults[k].as_ref(), disks),
                spec,
                result: sim.map(NodeSim::finish),
            });
        }
        Ok(ClusterResult::merge(outcomes, assignment, slot_map, migrations))
    }
}

/// Advances every live node to `limit` on a pool of `jobs` workers.
///
/// Nodes are dealt to workers by an atomic cursor; each node is advanced
/// by exactly one worker per epoch, and its own event order is untouched,
/// so the schedule cannot influence results.
fn advance_all(sims: &mut [Option<NodeSim>], limit: SimTime, jobs: usize) {
    let live: Vec<Mutex<&mut NodeSim>> = sims.iter_mut().flatten().map(Mutex::new).collect();
    let n = live.len();
    if n == 0 {
        return;
    }
    let workers = jobs.clamp(1, n);
    if workers == 1 {
        for sim in live {
            sim.into_inner().unwrap_or_else(|e| e.into_inner()).advance_to(limit);
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                live[i].lock().unwrap_or_else(|e| e.into_inner()).advance_to(limit);
            });
        }
    });
}

/// Snapshots every live node's health at epoch boundary `at` into the
/// [`NodeView`]s the rebalancer plans from. Only live streams on disks at
/// or past `threshold` become migration candidates.
fn build_views(
    sims: &[Option<NodeSim>],
    slot_map: &[Vec<usize>],
    threshold: f64,
    at: SimTime,
) -> Vec<NodeView> {
    let mut views = Vec::new();
    for (k, sim) in sims.iter().enumerate() {
        let Some(sim) = sim else { continue };
        let health = sim.health(at);
        let mut migratable = Vec::new();
        for (slot, &g) in slot_map[k].iter().enumerate() {
            if !sim.stream_live(slot) {
                continue;
            }
            let factor = health.straggler_factors[sim.stream_disk(slot)];
            if factor >= threshold {
                migratable.push(MigratableStream { global: g, factor });
            }
        }
        views.push(NodeView {
            node: k,
            live_streams: health.live_streams,
            worst_factor: health.worst_straggler_factor(),
            migratable,
        });
    }
    views
}

/// Builder for [`ClusterExperiment`].
#[derive(Debug, Clone)]
pub struct ClusterExperimentBuilder {
    spec: ClusterExperiment,
}

impl ClusterExperimentBuilder {
    /// Sets the per-node experiment template.
    pub fn template(mut self, t: Experiment) -> Self {
        self.spec.template = t;
        self
    }

    /// Sets the node count (resizes the per-node fault table).
    pub fn nodes(mut self, k: usize) -> Self {
        self.spec.nodes = k;
        self.spec.node_faults.resize(k, None);
        self
    }

    /// Sets the sharding policy.
    pub fn policy(mut self, p: ShardPolicy) -> Self {
        self.spec.policy = p;
        self
    }

    /// Installs a fault plan on one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is past the configured node count (call
    /// [`nodes`](Self::nodes) first).
    pub fn node_fault(mut self, node: usize, plan: FaultPlan) -> Self {
        assert!(node < self.spec.nodes, "node {node} past cluster size {}", self.spec.nodes);
        self.spec.node_faults[node] = Some(plan);
        self
    }

    /// Derives per-node seeds from a cluster base seed.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.spec.base_seed = Some(seed);
        self
    }

    /// Overrides the fan-out worker count.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.spec.jobs = Some(jobs);
        self
    }

    /// Overrides the degraded threshold for straggler-aware routing.
    pub fn degraded_threshold(mut self, t: f64) -> Self {
        self.spec.degraded_threshold = t;
        self
    }

    /// Caps the streams any single node accepts under the
    /// straggler-aware deal.
    pub fn capacity_per_node(mut self, cap: usize) -> Self {
        self.spec.capacity_per_node = Some(cap);
        self
    }

    /// Enables mid-run rebalancing: the shared-clock driver checks node
    /// health every `cfg.check_interval` and migrates live streams off
    /// degraded disks.
    pub fn rebalance(mut self, cfg: RebalanceConfig) -> Self {
        self.spec.rebalance = Some(cfg);
        self
    }

    /// Finalizes the specification without running it.
    pub fn build(self) -> ClusterExperiment {
        self.spec
    }

    /// Builds and runs in one step.
    ///
    /// # Errors
    ///
    /// Returns the first specification error.
    pub fn run(self) -> Result<ClusterResult, SeqioError> {
        self.spec.run()
    }
}

/// One node's share of a cluster run.
#[derive(Debug, Clone)]
pub struct NodeOutcome {
    /// Node index `0..K`.
    pub node: usize,
    /// Streams the router assigned here.
    pub assigned_streams: usize,
    /// Health the router saw for this node.
    pub health: NodeHealth,
    /// The spec that ran (`None` when no streams were assigned and the
    /// node was skipped).
    pub spec: Option<Experiment>,
    /// The node's own result over its own realized window (`None` for
    /// skipped nodes).
    pub result: Option<RunResult>,
}

/// Merged outcome of a cluster run on the shared cluster clock.
///
/// All nodes start at `SimTime::ZERO`; the cluster's measurement window
/// is the **makespan** — the longest realized node window — and every
/// per-stream throughput is expressed over that shared window, so the
/// paper-style sum `total_throughput_mbs` equals total bytes over the
/// time the slowest node needed. A straggling node therefore drags the
/// whole cluster figure down exactly as it would a real batch of
/// clients waiting for their slowest shard.
///
/// When streams migrated mid-run, a global stream's bytes are the exact
/// integer sum of what it delivered on every node that hosted it, and
/// its throughput is that sum over the shared window; without
/// migrations the merge reduces to rescaling each node's own per-stream
/// rates onto the shared window (bit-identical to the static merge).
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// Per-node outcomes, indexed by node.
    pub nodes: Vec<NodeOutcome>,
    /// Global stream → node map the router produced (the *initial*
    /// placement; see [`migrations`](Self::migrations) for later moves).
    pub assignment: Vec<usize>,
    /// Final local-slot → global-stream map per node: entry `[k][s]` is
    /// the global id of node `k`'s local stream `s`, including slots
    /// created by mid-run migration.
    pub node_stream_ids: Vec<Vec<usize>>,
    /// Every migration the rebalancer performed, in execution order
    /// (empty for static runs).
    pub migrations: Vec<MigrationRecord>,
    /// Per-stream throughput in MBytes/s over the cluster window, in
    /// global stream order.
    pub per_stream_mbs: Vec<f64>,
    /// The cluster window: the longest realized node window.
    pub window: SimDuration,
    /// Client response-time distribution merged across nodes.
    pub response: LatencyHistogram,
    /// Bytes delivered cluster-wide inside the measured windows.
    pub bytes_delivered: u64,
    /// Client requests completed cluster-wide.
    pub requests_completed: u64,
    /// Discrete events simulated across all node runs.
    pub events_simulated: u64,
    /// Merged metric time series (`nodeK.`-prefixed columns), when the
    /// template enabled metric sampling.
    pub metrics: Option<MetricSeries>,
    /// End-to-end session SLO percentiles, when a client front-end drove
    /// the run (see [`crate::SessionSlo`]). Always `None` for plain cluster runs:
    /// session latency is defined from arrival to network delivery, and
    /// only the client tier knows both instants.
    pub slo: Option<crate::SessionSlo>,
}

impl ClusterResult {
    /// Merges per-node outcomes into one cluster result on the shared
    /// clock (see the type docs for the makespan-window semantics).
    /// `assignment` is the router's initial global-stream → node map,
    /// `node_ids` the final local-slot → global-stream map per node, and
    /// `migrations` the mid-run moves in execution order.
    ///
    /// [`ClusterExperiment::run`] calls this internally; it is public so
    /// external drivers that advance [`NodeSim`]s themselves — the
    /// open-loop client front-end — can fold their per-node results into
    /// the same aggregate surface.
    pub fn merge(
        nodes: Vec<NodeOutcome>,
        assignment: Vec<usize>,
        node_ids: Vec<Vec<usize>>,
        migrations: Vec<MigrationRecord>,
    ) -> ClusterResult {
        let window = nodes
            .iter()
            .filter_map(|n| n.result.as_ref())
            .map(|r| r.window)
            .max()
            .unwrap_or(SimDuration::ZERO);
        let mut per_stream_mbs = vec![0.0; assignment.len()];
        if migrations.is_empty() {
            // Static runs rescale each node's own per-stream rates onto
            // the shared window — bit-identical to the pre-migration
            // merge (ratio 1.0 for the slowest node, so a 1-node cluster
            // keeps its values bit-identical to a plain `Experiment`).
            for outcome in &nodes {
                let Some(result) = &outcome.result else { continue };
                let ratio = if result.window == window || window == SimDuration::ZERO {
                    1.0
                } else {
                    result.window.as_millis_f64() / window.as_millis_f64()
                };
                for (slot, &g) in node_ids[outcome.node].iter().enumerate() {
                    per_stream_mbs[g] = result.per_stream_mbs[slot] * ratio;
                }
            }
        } else {
            // Migrated streams delivered bytes on several nodes: sum the
            // exact integer byte counts per global stream, then express
            // each over the shared window.
            let mut stream_bytes = vec![0u64; assignment.len()];
            for outcome in &nodes {
                let Some(result) = &outcome.result else { continue };
                for (slot, &g) in node_ids[outcome.node].iter().enumerate() {
                    stream_bytes[g] += result.per_stream_bytes[slot];
                }
            }
            let secs = window.as_secs_f64();
            if secs > 0.0 {
                for (g, &b) in stream_bytes.iter().enumerate() {
                    per_stream_mbs[g] = b as f64 / (1024.0 * 1024.0) / secs;
                }
            }
        }
        let mut response = LatencyHistogram::new();
        let mut bytes = 0u64;
        let mut requests = 0u64;
        let mut events = 0u64;
        let mut parts: Vec<(String, &MetricSeries)> = Vec::new();
        for outcome in &nodes {
            let Some(result) = &outcome.result else { continue };
            response.merge(&result.response);
            bytes += result.bytes_delivered;
            requests += result.requests_completed;
            events += result.events_simulated;
            if let Some(series) = &result.metrics {
                parts.push((format!("node{}", outcome.node), series));
            }
        }
        let metrics = if parts.is_empty() {
            None
        } else {
            let labeled: Vec<(&str, &MetricSeries)> =
                parts.iter().map(|(l, s)| (l.as_str(), *s)).collect();
            Some(
                MetricSeries::merge_labeled(&labeled)
                    .expect("node series share the template's sampling interval"),
            )
        };
        ClusterResult {
            nodes,
            assignment,
            node_stream_ids: node_ids,
            migrations,
            per_stream_mbs,
            window,
            response,
            bytes_delivered: bytes,
            requests_completed: requests,
            events_simulated: events,
            metrics,
            slo: None,
        }
    }

    /// Cluster throughput: the sum of per-stream throughputs over the
    /// shared window, exactly as the paper aggregates a node.
    pub fn total_throughput_mbs(&self) -> f64 {
        self.per_stream_mbs.iter().sum()
    }

    /// One node's share of the cluster throughput, attributing each
    /// stream to the node it was *initially* assigned — a migrated
    /// stream's whole rate counts toward its original home.
    pub fn node_throughput_mbs(&self, node: usize) -> f64 {
        self.assignment
            .iter()
            .zip(&self.per_stream_mbs)
            .filter(|(&k, _)| k == node)
            .map(|(_, &mbs)| mbs)
            .sum()
    }

    /// Mean response time in milliseconds across every client request.
    pub fn mean_response_ms(&self) -> f64 {
        self.response.mean().as_millis_f64()
    }

    /// 99th-percentile response time in milliseconds cluster-wide.
    pub fn p99_response_ms(&self) -> f64 {
        self.response.quantile(0.99).map(|d| d.as_millis_f64()).unwrap_or(0.0)
    }

    /// The worst per-node mean response time in milliseconds — the
    /// tail-node view a cluster operator watches.
    pub fn max_node_mean_response_ms(&self) -> f64 {
        self.nodes
            .iter()
            .filter_map(|n| n.result.as_ref())
            .map(|r| r.mean_response_ms())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_template() -> Experiment {
        Experiment::builder()
            .streams_per_disk(4)
            .requests_per_stream(8)
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(30))
            .build()
    }

    #[test]
    fn builder_defaults_validate() {
        let c = ClusterExperiment::builder().template(quick_template()).build();
        assert!(c.validate().is_ok());
        assert_eq!(c.total_streams(), 4);
    }

    #[test]
    fn invalid_specs_are_rejected() {
        // Identity routing on K > 1.
        let c = ClusterExperiment::builder().template(quick_template()).nodes(2).build();
        assert!(c.validate().is_err());
        // Template-level faults.
        let mut c = ClusterExperiment::builder().template(quick_template()).build();
        c.template.faults = Some(FaultPlan::new().read_errors(0, 0.01));
        assert!(c.validate().is_err());
        // Template-level stream_counts: fine on 1 node, rejected across
        // several (the router owns the layout there).
        let mut c = ClusterExperiment::builder().template(quick_template()).build();
        c.template.stream_counts = Some(vec![4]);
        assert!(c.validate().is_ok());
        let mut c = ClusterExperiment::builder()
            .template(quick_template())
            .nodes(2)
            .policy(ShardPolicy::HashByStream)
            .build();
        c.template.stream_counts = Some(vec![4]);
        assert!(c.validate().is_err());
        // Fault table length drift.
        let mut c = ClusterExperiment::builder().template(quick_template()).build();
        c.node_faults.clear();
        assert!(c.validate().is_err());
        // Node fault naming an absent disk.
        let c = ClusterExperiment::builder()
            .template(quick_template())
            .nodes(2)
            .policy(ShardPolicy::HashByStream)
            .node_fault(1, FaultPlan::new().read_errors(5, 0.01))
            .build();
        assert!(c.validate().is_err());
    }

    #[test]
    fn two_node_hash_cluster_merges_both_nodes() {
        let result = ClusterExperiment::builder()
            .template(quick_template())
            .nodes(2)
            .policy(ShardPolicy::HashByStream)
            .base_seed(7)
            .jobs(2)
            .run()
            .unwrap();
        assert_eq!(result.per_stream_mbs.len(), 8);
        assert_eq!(result.assignment.len(), 8);
        assert_eq!(result.requests_completed, 8 * 8);
        assert!(result.total_throughput_mbs() > 0.0);
        assert!(result.window > SimDuration::ZERO);
        // Exact deal: four streams per node, both nodes ran.
        for n in &result.nodes {
            assert_eq!(n.assigned_streams, 4);
            assert!(n.result.is_some());
        }
        // Node shares partition the total.
        let split = result.node_throughput_mbs(0) + result.node_throughput_mbs(1);
        assert!((split - result.total_throughput_mbs()).abs() < 1e-9);
        // Per-node seeds derive from (base, node).
        for (k, n) in result.nodes.iter().enumerate() {
            assert_eq!(n.spec.as_ref().unwrap().seed, derive_seed(7, k));
        }
    }

    #[test]
    fn empty_nodes_are_skipped_without_shifting_seeds() {
        // All streams steered away from the degraded node 0.
        let plan = FaultPlan::new().straggler(0, 4.0, SimDuration::ZERO, None);
        let result = ClusterExperiment::builder()
            .template(quick_template())
            .nodes(2)
            .policy(ShardPolicy::StragglerAware)
            .node_fault(0, plan)
            .base_seed(3)
            .run()
            .unwrap();
        assert_eq!(result.nodes[0].assigned_streams, 0);
        assert!(result.nodes[0].result.is_none() && result.nodes[0].spec.is_none());
        let n1 = &result.nodes[1];
        assert_eq!(n1.assigned_streams, 8);
        assert_eq!(n1.spec.as_ref().unwrap().seed, derive_seed(3, 1));
        assert!(n1.health == NodeHealth::healthy());
        assert_eq!(result.requests_completed, 8 * 8);
    }

    #[test]
    fn uneven_shares_fall_back_to_stream_counts() {
        let c = ClusterExperiment::builder().template(quick_template()).build();
        // 4 streams on 1 disk: even share, uniform layout preserved.
        let spec = c.node_spec(0, 4).unwrap();
        assert_eq!(spec.streams_per_disk, 4);
        assert!(spec.stream_counts.is_none());
        // Uneven share on an 8-disk node spreads the remainder.
        let mut c = c;
        c.template.shape = seqio_node::NodeShape::eight_disk();
        let spec = c.node_spec(0, 11).unwrap();
        assert_eq!(spec.stream_counts, Some(vec![2, 2, 2, 1, 1, 1, 1, 1]));
        assert_eq!(spec.total_streams(), 11);
        assert!(c.node_spec(0, 0).is_none());
    }
}
