//! `seqio-scenario` — the scenario engine and adaptive autotuner.
//!
//! Two halves, built on the storage-node engine's stream-injection
//! surface:
//!
//! - **Scenario engine**: a replayable, deterministic [trace
//!   format](ScenarioTrace) (hand-rolled text, shared clause grammar with
//!   the CLI's `--faults` spec) plus [named generators](ScenarioKind) for
//!   video-segment streaming, backup scans, mixed sequential+random
//!   interference, stream churn and reader seek/restart. Generators
//!   materialize every operation up front from one dedicated RNG stream
//!   ([`SCENARIO_SEED_INDEX`]), so traces are bit-identical at every
//!   `SEQIO_JOBS` value and independent of all other seed streams.
//! - **Adaptive autotuning**: [`AdaptiveTuner`], an
//!   [`EpochController`](seqio_simcore::EpochController) that reads
//!   model-state [health](seqio_node::HealthSnapshot) at epoch boundaries
//!   and retunes the scheduler's `D`/`R`/`N` and degraded-rotate
//!   threshold mid-run; plus the [dispatch-policy comparison
//!   harness](compare_policies) and the [experiment matrix](run_matrix)
//!   comparing direct, static tunes and adaptive on every scenario.

#![warn(missing_docs)]

mod adaptive;
mod generators;
mod matrix;
mod policy;
mod run;
mod trace;

pub use adaptive::{AdaptiveConfig, AdaptiveTuner, RetuneAction};
pub use generators::{
    generate, Scenario, ScenarioKind, ScenarioParams, DEGRADED_FACTOR, SCENARIO_SEED_INDEX,
};
pub use matrix::{
    degraded_rescue, matrix_scenario, matrix_template, run_matrix, run_row, static_candidates,
    wide_reference, MatrixRow, MatrixScale, StaticOutcome,
};
pub use policy::{compare_policies, PolicyOutcome, POLICIES};
pub use run::{RetuneEvent, ScenarioOutcome, ScenarioRun};
pub use trace::{
    pattern_from_text, pattern_to_text, ScenarioTrace, TraceOp, TraceOpKind, TRACE_HEADER,
};
