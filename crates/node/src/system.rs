//! The storage-node discrete-event engine.
//!
//! [`StorageNode`] assembles clients, a request-path front end (direct,
//! the paper's stream scheduler, or a Linux-like kernel path), controllers
//! and disks, and runs the whole thing on one event queue. The paper's
//! measurement methodology is reproduced exactly: closed-loop clients with
//! one outstanding request per stream, header-only network, throughput as
//! the sum of per-stream throughputs over the measured window, response
//! time taken at the client.

use seqio_controller::{Controller, ControllerConfig, CtrlEvent, CtrlOutput, HostRequest};
use seqio_core::{ServerConfig, ServerOutput, SpanEvent, StorageServer};
use seqio_disk::{Direction, Disk, RequestId};
use seqio_hostsched::{BlockRequest, IoScheduler, RaOutcome, SchedDecision, StreamRa};
use seqio_simcore::{
    EventQueue, LatencyHistogram, MetricId, MetricsHub, ProfTally, SeqioError, SimDuration, SimRng,
    SimTime, SpanPhase,
};
use seqio_workload::{interval_offsets, uniform_offsets, ClientSet, StreamSpec};

use crate::experiment::{Experiment, Frontend, Placement, RunResult};
use crate::span::SpanRecord;

#[derive(Debug)]
enum Ev {
    /// Client request `id` arrives at the node.
    Arrive(u64),
    /// Send a request to controller `ctrl`.
    SubmitCtrl { ctrl: usize, req: HostRequest },
    /// A controller-internal event is due.
    CtrlInternal { ctrl: usize, ev: CtrlEvent },
    /// Controller `ctrl` finished its request `id` (fault-path
    /// annotations ride along for the span recorder).
    CtrlDone { ctrl: usize, id: u64, retries: u32, timed_out: bool },
    /// Response for client request `id` reaches the client.
    Deliver { id: u64, from_memory: bool },
    /// Stream-scheduler garbage-collection tick.
    Gc,
    /// Re-poll a Linux block scheduler (anticipation expiry).
    LinuxKick { disk: usize },
    /// Periodic observability sample (only scheduled when metric
    /// sampling is enabled; excluded from `events_simulated`).
    Sample,
}

/// Stable class names for the kernel self-profile, indexed by
/// [`Ev::class`] — one per `Ev` variant, in declaration order.
const EV_CLASS_NAMES: [&str; 8] = [
    "arrive",
    "submit_ctrl",
    "ctrl_internal",
    "ctrl_done",
    "deliver",
    "gc",
    "linux_kick",
    "sample",
];

impl Ev {
    /// Index into [`EV_CLASS_NAMES`] for profiling.
    fn class(&self) -> usize {
        match self {
            Ev::Arrive(_) => 0,
            Ev::SubmitCtrl { .. } => 1,
            Ev::CtrlInternal { .. } => 2,
            Ev::CtrlDone { .. } => 3,
            Ev::Deliver { .. } => 4,
            Ev::Gc => 5,
            Ev::LinuxKick { .. } => 6,
            Ev::Sample => 7,
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct ClientMeta {
    stream: usize,
    disk: usize,
    lba: u64,
    blocks: u64,
    sent: SimTime,
}

/// What a controller-level request was for.
#[derive(Debug, Clone, Copy)]
enum Tag {
    /// A client request passed through directly.
    Client(u64),
    /// A stream-scheduler backend request.
    Backend(u64),
    /// A Linux read-ahead fetch for `stream` on `disk`.
    Fetch { disk: usize, stream: usize },
}

#[derive(Debug)]
struct LinuxDisk {
    sched: Box<dyn IoScheduler>,
    /// Per-stream read-ahead state, indexed by the dense global stream id.
    ra: Vec<Option<StreamRa>>,
    /// Client requests blocked on each stream's in-flight fetch, indexed by
    /// the dense global stream id (vectors are reused across fetches).
    waiters: Vec<Vec<u64>>,
    busy: bool,
}

#[derive(Debug)]
enum Fe {
    Direct,
    Stream(Box<StorageServer>),
    Linux(Vec<LinuxDisk>),
}

/// How client requests are produced.
#[derive(Debug)]
enum Drive {
    /// Closed loop: each stream re-issues after its completion.
    Closed(ClientSet),
    /// Open loop: arrivals at recorded timestamps.
    Replay,
}

/// A span being assembled for an in-flight client request (slab-parallel
/// to `StorageNode::meta`).
#[derive(Debug, Clone, Copy, Default)]
struct PartialSpan {
    stamps: [Option<SimTime>; SpanPhase::COUNT],
    retries: u32,
    timed_out: bool,
}

/// Metric handles registered by the node's sampler, in registration order.
#[derive(Debug)]
struct HubIds {
    /// Per-disk gauges/counters, indexed by global disk id.
    queue_depth: Vec<MetricId>,
    busy_frac: Vec<MetricId>,
    retries: Vec<MetricId>,
    requests_completed: MetricId,
    bytes_delivered: MetricId,
    /// Stream-scheduler metrics (absent on direct/Linux front ends).
    server: Option<ServerIds>,
}

#[derive(Debug)]
struct ServerIds {
    dispatched_streams: MetricId,
    live_streams: MetricId,
    staged_bytes: MetricId,
    memory_capacity: MetricId,
    streams_detected: MetricId,
    streams_gced: MetricId,
    memory_hits: MetricId,
    admissions: MetricId,
}

/// Opt-in observability state. Recording never feeds back into the
/// simulation: sampler events are excluded from `events_simulated`, span
/// stamping only reads model state, and no extra randomness is drawn.
#[derive(Debug)]
struct Obs {
    spans_on: bool,
    /// Metric sampling period ([`SimDuration::ZERO`] when metrics are off).
    interval: SimDuration,
    hub: Option<(MetricsHub, HubIds)>,
    /// Last sampled per-disk cumulative busy time, for windowed busy-fraction.
    prev_busy: Vec<SimDuration>,
    prev_at: SimTime,
    /// Partial spans, slab-parallel to `StorageNode::meta`.
    slots: Vec<PartialSpan>,
    /// Finished spans delivered inside the measured window.
    done: Vec<SpanRecord>,
    /// Reused buffer for draining the server's span log.
    scratch: Vec<SpanEvent>,
    /// Sampler events pushed onto the queue, subtracted from
    /// `scheduled_count()` so `events_simulated` stays bit-identical with
    /// observability off.
    pushes: u64,
}

impl Obs {
    /// Records `phase` for client `id` at `at`; the first stamp per phase
    /// wins (a covering fill may be re-announced for already-issued
    /// requests).
    fn stamp(&mut self, id: u64, phase: SpanPhase, at: SimTime) {
        if !self.spans_on {
            return;
        }
        let slot = &mut self.slots[id as usize].stamps[phase.index()];
        if slot.is_none() {
            *slot = Some(at);
        }
    }

    /// Merges fault annotations into the span of client `id`.
    fn annotate(&mut self, id: u64, retries: u32, timed_out: bool) {
        if !self.spans_on {
            return;
        }
        let slot = &mut self.slots[id as usize];
        slot.retries = slot.retries.max(retries);
        slot.timed_out |= timed_out;
    }
}

/// The assembled storage node (see module docs).
#[derive(Debug)]
pub(crate) struct StorageNode {
    spec: Experiment,
    q: EventQueue<Ev>,
    rng: SimRng,
    controllers: Vec<Controller>,
    dpc: usize,
    fe: Fe,
    drive: Drive,
    /// In-flight client requests, slab-indexed by client id. Slot indices
    /// are reused via `meta_free` — safe because a client id is only ever
    /// visible between allocation and delivery, and never recorded in
    /// results or traces.
    meta: Vec<Option<ClientMeta>>,
    meta_free: Vec<u64>,
    /// In-flight controller requests, slab-indexed by the controller-level
    /// request id (ids are node-global, so one slab covers all controllers).
    tags: Vec<Option<Tag>>,
    tags_free: Vec<u64>,
    /// Scratch buffers so the per-event dispatch loops never allocate.
    server_scratch: Vec<ServerOutput>,
    ctrl_scratch: Vec<CtrlOutput>,
    cpu_free: SimTime,
    warmup_at: SimTime,
    stop_at: SimTime,
    /// Set once an event past `stop_at` is reached; the node then refuses
    /// to advance further (the steppable equivalent of the run loop's
    /// `break`).
    stopped: bool,
    /// Streams adopted from another node so far (salts the per-injection
    /// RNG derivation).
    migrations: u64,
    stream_bytes: Vec<u64>,
    /// When each stream's final response reached the client, `None` while
    /// the stream still has requests (or never finished). Plain
    /// bookkeeping off existing completions — no events, no RNG — so
    /// recording it cannot perturb any run. The client front-end tier
    /// reads it to time session completions.
    stream_done_at: Vec<Option<SimTime>>,
    response: LatencyHistogram,
    last_delivery: SimTime,
    requests_completed: u64,
    trace: Option<Vec<crate::TraceRecord>>,
    obs: Option<Obs>,
    /// Kernel self-profiling tally (`None` = the dispatch loop takes its
    /// historical branch-free path). Profiling only reads the host clock
    /// around dispatch; it never touches simulation state.
    prof: Option<ProfTally>,
}

impl StorageNode {
    /// Builds the node from a validated experiment.
    pub(crate) fn new(spec: Experiment) -> Self {
        let mut rng = SimRng::seed_from(spec.seed);
        let dpc = spec.shape.disks_per_controller;
        let mut controllers = Vec::with_capacity(spec.shape.controllers);
        for c in 0..spec.shape.controllers {
            let mut cfg = ControllerConfig { ports: dpc, ..spec.shape.controller.clone() };
            if let Some(policy) = spec.faults.as_ref().and_then(|pl| pl.retry_policy()) {
                cfg.max_retries = policy.max_retries;
                cfg.retry_backoff = policy.backoff;
                cfg.request_timeout = policy.timeout;
            }
            let disks = (0..dpc)
                .map(|p| {
                    let global = c * dpc + p;
                    let mut disk =
                        Disk::new(spec.shape.disk.clone(), spec.seed ^ (global as u64) << 8 | 1);
                    if let Some(df) = spec.faults.as_ref().and_then(|pl| pl.disk(global)) {
                        // The fault RNG stream is independent of the disk's
                        // rotational-phase seed so enabling faults never
                        // perturbs healthy arithmetic.
                        let fault_seed =
                            spec.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (global as u64 + 1);
                        disk.install_faults(df.clone(), fault_seed);
                    }
                    disk
                })
                .collect();
            controllers.push(Controller::new(cfg, disks));
        }
        let disk_blocks = controllers[0].disk(0).geometry().total_blocks();
        let total_disks = spec.shape.total_disks();

        // Stream layout: `streams_per_disk` per spindle, unless the spec
        // carries explicit per-disk counts (cluster sharding).
        let per_disk = spec.per_disk_streams();
        let mut specs = Vec::with_capacity(per_disk.iter().sum());
        let request_blocks = spec.request_blocks();
        let reqs = spec.requests_per_stream.unwrap_or(u64::MAX);
        debug_assert_eq!(per_disk.len(), total_disks);
        for (d, &count) in per_disk.iter().enumerate() {
            if count == 0 {
                continue;
            }
            let offsets = match spec.placement {
                Placement::Uniform => uniform_offsets(disk_blocks, count),
                Placement::Interval(bytes) => interval_offsets(
                    disk_blocks,
                    count,
                    bytes.div_ceil(512),
                    // Open-ended streams just need their start to fit; finite
                    // ones must fit their whole run in the interval.
                    request_blocks * reqs.min(bytes.div_ceil(512) / request_blocks.max(1)),
                ),
            };
            for start in offsets {
                specs.push(StreamSpec {
                    disk: d,
                    start,
                    request_blocks,
                    num_requests: reqs,
                    pattern: spec.pattern,
                });
            }
        }
        let drive = match &spec.replay {
            None => Drive::Closed(ClientSet::new(specs, 1, &mut rng)),
            Some(_) => Drive::Replay,
        };

        let n_streams = match (&drive, &spec.replay) {
            (Drive::Closed(c), _) => c.len(),
            (Drive::Replay, Some(t)) => t.iter().map(|r| r.stream + 1).max().unwrap_or(1),
            (Drive::Replay, None) => unreachable!("replay drive implies a trace"),
        };
        let mut fe = match &spec.frontend {
            Frontend::Direct => Fe::Direct,
            Frontend::StreamScheduler(cfg) => Fe::Stream(Box::new(StorageServer::new(
                cfg.clone(),
                vec![disk_blocks; total_disks],
            ))),
            Frontend::AllDispatched { read_ahead_bytes } => {
                let cfg = ServerConfig::all_dispatched(spec.total_streams(), *read_ahead_bytes);
                Fe::Stream(Box::new(StorageServer::new(cfg, vec![disk_blocks; total_disks])))
            }
            Frontend::Linux { scheduler, .. } => Fe::Linux(
                (0..total_disks)
                    .map(|_| LinuxDisk {
                        sched: scheduler.build(),
                        ra: std::iter::repeat_with(|| None).take(n_streams).collect(),
                        waiters: vec![Vec::new(); n_streams],
                        busy: false,
                    })
                    .collect(),
            ),
        };
        let warmup_at = SimTime::ZERO + spec.warmup;
        let stop_at = warmup_at + spec.duration;
        let trace = if spec.record_trace { Some(Vec::new()) } else { None };
        let obs = spec.obs.filter(|o| o.is_enabled()).map(|cfg| {
            if cfg.spans {
                if let Fe::Stream(server) = &mut fe {
                    server.enable_span_log();
                }
            }
            let hub = cfg.metrics.then(|| {
                let mut hub = MetricsHub::new(cfg.sample_interval);
                let mut queue_depth = Vec::with_capacity(total_disks);
                let mut busy_frac = Vec::with_capacity(total_disks);
                let mut retries = Vec::with_capacity(total_disks);
                for d in 0..total_disks {
                    queue_depth.push(hub.gauge(&format!("disk{d}.queue_depth"), "requests"));
                    busy_frac.push(hub.gauge(&format!("disk{d}.busy_frac"), "fraction"));
                    retries.push(hub.counter(&format!("disk{d}.retries"), "retries"));
                }
                let requests_completed = hub.counter("node.requests_completed", "requests");
                let bytes_delivered = hub.counter("node.bytes_delivered", "bytes");
                let server = matches!(fe, Fe::Stream(_)).then(|| ServerIds {
                    dispatched_streams: hub.gauge("server.dispatched_streams", "streams"),
                    live_streams: hub.gauge("server.live_streams", "streams"),
                    staged_bytes: hub.gauge("server.staged_bytes", "bytes"),
                    memory_capacity: hub.gauge("server.memory_capacity", "bytes"),
                    streams_detected: hub.counter("server.streams_detected", "streams"),
                    streams_gced: hub.counter("server.streams_gced", "streams"),
                    memory_hits: hub.counter("server.memory_hits", "requests"),
                    admissions: hub.counter("server.admissions", "admissions"),
                });
                let ids = HubIds {
                    queue_depth,
                    busy_frac,
                    retries,
                    requests_completed,
                    bytes_delivered,
                    server,
                };
                (hub, ids)
            });
            Obs {
                spans_on: cfg.spans,
                interval: if cfg.metrics { cfg.sample_interval } else { SimDuration::ZERO },
                hub,
                prev_busy: vec![SimDuration::ZERO; total_disks],
                prev_at: SimTime::ZERO,
                slots: Vec::new(),
                done: Vec::new(),
                scratch: Vec::new(),
                pushes: 0,
            }
        });
        let prof = spec.prof.map(|cfg| ProfTally::new(cfg, &EV_CLASS_NAMES));
        StorageNode {
            spec,
            q: EventQueue::new(),
            rng,
            controllers,
            dpc,
            fe,
            drive,
            meta: Vec::new(),
            meta_free: Vec::new(),
            tags: Vec::new(),
            tags_free: Vec::new(),
            server_scratch: Vec::new(),
            ctrl_scratch: Vec::new(),
            cpu_free: SimTime::ZERO,
            warmup_at,
            stop_at,
            stopped: false,
            migrations: 0,
            stream_bytes: vec![0; n_streams],
            stream_done_at: vec![None; n_streams],
            response: LatencyHistogram::new(),
            last_delivery: SimTime::ZERO,
            requests_completed: 0,
            trace,
            obs,
            prof,
        }
    }

    /// Runs to the stop time (or workload exhaustion) and reports.
    ///
    /// Expressed entirely on the steppable surface ([`init`](Self::init),
    /// [`advance_to`](Self::advance_to), [`finish`](Self::finish)), so a
    /// node driven in epochs by the cluster co-simulation executes the
    /// exact same code path — and therefore the exact same event order —
    /// as a standalone run.
    pub(crate) fn run(mut self) -> RunResult {
        self.init();
        self.advance_to(SimTime::MAX);
        self.finish()
    }

    /// Schedules the node's initial events: the kickoff burst (closed
    /// loop) or the recorded arrivals (replay), the stream scheduler's GC
    /// tick, and the observability sampler.
    ///
    /// Closed loop: every stream sends its first request, slightly
    /// staggered so arrival ties do not all land on one instant.
    pub(crate) fn init(&mut self) {
        match &mut self.drive {
            Drive::Closed(clients) => {
                let initial = clients.initial_requests();
                let net = self.spec.costs.network_oneway;
                let mut pending = Vec::new();
                for (i, r) in initial.into_iter().enumerate() {
                    let sent = SimTime::ZERO + SimDuration::from_micros(i as u64 % 997);
                    pending.push((r, sent, sent + net));
                }
                for (r, sent, at) in pending {
                    let id = self.alloc_client_id(r.stream, r.disk, r.lba, r.blocks, sent);
                    self.q.push(at, Ev::Arrive(id));
                }
            }
            Drive::Replay => {
                let trace = self.spec.replay.clone().expect("replay drive implies a trace");
                let net = self.spec.costs.network_oneway;
                for rec in trace {
                    let id =
                        self.alloc_client_id(rec.stream, rec.disk, rec.lba, rec.blocks, rec.sent);
                    self.q.push(rec.sent + net, Ev::Arrive(id));
                }
            }
        }
        if matches!(self.fe, Fe::Stream(_)) {
            let period = match &self.fe {
                Fe::Stream(s) => s.gc_period(),
                _ => unreachable!(),
            };
            self.q.push(SimTime::ZERO + period, Ev::Gc);
            self.update_degraded(SimTime::ZERO);
        }
        if let Some(obs) = &mut self.obs {
            if obs.interval > SimDuration::ZERO {
                self.q.push(SimTime::ZERO + obs.interval, Ev::Sample);
                obs.pushes += 1;
            }
        }
    }

    /// When the node next wants to run: the timestamp of its earliest
    /// pending event, or `None` once it is drained or every remaining
    /// event lies past the stop time (the steppable form of the run
    /// loop's `now > stop_at` break).
    pub(crate) fn peek_next_time(&self) -> Option<SimTime> {
        if self.stopped {
            return None;
        }
        self.q.peek_time().filter(|&t| t <= self.stop_at)
    }

    /// Handles every pending event with timestamp `<= limit`, in queue
    /// order. Chunked calls with non-decreasing limits pop the exact same
    /// event sequence as one call with `limit = SimTime::MAX`, so epoch
    /// driving is bit-identical to a standalone run.
    pub(crate) fn advance_to(&mut self, limit: SimTime) {
        while !self.stopped {
            let Some(t) = self.q.peek_time() else { break };
            if t > limit {
                break;
            }
            let (now, ev) = self.q.pop().expect("peeked event exists");
            if now > self.stop_at {
                self.stopped = true;
                break;
            }
            if self.prof.is_some() {
                self.handle_profiled(now, ev);
            } else {
                self.handle(now, ev);
            }
        }
    }

    /// Dispatches one event with self-profiling around it: books the
    /// event's class and (when configured) the host-clock nanoseconds its
    /// handler took. The simulation sees the exact same `handle` call.
    fn handle_profiled(&mut self, now: SimTime, ev: Ev) {
        let class = ev.class();
        let wall = self.prof.as_ref().is_some_and(ProfTally::wall_time);
        let t0 = wall.then(std::time::Instant::now);
        self.handle(now, ev);
        let nanos = t0.map_or(0, |t| t.elapsed().as_nanos() as u64);
        if let Some(p) = self.prof.as_mut() {
            p.record(class, nanos);
        }
    }

    /// Assembles the [`RunResult`] from the node's final state.
    pub(crate) fn finish(self) -> RunResult {
        let effective_end = self.last_delivery.min(self.stop_at).max(self.warmup_at);
        let window = effective_end.duration_since(self.warmup_at);
        let secs = window.as_secs_f64();
        let per_stream_mbs = self
            .stream_bytes
            .iter()
            .map(|&b| if secs > 0.0 { b as f64 / (1024.0 * 1024.0) / secs } else { 0.0 })
            .collect();
        let server_metrics = match &self.fe {
            Fe::Stream(s) => Some(s.metrics()),
            _ => None,
        };
        let mut disk_seeks = Vec::new();
        let mut disk_busy = Vec::new();
        let mut disk_ops = Vec::new();
        let mut disk_read_errors = Vec::new();
        let mut disk_retries = Vec::new();
        let mut disk_timeouts = Vec::new();
        let mut ctrl_wasted_bytes = 0;
        let mut ctrl_bytes_from_disks = 0;
        for c in &self.controllers {
            ctrl_wasted_bytes += c.cache_wasted_bytes();
            ctrl_bytes_from_disks += c.metrics().bytes_from_disks;
            for p in 0..self.dpc {
                let m = c.disk(p).metrics();
                disk_seeks.push(m.seeks);
                disk_busy.push(m.busy_time);
                disk_ops.push(m.media_ops);
                disk_read_errors.push(m.read_errors);
                let fc = c.fault_counters()[p];
                disk_retries.push(fc.retries);
                disk_timeouts.push(fc.timeouts);
            }
        }
        // Sampler events are bookkeeping, not simulation: subtract them so
        // `events_simulated` is bit-identical with observability off.
        let obs_pushes = self.obs.as_ref().map_or(0, |o| o.pushes);
        let prof = self.prof.map(|t| t.finish(self.q.stats()));
        let (spans, metrics) = match self.obs {
            Some(obs) => {
                (obs.spans_on.then_some(obs.done), obs.hub.map(|(hub, _)| hub.into_series()))
            }
            None => (None, None),
        };
        RunResult {
            per_stream_mbs,
            response: self.response,
            bytes_delivered: self.stream_bytes.iter().sum(),
            per_stream_bytes: self.stream_bytes,
            stream_done_at: self.stream_done_at,
            window,
            server_metrics,
            disk_seeks,
            disk_busy,
            disk_ops,
            disk_read_errors,
            disk_retries,
            disk_timeouts,
            ctrl_wasted_bytes,
            ctrl_bytes_from_disks,
            requests_completed: self.requests_completed,
            events_simulated: self.q.scheduled_count() - obs_pushes,
            trace: self.trace,
            spans,
            metrics,
            prof,
        }
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Arrive(id) => self.on_arrive(now, id),
            Ev::SubmitCtrl { ctrl, req } => {
                let mut outs = std::mem::take(&mut self.ctrl_scratch);
                self.controllers[ctrl].submit_into(now, req, &mut outs);
                self.map_ctrl_outputs(ctrl, &mut outs);
                self.ctrl_scratch = outs;
            }
            Ev::CtrlInternal { ctrl, ev } => {
                let mut outs = std::mem::take(&mut self.ctrl_scratch);
                self.controllers[ctrl].on_event_into(now, ev, &mut outs);
                self.map_ctrl_outputs(ctrl, &mut outs);
                self.ctrl_scratch = outs;
            }
            Ev::CtrlDone { ctrl, id, retries, timed_out } => {
                self.on_ctrl_done(now, ctrl, id, retries, timed_out)
            }
            Ev::Deliver { id, from_memory } => self.on_deliver(now, id, from_memory),
            Ev::Gc => {
                self.update_degraded(now);
                if let Fe::Stream(server) = &mut self.fe {
                    let mut outs = std::mem::take(&mut self.server_scratch);
                    server.on_gc_into(now, &mut outs);
                    let period = server.gc_period();
                    self.drain_server_spans();
                    self.apply_server_outputs(now, false, &mut outs);
                    self.server_scratch = outs;
                    self.q.push(now + period, Ev::Gc);
                }
            }
            Ev::LinuxKick { disk } => self.linux_kick(now, disk),
            Ev::Sample => self.on_sample(now),
        }
    }

    /// Takes one metric sample and reschedules the sampler. Read-only with
    /// respect to the simulation: every value is computed from existing
    /// model state, and the re-pushed event is excluded from
    /// `events_simulated`.
    fn on_sample(&mut self, now: SimTime) {
        let Some(obs) = self.obs.as_mut() else { return };
        let Some((hub, ids)) = obs.hub.as_mut() else { return };
        let elapsed = now.duration_since(obs.prev_at);
        let mut d = 0;
        for c in &self.controllers {
            let fcs = c.fault_counters();
            for (p, fc) in fcs.iter().enumerate().take(self.dpc) {
                let disk = c.disk(p);
                hub.set(ids.queue_depth[d], disk.queue_len() as f64);
                let busy = disk.metrics().busy_time;
                let frac = if elapsed > SimDuration::ZERO {
                    busy.saturating_sub(obs.prev_busy[d]).as_nanos() as f64
                        / elapsed.as_nanos() as f64
                } else {
                    0.0
                };
                hub.set(ids.busy_frac[d], frac);
                obs.prev_busy[d] = busy;
                hub.set(ids.retries[d], fc.retries as f64);
                d += 1;
            }
        }
        obs.prev_at = now;
        hub.set(ids.requests_completed, self.requests_completed as f64);
        hub.set(ids.bytes_delivered, self.stream_bytes.iter().sum::<u64>() as f64);
        if let (Some(sids), Fe::Stream(server)) = (&ids.server, &self.fe) {
            let m = server.metrics();
            hub.set(sids.dispatched_streams, server.dispatched_streams() as f64);
            hub.set(sids.live_streams, server.live_streams() as f64);
            hub.set(sids.staged_bytes, server.memory_used() as f64);
            hub.set(sids.memory_capacity, server.config().memory_bytes as f64);
            hub.set(sids.streams_detected, m.streams_detected as f64);
            hub.set(sids.streams_gced, m.streams_gced as f64);
            hub.set(sids.memory_hits, m.memory_hits as f64);
            hub.set(sids.admissions, m.admissions as f64);
        }
        hub.sample(now);
        let next = now + obs.interval;
        if next <= self.stop_at {
            self.q.push(next, Ev::Sample);
            obs.pushes += 1;
        }
    }

    /// Drains span events the stream scheduler logged during its last call
    /// and stamps the matching client spans. No-op unless spans are on.
    fn drain_server_spans(&mut self) {
        let Some(obs) = self.obs.as_mut().filter(|o| o.spans_on) else { return };
        let Fe::Stream(server) = &mut self.fe else { return };
        let mut scratch = std::mem::take(&mut obs.scratch);
        server.drain_span_log(&mut scratch);
        for ev in scratch.drain(..) {
            match ev {
                SpanEvent::Classified { client, at } => {
                    obs.stamp(client, SpanPhase::Classified, at)
                }
                SpanEvent::Admitted { client, at } => {
                    obs.stamp(client, SpanPhase::DispatchAdmitted, at)
                }
                SpanEvent::DiskIssued { client, at } => {
                    obs.stamp(client, SpanPhase::DiskIssued, at)
                }
                SpanEvent::Faulted { client, retries, timed_out } => {
                    obs.annotate(client, retries, timed_out)
                }
            }
        }
        obs.scratch = scratch;
    }

    // ----- migration & health (cluster co-simulation) -----------------

    /// Retires `stream` for migration: splits off its unissued tail as a
    /// fresh spec and exhausts the local generator. A request already in
    /// flight still completes — and is counted — on this node. Returns
    /// `None` for exhausted streams and replay (open-loop) drives.
    pub(crate) fn retire_stream(&mut self, stream: usize) -> Option<StreamSpec> {
        match &mut self.drive {
            Drive::Closed(clients) => clients.retire_stream(stream),
            Drive::Replay => None,
        }
    }

    /// Adopts a migrated stream at time `at`: appends a generator for
    /// `spec`, grows every per-stream table, and restarts the closed loop
    /// by scheduling the stream's first arrival. Returns the local slot.
    ///
    /// The injection RNG is derived from the node seed and an injection
    /// counter — never drawn from the node's main RNG stream — so a run
    /// that performs no injections stays bit-identical to one on a build
    /// without migration support.
    ///
    /// # Panics
    ///
    /// Panics on replay (open-loop) drives and if `spec` names a disk the
    /// node does not have.
    pub(crate) fn inject_stream(&mut self, at: SimTime, spec: StreamSpec) -> usize {
        let disks = self.spec.shape.total_disks();
        assert!(spec.disk < disks, "injected stream names disk {} of {disks}", spec.disk);
        let seq = self.migrations;
        self.migrations += 1;
        // SplitMix64 finalizer over (node seed, injection index), salted so
        // it cannot collide with the disk or fault seed streams.
        let mut z =
            self.spec.seed ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x6d69_6772_6174_6531;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        let rng = SimRng::seed_from(z ^ (z >> 31));
        let slot = {
            let Drive::Closed(clients) = &mut self.drive else {
                panic!("stream migration requires closed-loop clients")
            };
            clients.inject_stream(spec, rng)
        };
        debug_assert_eq!(slot, self.stream_bytes.len());
        self.stream_bytes.push(0);
        self.stream_done_at.push(None);
        if let Fe::Linux(disks) = &mut self.fe {
            for d in disks {
                d.ra.push(None);
                d.waiters.push(Vec::new());
            }
        }
        let kick = {
            let Drive::Closed(clients) = &mut self.drive else { unreachable!() };
            clients.kickoff(slot)
        };
        if let Some(r) = kick {
            let net = self.net();
            let id = self.alloc_client_id(r.stream, r.disk, r.lba, r.blocks, at);
            self.q.push(at + net, Ev::Arrive(id));
        }
        slot
    }

    /// `true` while `stream` still has requests to issue.
    pub(crate) fn stream_live(&self, stream: usize) -> bool {
        match &self.drive {
            Drive::Closed(c) => c.stream_live(stream),
            Drive::Replay => false,
        }
    }

    /// When `stream`'s final response reached the client, if it has.
    pub(crate) fn stream_done_at(&self, stream: usize) -> Option<SimTime> {
        self.stream_done_at.get(stream).copied().flatten()
    }

    /// The disk local stream `stream` targets.
    pub(crate) fn stream_disk(&self, stream: usize) -> usize {
        match &self.drive {
            Drive::Closed(c) => c.stream_spec(stream).disk,
            Drive::Replay => 0,
        }
    }

    /// Streams that still have requests to issue.
    pub(crate) fn live_streams(&self) -> usize {
        match &self.drive {
            Drive::Closed(c) => c.live_count(),
            Drive::Replay => 0,
        }
    }

    /// A model-state health view at time `at`. Reads only simulation
    /// state — disk queues, cumulative busy time, the fault plan — never
    /// the opt-in recorder, so polling it cannot perturb results or
    /// depend on whether observability is enabled.
    pub(crate) fn health(&self, at: SimTime) -> crate::sim::HealthSnapshot {
        let disks = self.spec.shape.total_disks();
        let mut queue_depths = Vec::with_capacity(disks);
        let mut busy_time = Vec::with_capacity(disks);
        for c in &self.controllers {
            for p in 0..self.dpc {
                let d = c.disk(p);
                queue_depths.push(d.queue_len());
                busy_time.push(d.metrics().busy_time);
            }
        }
        let straggler_factors = (0..disks)
            .map(|d| self.spec.faults.as_ref().map_or(1.0, |pl| pl.straggler_factor(d, at)))
            .collect();
        let staged_bytes = match &self.fe {
            Fe::Stream(server) => server.memory_used(),
            Fe::Direct | Fe::Linux(_) => 0,
        };
        crate::sim::HealthSnapshot {
            queue_depths,
            busy_time,
            straggler_factors,
            live_streams: self.live_streams(),
            staged_bytes,
        }
    }

    /// Forwards a mid-run retune to the stream scheduler (see
    /// [`NodeSim::retune`](crate::NodeSim::retune)).
    pub(crate) fn retune(
        &mut self,
        dispatch_streams: usize,
        read_ahead_bytes: u64,
        requests_per_residency: u64,
        degraded_rotate_threshold: f64,
    ) -> Result<(), SeqioError> {
        let Fe::Stream(server) = &mut self.fe else {
            return Err(SeqioError::Experiment(
                "retune requires the stream-scheduler frontend".into(),
            ));
        };
        server.retune(
            dispatch_streams,
            read_ahead_bytes,
            requests_per_residency,
            degraded_rotate_threshold,
        )
    }

    // ----- client side ------------------------------------------------

    fn alloc_client_id(
        &mut self,
        stream: usize,
        disk: usize,
        lba: u64,
        blocks: u64,
        sent: SimTime,
    ) -> u64 {
        let meta = ClientMeta { stream, disk, lba, blocks, sent };
        let id = match self.meta_free.pop() {
            Some(id) => {
                self.meta[id as usize] = Some(meta);
                id
            }
            None => {
                self.meta.push(Some(meta));
                self.meta.len() as u64 - 1
            }
        };
        if let Some(obs) = self.obs.as_mut().filter(|o| o.spans_on) {
            let idx = id as usize;
            if obs.slots.len() <= idx {
                obs.slots.resize(idx + 1, PartialSpan::default());
            }
            obs.slots[idx] = PartialSpan::default();
            obs.slots[idx].stamps[SpanPhase::Enqueued.index()] = Some(sent);
        }
        id
    }

    fn net(&self) -> SimDuration {
        self.spec.costs.network_oneway
    }

    fn on_deliver(&mut self, now: SimTime, id: u64, from_memory: bool) {
        let meta = self.meta[id as usize].take().expect("delivery for unknown request");
        self.meta_free.push(id);
        if now >= self.warmup_at && now <= self.stop_at {
            self.stream_bytes[meta.stream] += meta.blocks * 512;
            self.response.record(now.duration_since(meta.sent));
            self.requests_completed += 1;
            if let Some(obs) = self.obs.as_mut().filter(|o| o.spans_on) {
                obs.stamp(id, SpanPhase::Delivered, now);
                let slot = obs.slots[id as usize];
                obs.done.push(SpanRecord {
                    stream: meta.stream,
                    disk: meta.disk,
                    lba: meta.lba,
                    blocks: meta.blocks,
                    from_memory,
                    retries: slot.retries,
                    timed_out: slot.timed_out,
                    stamps: slot.stamps,
                });
            }
            if let Some(trace) = &mut self.trace {
                trace.push(crate::TraceRecord {
                    stream: meta.stream,
                    disk: meta.disk,
                    lba: meta.lba,
                    blocks: meta.blocks,
                    sent: meta.sent,
                    completed: now,
                    from_memory,
                });
            }
        }
        self.last_delivery = now;
        let Drive::Closed(clients) = &mut self.drive else { return };
        if let Some(next) = clients.on_complete(meta.stream) {
            let think = if from_memory {
                self.spec.costs.hit_turnaround
            } else {
                let mean =
                    self.spec.costs.wake_per_stream.as_secs_f64() * self.stream_bytes.len() as f64;
                let jitter = if mean > 0.0 {
                    SimDuration::from_secs_f64(self.rng.exponential(mean))
                } else {
                    SimDuration::ZERO
                };
                self.spec.costs.wake_base + jitter
            };
            let sent = now + think;
            let cid = self.alloc_client_id(next.stream, next.disk, next.lba, next.blocks, sent);
            self.q.push(sent + self.net(), Ev::Arrive(cid));
        } else if !clients.stream_live(meta.stream) {
            // The stream's final response just reached the client: the
            // session is complete end to end (at the storage tier).
            self.stream_done_at[meta.stream] = Some(now);
        }
    }

    // ----- node front ends ----------------------------------------------

    fn on_arrive(&mut self, now: SimTime, id: u64) {
        let meta = self.meta[id as usize].expect("arrival for unknown request");
        match &mut self.fe {
            Fe::Direct => {
                let at = self.charge(now, self.spec.costs.cpu_request);
                if let Some(obs) = self.obs.as_mut() {
                    obs.stamp(id, SpanPhase::DiskIssued, at);
                }
                let write = self.spec.writes;
                self.submit_to_disk(at, meta.disk, meta.lba, meta.blocks, write, Tag::Client(id));
            }
            Fe::Stream(server) => {
                let req = seqio_core::ClientRequest {
                    id,
                    disk: meta.disk,
                    lba: meta.lba,
                    blocks: meta.blocks,
                    write: self.spec.writes,
                };
                let mut outs = std::mem::take(&mut self.server_scratch);
                server.on_client_request_into(now, req, &mut outs);
                self.drain_server_spans();
                self.apply_server_outputs(now, false, &mut outs);
                self.server_scratch = outs;
            }
            Fe::Linux(disks) => {
                let d = &mut disks[meta.disk];
                let ra_cfg = match &self.spec.frontend {
                    Frontend::Linux { readahead, .. } => *readahead,
                    _ => unreachable!("Linux fe implies Linux frontend"),
                };
                let ra = d.ra[meta.stream].get_or_insert_with(|| StreamRa::new(ra_cfg));
                match ra.on_read(meta.lba, meta.blocks) {
                    RaOutcome::Hit { prefetch } => {
                        let at = now + self.spec.costs.cpu_request;
                        self.q.push(at, Ev::Deliver { id, from_memory: true });
                        if let Some((lba, blocks)) = prefetch {
                            d.sched.add(
                                BlockRequest { id: 0, process: meta.stream, lba, blocks },
                                now,
                            );
                        }
                        self.linux_kick(now, meta.disk);
                    }
                    RaOutcome::Blocked => {
                        d.waiters[meta.stream].push(id);
                    }
                    RaOutcome::Miss { lba, blocks } => {
                        d.waiters[meta.stream].push(id);
                        d.sched.add(BlockRequest { id: 0, process: meta.stream, lba, blocks }, now);
                        self.linux_kick(now, meta.disk);
                    }
                }
            }
        }
    }

    /// Applies stream-scheduler outputs, charging server CPU per action.
    /// Drains `outs` so the caller can reuse the buffer. `from_disk` says
    /// whether the outputs came from a disk completion (the span recorder
    /// uses it to tell "data just landed" from "data was already staged").
    fn apply_server_outputs(
        &mut self,
        now: SimTime,
        from_disk: bool,
        outs: &mut Vec<ServerOutput>,
    ) {
        for o in outs.drain(..) {
            match o {
                ServerOutput::SubmitDisk(b) => {
                    let mut cost = self.spec.costs.cpu_request;
                    if b.admitted {
                        cost = cost
                            + self.spec.costs.swap_fixed
                            + self
                                .spec
                                .costs
                                .swap_per_mib
                                .mul_f64(b.blocks as f64 * 512.0 / (1024.0 * 1024.0));
                    }
                    let at = self.charge(now, cost);
                    self.submit_to_disk(at, b.disk, b.lba, b.blocks, b.write, Tag::Backend(b.id));
                }
                ServerOutput::CompleteClient { client, from_memory } => {
                    if let Some(obs) = self.obs.as_mut() {
                        // Data served straight from disk (direct pass-through
                        // or a fill landing) reached the device now; a memory
                        // hit on arrival or GC only proves it was staged.
                        if !from_memory || from_disk {
                            obs.stamp(client, SpanPhase::DiskComplete, now);
                        }
                        obs.stamp(client, SpanPhase::Staged, now);
                    }
                    let at = self.charge(now, self.spec.costs.cpu_completion);
                    self.q.push(at + self.net(), Ev::Deliver { id: client, from_memory });
                }
            }
        }
    }

    /// Refreshes the stream scheduler's per-disk health view from the
    /// fault plan: a disk whose straggler factor meets the configured
    /// threshold has its streams rotated out after each fill instead of
    /// stalling a dispatch slot. No-op on healthy runs.
    fn update_degraded(&mut self, now: SimTime) {
        let Some(plan) = &self.spec.faults else { return };
        let Fe::Stream(server) = &mut self.fe else { return };
        let threshold = server.config().degraded_rotate_threshold;
        for d in 0..self.spec.shape.total_disks() {
            server.set_disk_degraded(d, plan.straggler_factor(d, now) >= threshold);
        }
    }

    /// Serializes work on the (single-threaded) server process.
    fn charge(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        let end = self.cpu_free.max(now) + cost;
        self.cpu_free = end;
        end
    }

    // ----- controller plumbing ------------------------------------------

    fn submit_to_disk(
        &mut self,
        at: SimTime,
        disk: usize,
        lba: u64,
        blocks: u64,
        write: bool,
        tag: Tag,
    ) {
        let ctrl = disk / self.dpc;
        let port = disk % self.dpc;
        let id = match self.tags_free.pop() {
            Some(id) => {
                self.tags[id as usize] = Some(tag);
                id
            }
            None => {
                self.tags.push(Some(tag));
                self.tags.len() as u64 - 1
            }
        };
        let req = HostRequest {
            id: RequestId(id),
            port,
            lba,
            blocks,
            direction: if write { Direction::Write } else { Direction::Read },
        };
        self.q.push(at, Ev::SubmitCtrl { ctrl, req });
    }

    /// Drains `outs` so the caller can reuse the buffer.
    fn map_ctrl_outputs(&mut self, ctrl: usize, outs: &mut Vec<CtrlOutput>) {
        for o in outs.drain(..) {
            match o {
                CtrlOutput::Complete { id, at, retries, timed_out, .. } => {
                    self.q.push(at, Ev::CtrlDone { ctrl, id: id.0, retries, timed_out });
                }
                CtrlOutput::Event { at, event } => {
                    self.q.push(at, Ev::CtrlInternal { ctrl, ev: event });
                }
            }
        }
    }

    fn on_ctrl_done(&mut self, now: SimTime, _ctrl: usize, id: u64, retries: u32, timed_out: bool) {
        let tag = self.tags[id as usize].take().expect("completion for unknown tag");
        self.tags_free.push(id);
        match tag {
            Tag::Client(req) => {
                if let Some(obs) = self.obs.as_mut() {
                    obs.stamp(req, SpanPhase::DiskComplete, now);
                    obs.annotate(req, retries, timed_out);
                }
                let at = self.charge(now, self.spec.costs.cpu_completion);
                self.q.push(at + self.net(), Ev::Deliver { id: req, from_memory: false });
            }
            Tag::Backend(bid) => {
                let spans_on = self.obs.as_ref().is_some_and(|o| o.spans_on);
                if let Fe::Stream(server) = &mut self.fe {
                    if spans_on && (retries > 0 || timed_out) {
                        server.annotate_backend_fault(bid, retries, timed_out);
                    }
                    let mut outs = std::mem::take(&mut self.server_scratch);
                    server.on_disk_complete_into(now, bid, &mut outs);
                    self.drain_server_spans();
                    self.apply_server_outputs(now, true, &mut outs);
                    self.server_scratch = outs;
                }
            }
            Tag::Fetch { disk, stream } => {
                if let Fe::Linux(disks) = &mut self.fe {
                    let d = &mut disks[disk];
                    d.busy = false;
                    d.sched.on_complete(stream, now);
                    if let Some(ra) = &mut d.ra[stream] {
                        ra.on_fetch_complete();
                    }
                    // Take the waiter list out so its capacity is reused by
                    // the next fetch on this stream.
                    let mut waiters = std::mem::take(&mut d.waiters[stream]);
                    for w in waiters.drain(..) {
                        if let Some(obs) = self.obs.as_mut() {
                            obs.stamp(w, SpanPhase::DiskComplete, now);
                            obs.annotate(w, retries, timed_out);
                        }
                        let at = now + self.spec.costs.cpu_completion;
                        self.q.push(at, Ev::Deliver { id: w, from_memory: false });
                    }
                    let Fe::Linux(disks) = &mut self.fe else { unreachable!() };
                    disks[disk].waiters[stream] = waiters;
                }
                self.linux_kick(now, disk);
            }
        }
    }

    // ----- Linux dispatch loop --------------------------------------------

    fn linux_kick(&mut self, now: SimTime, disk: usize) {
        let decision = {
            let Fe::Linux(disks) = &mut self.fe else { return };
            let d = &mut disks[disk];
            if d.busy {
                return;
            }
            match d.sched.next(now) {
                SchedDecision::Dispatch(r) => {
                    d.busy = true;
                    Some(r)
                }
                SchedDecision::WaitUntil(t) => {
                    self.q.push(t.max(now), Ev::LinuxKick { disk });
                    None
                }
                SchedDecision::Idle => None,
            }
        };
        if let Some(r) = decision {
            self.submit_to_disk(
                now,
                disk,
                r.lba,
                r.blocks,
                false,
                Tag::Fetch { disk, stream: r.process },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::NodeShape;
    use seqio_hostsched::{ReadaheadConfig, SchedKind};
    use seqio_simcore::units::{KIB, MIB};

    fn quick(spec: Experiment) -> RunResult {
        spec.run()
    }

    #[test]
    fn direct_single_stream_reaches_streaming_rate() {
        let r = quick(
            Experiment::builder()
                .streams_per_disk(1)
                .warmup(SimDuration::from_millis(500))
                .duration(SimDuration::from_secs(2))
                .build(),
        );
        let t = r.total_throughput_mbs();
        assert!(t > 25.0 && t < 65.0, "single direct stream: {t} MB/s");
        assert!(r.requests_completed > 100);
    }

    #[test]
    fn direct_many_streams_collapse() {
        let one = quick(
            Experiment::builder()
                .streams_per_disk(1)
                .warmup(SimDuration::from_millis(500))
                .duration(SimDuration::from_secs(2))
                .build(),
        );
        let hundred = quick(
            Experiment::builder()
                .streams_per_disk(100)
                .warmup(SimDuration::from_millis(500))
                .duration(SimDuration::from_secs(2))
                .build(),
        );
        let t1 = one.total_throughput_mbs();
        let t100 = hundred.total_throughput_mbs();
        assert!(t100 < t1 / 2.0, "throughput must collapse: 1 stream {t1} vs 100 streams {t100}");
    }

    #[test]
    fn stream_scheduler_restores_throughput() {
        // Warm-up must cover the 100-stream detection transient (~2 s of
        // seek-bound direct requests) before measuring steady state.
        let direct = quick(
            Experiment::builder()
                .streams_per_disk(100)
                .warmup(SimDuration::from_secs(3))
                .duration(SimDuration::from_secs(3))
                .build(),
        );
        let sched = quick(
            Experiment::builder()
                .streams_per_disk(100)
                .frontend(Frontend::stream_scheduler_with_readahead(4 * MIB))
                .warmup(SimDuration::from_secs(3))
                .duration(SimDuration::from_secs(3))
                .build(),
        );
        let td = direct.total_throughput_mbs();
        let ts = sched.total_throughput_mbs();
        assert!(
            ts > 2.0 * td,
            "stream scheduler should be >2x direct at 100 streams: {ts} vs {td}"
        );
        let m = sched.server_metrics.expect("stream fe reports metrics");
        assert!(m.streams_detected >= 90, "detected {}", m.streams_detected);
        assert!(
            m.memory_hits > m.direct_requests,
            "hits {} direct {}",
            m.memory_hits,
            m.direct_requests
        );
    }

    #[test]
    fn linux_frontend_runs_and_degrades_with_streams() {
        let mk = |streams: usize| {
            Experiment::builder()
                .streams_per_disk(streams)
                .request_size(4 * KIB)
                .frontend(Frontend::Linux {
                    scheduler: SchedKind::Anticipatory,
                    readahead: ReadaheadConfig::default(),
                })
                .costs(crate::calibration::CostModel::local_xdd())
                .warmup(SimDuration::from_millis(500))
                .duration(SimDuration::from_secs(2))
                .build()
                .run()
        };
        let few = mk(2).total_throughput_mbs();
        let many = mk(128).total_throughput_mbs();
        assert!(few > 15.0, "2-stream anticipatory: {few} MB/s");
        assert!(many < few, "128 streams ({many}) must be slower than 2 ({few})");
    }

    #[test]
    fn eight_disk_node_scales() {
        let r = quick(
            Experiment::builder()
                .shape(NodeShape::eight_disk())
                .streams_per_disk(1)
                .warmup(SimDuration::from_millis(500))
                .duration(SimDuration::from_secs(2))
                .build(),
        );
        let t = r.total_throughput_mbs();
        assert!(t > 100.0, "8 disks x 1 stream: {t} MB/s");
        assert_eq!(r.per_stream_mbs.len(), 8);
        assert_eq!(r.disk_seeks.len(), 8);
    }

    #[test]
    fn finite_workload_terminates() {
        let r = quick(
            Experiment::builder()
                .streams_per_disk(4)
                .requests_per_stream(50)
                .warmup(SimDuration::ZERO)
                .duration(SimDuration::from_secs(30))
                .build(),
        );
        assert_eq!(r.requests_completed, 200, "all 4 x 50 requests complete");
    }

    #[test]
    fn response_time_grows_with_streams() {
        let few = quick(
            Experiment::builder()
                .streams_per_disk(2)
                .warmup(SimDuration::from_millis(500))
                .duration(SimDuration::from_secs(2))
                .build(),
        );
        let many = quick(
            Experiment::builder()
                .streams_per_disk(60)
                .warmup(SimDuration::from_millis(500))
                .duration(SimDuration::from_secs(2))
                .build(),
        );
        assert!(
            many.mean_response_ms() > few.mean_response_ms(),
            "more streams -> longer responses ({} vs {})",
            many.mean_response_ms(),
            few.mean_response_ms()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            quick(
                Experiment::builder()
                    .streams_per_disk(10)
                    .seed(99)
                    .warmup(SimDuration::from_millis(200))
                    .duration(SimDuration::from_millis(800))
                    .build(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a.bytes_delivered, b.bytes_delivered);
        assert_eq!(a.requests_completed, b.requests_completed);
    }
}

#[cfg(test)]
mod pattern_tests {
    use super::*;
    use crate::experiment::{Experiment, Frontend};
    use seqio_simcore::units::MIB;
    use seqio_workload::Pattern;

    #[test]
    fn near_sequential_streams_still_benefit_from_scheduling() {
        let run = |fe: Option<Frontend>| {
            let mut b = Experiment::builder()
                .streams_per_disk(40)
                .pattern(Pattern::NearSequential { p: 0.1, jitter_blocks: 32 })
                .warmup(SimDuration::from_secs(2))
                .duration(SimDuration::from_secs(2))
                .seed(21);
            if let Some(f) = fe {
                b = b.frontend(f);
            }
            b.run().total_throughput_mbs()
        };
        let direct = run(None);
        let sched = run(Some(Frontend::stream_scheduler_with_readahead(2 * MIB)));
        assert!(
            sched > 1.5 * direct,
            "scheduler should still help near-sequential streams: {sched:.1} vs {direct:.1}"
        );
    }

    #[test]
    fn random_workload_is_passed_through_not_hijacked() {
        let r = Experiment::builder()
            .streams_per_disk(8)
            .pattern(Pattern::Random { span_blocks: 400_000 })
            .frontend(Frontend::stream_scheduler_with_readahead(MIB))
            .requests_per_stream(40)
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(60))
            .seed(22)
            .run();
        assert_eq!(r.requests_completed, 320, "random workload completes");
        let m = r.server_metrics.unwrap();
        assert!(
            m.direct_requests > m.memory_hits,
            "random traffic should mostly bypass staging: direct {} vs hits {}",
            m.direct_requests,
            m.memory_hits
        );
    }

    #[test]
    fn write_workload_completes_and_bypasses_staging() {
        let r = Experiment::builder()
            .streams_per_disk(6)
            .writes(true)
            .requests_per_stream(30)
            .frontend(Frontend::stream_scheduler_with_readahead(MIB))
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(60))
            .seed(23)
            .run();
        assert_eq!(r.requests_completed, 180);
        let m = r.server_metrics.unwrap();
        assert_eq!(m.direct_requests, 180, "writes always go straight to disk");
        assert_eq!(m.memory_hits, 0);
    }

    #[test]
    fn percentiles_are_ordered() {
        let r = Experiment::builder()
            .streams_per_disk(20)
            .warmup(SimDuration::from_millis(500))
            .duration(SimDuration::from_secs(1))
            .seed(24)
            .run();
        assert!(r.p50_response_ms() <= r.p99_response_ms());
        assert!(r.p99_response_ms() > 0.0);
    }

    #[test]
    fn linux_frontend_rejects_writes() {
        use seqio_hostsched::{ReadaheadConfig, SchedKind};
        let e = Experiment::builder()
            .writes(true)
            .frontend(Frontend::Linux {
                scheduler: SchedKind::Noop,
                readahead: ReadaheadConfig::default(),
            })
            .build();
        assert!(e.validate().is_err());
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use crate::experiment::Experiment;

    #[test]
    fn trace_records_every_windowed_completion() {
        let r = Experiment::builder()
            .streams_per_disk(4)
            .requests_per_stream(25)
            .record_trace(true)
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(60))
            .seed(31)
            .run();
        let trace = r.trace.as_ref().expect("tracing enabled");
        assert_eq!(trace.len() as u64, r.requests_completed);
        assert_eq!(trace.len(), 100);
        for rec in trace {
            assert!(rec.completed > rec.sent);
            assert!(rec.stream < 4);
            assert_eq!(rec.blocks, 128);
        }
        // Within a stream, records are sequential in lba.
        let mut last = std::collections::HashMap::new();
        for rec in trace {
            if let Some(prev) = last.insert(rec.stream, rec.lba) {
                assert!(rec.lba > prev, "stream {} went backwards", rec.stream);
            }
        }
        // CSV round trip has the right row count.
        let csv = crate::trace::to_csv(trace);
        assert_eq!(csv.lines().count(), 101);
    }

    #[test]
    fn trace_disabled_by_default() {
        let r = Experiment::builder()
            .streams_per_disk(1)
            .requests_per_stream(5)
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(10))
            .run();
        assert!(r.trace.is_none());
    }
}

#[cfg(test)]
mod replay_tests {
    use super::*;
    use crate::experiment::{Experiment, Frontend};
    use seqio_simcore::units::MIB;

    fn capture() -> crate::RunResult {
        Experiment::builder()
            .streams_per_disk(6)
            .requests_per_stream(30)
            .record_trace(true)
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(60))
            .seed(41)
            .run()
    }

    #[test]
    fn replay_completes_every_recorded_request() {
        let original = capture();
        let trace = original.trace.clone().unwrap();
        let replayed = Experiment::builder()
            .replay(trace.clone())
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(120))
            .seed(42)
            .run();
        assert_eq!(replayed.requests_completed, trace.len() as u64);
        assert_eq!(replayed.bytes_delivered, original.bytes_delivered);
    }

    #[test]
    fn replay_through_a_different_frontend() {
        let trace = capture().trace.unwrap();
        let replayed = Experiment::builder()
            .replay(trace.clone())
            .frontend(Frontend::stream_scheduler_with_readahead(MIB))
            .record_trace(true)
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(120))
            .seed(43)
            .run();
        assert_eq!(replayed.requests_completed, trace.len() as u64);
        let out = replayed.trace.unwrap();
        assert_eq!(out.len(), trace.len());
        // Open loop: send times are preserved from the input trace.
        let mut sent_in: Vec<_> = trace.iter().map(|r| r.sent).collect();
        let mut sent_out: Vec<_> = out.iter().map(|r| r.sent).collect();
        sent_in.sort();
        sent_out.sort();
        assert_eq!(sent_in, sent_out);
    }

    #[test]
    fn empty_replay_rejected() {
        let e = Experiment::builder().replay(Vec::new()).build();
        assert!(e.validate().is_err());
    }
}
