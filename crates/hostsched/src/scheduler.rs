//! Block-layer scheduler abstraction plus the Noop and Deadline policies.

use std::collections::VecDeque;

use seqio_simcore::{SimDuration, SimTime};

/// Block address (512-byte units).
pub type Lba = u64;

/// A request queued at the block layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRequest {
    /// Caller-side identifier.
    pub id: u64,
    /// Submitting process (stream) — the unit of fairness/anticipation.
    pub process: usize,
    /// First block.
    pub lba: Lba,
    /// Length in blocks.
    pub blocks: u64,
}

/// What the scheduler wants the driver to do next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedDecision {
    /// Send this request to the disk.
    Dispatch(BlockRequest),
    /// Keep the disk idle until the given instant (anticipation); if a new
    /// request arrives earlier, ask again.
    WaitUntil(SimTime),
    /// Nothing to do.
    Idle,
}

/// A block-layer I/O scheduler.
///
/// The driver calls [`add`](Self::add) on arrival, [`next`](Self::next)
/// whenever the disk is free, and [`on_complete`](Self::on_complete) when a
/// dispatched request finishes.
pub trait IoScheduler: std::fmt::Debug + Send {
    /// Queues a request.
    fn add(&mut self, req: BlockRequest, now: SimTime);
    /// Picks the next action for a free disk.
    fn next(&mut self, now: SimTime) -> SchedDecision;
    /// Notes that `process`'s dispatched request completed.
    fn on_complete(&mut self, process: usize, now: SimTime);
    /// Number of queued (undispatched) requests.
    fn queued(&self) -> usize;
}

/// The selectable scheduler policies (Linux 2.6.11 era).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedKind {
    /// FIFO with no reordering.
    Noop,
    /// C-LOOK elevator with request-age deadlines.
    Deadline,
    /// Deadline plus deceptive-idleness anticipation.
    Anticipatory,
    /// Per-process queues served round-robin.
    Cfq,
}

impl SchedKind {
    /// Instantiates the policy with its default tunables.
    pub fn build(self) -> Box<dyn IoScheduler> {
        match self {
            SchedKind::Noop => Box::new(Noop::new()),
            SchedKind::Deadline => Box::new(Deadline::new(SimDuration::from_millis(500))),
            SchedKind::Anticipatory => {
                Box::new(crate::anticipatory::Anticipatory::new(SimDuration::from_millis(6)))
            }
            SchedKind::Cfq => Box::new(crate::cfq::Cfq::new(4)),
        }
    }

    /// Human-readable name (used in figure legends).
    pub fn name(self) -> &'static str {
        match self {
            SchedKind::Noop => "noop",
            SchedKind::Deadline => "deadline",
            SchedKind::Anticipatory => "anticipatory",
            SchedKind::Cfq => "cfq",
        }
    }
}

/// FIFO scheduler.
#[derive(Debug, Default)]
pub struct Noop {
    q: VecDeque<BlockRequest>,
}

impl Noop {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }
}

impl IoScheduler for Noop {
    fn add(&mut self, req: BlockRequest, _now: SimTime) {
        self.q.push_back(req);
    }

    fn next(&mut self, _now: SimTime) -> SchedDecision {
        match self.q.pop_front() {
            Some(r) => SchedDecision::Dispatch(r),
            None => SchedDecision::Idle,
        }
    }

    fn on_complete(&mut self, _process: usize, _now: SimTime) {}

    fn queued(&self) -> usize {
        self.q.len()
    }
}

/// C-LOOK elevator with age-based deadlines.
#[derive(Debug)]
pub struct Deadline {
    entries: Vec<(BlockRequest, SimTime)>,
    head: Lba,
    max_age: SimDuration,
}

impl Deadline {
    /// Creates the scheduler; requests older than `max_age` pre-empt the
    /// elevator order.
    pub fn new(max_age: SimDuration) -> Self {
        Deadline { entries: Vec::new(), head: 0, max_age }
    }

    fn pick(&self, now: SimTime) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        // Expired request? Oldest first.
        if let Some((i, _)) = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, (_, at))| now.saturating_duration_since(*at) > self.max_age)
            .min_by_key(|(_, (_, at))| *at)
        {
            return Some(i);
        }
        // C-LOOK: nearest at/above head, else wrap to lowest.
        let up = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, (r, _))| r.lba >= self.head)
            .min_by_key(|(_, (r, _))| r.lba)
            .map(|(i, _)| i);
        up.or_else(|| {
            self.entries.iter().enumerate().min_by_key(|(_, (r, _))| r.lba).map(|(i, _)| i)
        })
    }
}

impl IoScheduler for Deadline {
    fn add(&mut self, req: BlockRequest, now: SimTime) {
        self.entries.push((req, now));
    }

    fn next(&mut self, now: SimTime) -> SchedDecision {
        match self.pick(now) {
            Some(i) => {
                let (r, _) = self.entries.swap_remove(i);
                self.head = r.lba + r.blocks;
                SchedDecision::Dispatch(r)
            }
            None => SchedDecision::Idle,
        }
    }

    fn on_complete(&mut self, _process: usize, _now: SimTime) {}

    fn queued(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, process: usize, lba: Lba) -> BlockRequest {
        BlockRequest { id, process, lba, blocks: 8 }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    #[test]
    fn noop_is_fifo() {
        let mut s = Noop::new();
        s.add(req(1, 0, 900), t(0));
        s.add(req(2, 1, 100), t(0));
        assert_eq!(s.queued(), 2);
        assert!(matches!(s.next(t(1)), SchedDecision::Dispatch(r) if r.id == 1));
        assert!(matches!(s.next(t(1)), SchedDecision::Dispatch(r) if r.id == 2));
        assert_eq!(s.next(t(1)), SchedDecision::Idle);
    }

    #[test]
    fn deadline_sweeps_by_lba() {
        let mut s = Deadline::new(SimDuration::from_millis(500));
        s.add(req(1, 0, 900), t(0));
        s.add(req(2, 1, 100), t(0));
        s.add(req(3, 2, 500), t(0));
        // Head starts at 0: sweep upward 100, 500, 900.
        let order: Vec<u64> = (0..3)
            .map(|_| match s.next(t(1)) {
                SchedDecision::Dispatch(r) => r.id,
                other => panic!("{other:?}"),
            })
            .collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn deadline_ages_out_starved_requests() {
        let mut s = Deadline::new(SimDuration::from_millis(10));
        s.add(req(1, 0, 1_000_000), t(0)); // far away, would starve
        s.add(req(2, 1, 10), t(5));
        // Past the deadline, the old far request is served first.
        assert!(matches!(s.next(t(20)), SchedDecision::Dispatch(r) if r.id == 1));
        assert!(matches!(s.next(t(20)), SchedDecision::Dispatch(r) if r.id == 2));
    }

    #[test]
    fn kind_builds_all_policies() {
        for k in [SchedKind::Noop, SchedKind::Deadline, SchedKind::Anticipatory, SchedKind::Cfq] {
            let mut s = k.build();
            assert_eq!(s.queued(), 0);
            s.add(req(1, 0, 0), t(0));
            assert!(matches!(s.next(t(0)), SchedDecision::Dispatch(_)));
            assert!(!k.name().is_empty());
        }
    }
}
