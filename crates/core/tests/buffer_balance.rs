//! Buffered-set invariants: the paper's memory rule `M >= D * R * N` is a
//! hard configuration error, and every byte staged into the buffered set
//! is eventually consumed or garbage-collected — the pool balances back to
//! zero once a finite workload drains, even when disks are reported
//! degraded mid-run (fault injection's graceful-degradation path).

use seqio_core::{ClientRequest, ServerConfig, ServerOutput, StorageServer};
use seqio_simcore::units::KIB;
use seqio_simcore::SimTime;

#[test]
fn memory_invariant_is_enforced_at_validation() {
    let r = 128 * KIB;
    let ok = ServerConfig {
        dispatch_streams: 4,
        read_ahead_bytes: r,
        requests_per_residency: 8,
        memory_bytes: 4 * r * 8,
        ..ServerConfig::default_tuning()
    };
    assert!(ok.validate().is_ok(), "M == D*R*N is the boundary case and must pass");

    let short = ServerConfig { memory_bytes: 4 * r * 8 - 1, ..ok };
    let err = short.validate().expect_err("M < D*R*N must be rejected");
    assert!(err.to_string().contains("memory invariant violated"), "unexpected error: {err}");
}

/// Drives the server closed-loop with `streams` sequential readers and a
/// disk backend whose completions arrive out of order (a crude stand-in
/// for degraded, retrying disks), optionally flipping disk 0's degraded
/// flag over the middle third of the run. Returns the server after the
/// workload fully drains.
fn drive(streams: u64, reqs_per_stream: u64, degrade_mid_run: bool) -> StorageServer {
    let r = 128 * KIB;
    let cfg = ServerConfig {
        dispatch_streams: 2,
        read_ahead_bytes: r,
        requests_per_residency: 4,
        memory_bytes: 2 * r * 4,
        ..ServerConfig::default_tuning()
    };
    let m = cfg.memory_bytes;
    let mut srv = StorageServer::new(cfg, vec![10_000_000; 2]);

    let total = streams * reqs_per_stream;
    let mut issued = 0u64;
    let mut completed = 0u64;
    let mut cursors = vec![0u64; streams as usize];
    let mut disk_q: Vec<u64> = Vec::new();
    let mut clock = 0u64;
    let mut next_id = 0u64;

    let drain = |outs: Vec<ServerOutput>, disk_q: &mut Vec<u64>, completed: &mut u64| {
        for o in outs {
            match o {
                ServerOutput::SubmitDisk(b) => disk_q.push(b.id),
                ServerOutput::CompleteClient { .. } => *completed += 1,
            }
        }
    };

    while completed < total {
        clock += 97;
        if degrade_mid_run {
            let progress = issued * 3 / total.max(1);
            srv.set_disk_degraded(0, progress == 1);
        }
        if issued < total {
            let s = issued % streams;
            let disk = (s % 2) as usize;
            let lba = s * 1_000_000 + cursors[s as usize];
            cursors[s as usize] += 128;
            let req = ClientRequest::read(next_id, disk, lba, 128);
            next_id += 1;
            issued += 1;
            let outs = srv.on_client_request(SimTime::from_nanos(clock * 1_000), req);
            drain(outs, &mut disk_q, &mut completed);
        }
        assert!(srv.memory_used() <= m, "staging exceeded M");
        // Complete a pending fill/direct request, deliberately out of order.
        if !disk_q.is_empty() {
            let idx = (clock as usize * 31) % disk_q.len();
            let id = disk_q.swap_remove(idx);
            clock += 13;
            let outs = srv.on_disk_complete(SimTime::from_nanos(clock * 1_000), id);
            drain(outs, &mut disk_q, &mut completed);
        } else if issued == total {
            // Stragglers parked behind reclaimed buffers: gc re-issues.
            clock += 60_000_000;
            let outs = srv.on_gc(SimTime::from_nanos(clock * 1_000));
            drain(outs, &mut disk_q, &mut completed);
        }
    }
    assert_eq!(completed, total, "closed loop drains every request exactly once");

    // End of run: everything the streams staged but never consumed must be
    // reclaimable, balancing the pool back to zero.
    clock += 120_000_000;
    let outs = srv.on_gc(SimTime::from_nanos(clock * 1_000));
    assert!(
        !outs.iter().any(|o| matches!(o, ServerOutput::CompleteClient { .. })),
        "no client work may remain after the workload drained"
    );
    srv
}

#[test]
fn staged_bytes_balance_to_zero_after_drain() {
    let srv = drive(6, 40, false);
    assert_eq!(srv.memory_used(), 0, "staged minus consumed/gc'd must balance to zero");
    assert!(srv.metrics().fills_issued > 0, "the run must actually have staged data");
}

#[test]
fn balance_holds_under_degraded_rotation() {
    let srv = drive(6, 40, true);
    assert_eq!(srv.memory_used(), 0, "degraded-rotation churn must not leak staged buffers");
    assert!(
        srv.metrics().degraded_rotations > 0,
        "the degraded window must have rotated at least one stream"
    );
}
