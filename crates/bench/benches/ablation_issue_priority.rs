//! Ablation — issue-path priority in the completion path (paper §4.2).
//!
//! The paper gives the issue path priority over client-request completion so
//! the disks never sit idle while the server answers clients. This ablation
//! flips the ordering and measures the throughput cost when the server CPU
//! is the contended resource (many streams, small read-ahead).

use seqio_bench::{window_secs, Figure, Grid};
use seqio_core::ServerConfig;
use seqio_node::{Experiment, Frontend};
use seqio_simcore::units::KIB;

fn main() {
    let (warmup, duration) = window_secs((4, 4), (8, 8));

    let mut grid = Grid::new();
    for priority in [true, false] {
        let label = if priority { "issue-path first" } else { "completions first" };
        for n in [10usize, 50, 100] {
            let mut cfg = ServerConfig {
                dispatch_streams: 4,
                read_ahead_bytes: 512 * KIB,
                requests_per_residency: 8,
                memory_bytes: 4 * 512 * KIB * 8,
                ..ServerConfig::default_tuning()
            };
            cfg.issue_path_priority = priority;
            grid = grid.point(
                label,
                n.to_string(),
                Experiment::builder()
                    .streams_per_disk(n)
                    .frontend(Frontend::StreamScheduler(cfg))
                    .warmup(warmup)
                    .duration(duration)
                    .seed(2020)
                    .build(),
            );
        }
    }

    let mut fig = Figure::new(
        "Ablation",
        "Issue-path priority on/off (single disk, R=512K, D=4, N=8)",
        "Streams per Disk",
        "Throughput (MBytes/s)",
    );
    grid.run().fill(&mut fig, |r| r.total_throughput_mbs());
    fig.report("ablation_issue_priority");
    let on = fig.series[0].ys();
    let off = fig.series[1].ys();
    println!(
        "issue-path priority delta at 100 streams: {:+.1}%",
        (on.last().unwrap() / off.last().unwrap() - 1.0) * 100.0
    );
}
