//! The feedback-controller contract for closed-loop tuning.
//!
//! A co-simulation driver that steps components in epochs (the cluster
//! rebalancer, the scenario runner's adaptive tuner) polls a controller at
//! every epoch boundary with a read-only observation of model state. The
//! controller may answer with an action for the driver to apply — a
//! retune, a migration plan — or `None` to leave the run untouched.
//!
//! Two properties keep controlled runs deterministic and comparable:
//!
//! * **read-only observation** — the observation must be assembled from
//!   simulation model state (the `HealthSnapshot` path), never from the
//!   opt-in observability recorder, so polling cannot perturb the run;
//! * **inert by default** — a controller whose thresholds never fire
//!   returns `None` at every epoch, and the driver must then produce
//!   results bit-identical to an uncontrolled run.

use crate::time::SimTime;

/// A feedback controller polled at epoch boundaries (see module docs).
///
/// `Obs` is the read-only model-state observation the driver assembles;
/// [`Action`](EpochController::Action) is whatever the driver knows how to
/// apply. Controllers must be deterministic: the same observation sequence
/// yields the same action sequence.
pub trait EpochController<Obs> {
    /// What the controller asks the driver to do.
    type Action;

    /// Observes the model state at epoch boundary `at`; `None` leaves the
    /// run untouched.
    fn epoch(&mut self, at: SimTime, obs: &Obs) -> Option<Self::Action>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    struct EveryOther(u32);
    impl EpochController<u64> for EveryOther {
        type Action = u64;
        fn epoch(&mut self, _at: SimTime, obs: &u64) -> Option<u64> {
            self.0 += 1;
            self.0.is_multiple_of(2).then_some(*obs * 2)
        }
    }

    #[test]
    fn controllers_are_plain_state_machines() {
        let mut c = EveryOther(0);
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        assert_eq!(c.epoch(t, &21), None);
        assert_eq!(c.epoch(t, &21), Some(42));
    }
}
