//! Steppable storage-node simulation.
//!
//! [`NodeSim`] exposes the storage-node engine behind the
//! [`SimComponent`] contract (`init / peek_next_time / advance_to`), so an
//! outer driver — the cluster co-simulation — can advance several nodes on
//! one shared clock, observe their health at epoch boundaries, and migrate
//! live streams between them mid-run. [`Experiment::run`] itself is a thin
//! `init + advance_to(MAX) + finish` over the same engine, so stepping a
//! node in epochs is bit-identical to running it standalone.

use seqio_simcore::{SeqioError, SimComponent, SimDuration, SimTime};
use seqio_workload::StreamSpec;

use crate::experiment::{Experiment, RunResult};
use crate::system::StorageNode;

/// The unissued tail of a live stream, captured by
/// [`NodeSim::retire_stream`] on the source node and adopted by
/// [`NodeSim::inject_stream`] on the target. Opaque to the carrier: the
/// cluster layer moves handoffs between nodes without inspecting them.
#[derive(Debug, Clone, Copy)]
pub struct StreamHandoff {
    pub(crate) remainder: StreamSpec,
}

impl StreamHandoff {
    /// Wraps a freshly generated stream as a handoff, so a client
    /// front-end can attach brand-new sessions to a live node through the
    /// same injection surface migration uses. The spec must be valid.
    ///
    /// # Errors
    ///
    /// Returns the spec's first violated constraint.
    pub fn fresh(spec: StreamSpec) -> Result<StreamHandoff, SeqioError> {
        spec.validate().map_err(SeqioError::component("session stream"))?;
        Ok(StreamHandoff { remainder: spec })
    }

    /// The (node-local) disk index the stream targets. Homogeneous nodes
    /// keep the same index on the target.
    pub fn disk(&self) -> usize {
        self.remainder.disk
    }

    /// Requests left to issue after the handoff point.
    pub fn remaining_requests(&self) -> u64 {
        self.remainder.num_requests
    }
}

/// A point-in-time view of one node's load and degradation, assembled
/// purely from simulation model state (disk queues, cumulative busy time,
/// the fault plan) — never from the opt-in observability recorder. A
/// rebalancer polling this at every epoch therefore cannot perturb the
/// simulation or couple its decisions to whether recording is enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// Requests queued at each disk, in global disk order.
    pub queue_depths: Vec<usize>,
    /// Cumulative mechanism busy time of each disk.
    pub busy_time: Vec<SimDuration>,
    /// Each disk's straggler service-time factor at the snapshot instant
    /// (1.0 = healthy).
    pub straggler_factors: Vec<f64>,
    /// Streams on the node that still have requests to issue.
    pub live_streams: usize,
    /// Bytes currently staged in the stream scheduler's buffered set
    /// (0 on the direct and Linux front ends, which stage nothing). An
    /// adaptive tuner reads this against `M` to judge memory pressure.
    pub staged_bytes: u64,
}

impl HealthSnapshot {
    /// The worst per-disk straggler factor (1.0 when fully healthy).
    pub fn worst_straggler_factor(&self) -> f64 {
        self.straggler_factors.iter().copied().fold(1.0, f64::max)
    }

    /// Total requests queued across all disks.
    pub fn total_queue_depth(&self) -> usize {
        self.queue_depths.iter().sum()
    }
}

/// A steppable storage-node simulation (see module docs).
///
/// # Examples
///
/// Drive a node in 50 ms epochs; the result is bit-identical to
/// [`Experiment::run`]:
///
/// ```
/// use seqio_node::{Experiment, NodeSim};
/// use seqio_simcore::{SimComponent, SimDuration, SimTime};
///
/// let spec = Experiment::builder()
///     .streams_per_disk(4)
///     .warmup(SimDuration::from_millis(100))
///     .duration(SimDuration::from_millis(400))
///     .build();
/// let mut sim = NodeSim::new(&spec).unwrap();
/// sim.init();
/// let mut t = SimTime::ZERO;
/// while sim.peek_next_time().is_some() {
///     t += SimDuration::from_millis(50);
///     sim.advance_to(t);
/// }
/// let stepped = sim.finish();
/// let plain = spec.run();
/// assert_eq!(stepped.bytes_delivered, plain.bytes_delivered);
/// assert_eq!(stepped.events_simulated, plain.events_simulated);
/// ```
#[derive(Debug)]
pub struct NodeSim {
    inner: StorageNode,
}

impl NodeSim {
    /// Validates `spec` and builds the steppable node.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint of the specification.
    pub fn new(spec: &Experiment) -> Result<NodeSim, SeqioError> {
        spec.validate()?;
        Ok(NodeSim { inner: StorageNode::new(spec.clone()) })
    }

    /// Schedules the node's initial events (see [`SimComponent::init`]).
    pub fn init(&mut self) {
        self.inner.init();
    }

    /// When the node next wants to run, or `None` once it is drained or
    /// past its stop time.
    pub fn peek_next_time(&self) -> Option<SimTime> {
        self.inner.peek_next_time()
    }

    /// Handles every pending event with timestamp `<= limit`.
    pub fn advance_to(&mut self, limit: SimTime) {
        self.inner.advance_to(limit);
    }

    /// Consumes the node and assembles its [`RunResult`].
    pub fn finish(self) -> RunResult {
        self.inner.finish()
    }

    /// Retires local stream `stream` for migration: captures its unissued
    /// tail and exhausts the local generator, so the stream issues nothing
    /// further here (an in-flight request still completes, and counts, on
    /// this node). Returns `None` when nothing is left to migrate.
    pub fn retire_stream(&mut self, stream: usize) -> Option<StreamHandoff> {
        self.inner.retire_stream(stream).map(|remainder| StreamHandoff { remainder })
    }

    /// Adopts a migrated stream at time `at` and returns its new local
    /// slot. The injected stream restarts its closed loop immediately;
    /// its RNG derives from the node seed and an injection counter, so
    /// runs that perform no injections are unperturbed.
    pub fn inject_stream(&mut self, at: SimTime, handoff: StreamHandoff) -> usize {
        self.inner.inject_stream(at, handoff.remainder)
    }

    /// `true` while local stream `stream` still has requests to issue.
    pub fn stream_live(&self, stream: usize) -> bool {
        self.inner.stream_live(stream)
    }

    /// When local stream `stream`'s final response reached the client, if
    /// it has finished (the instant the client front-end tier times a
    /// session's storage completion from).
    pub fn stream_done_at(&self, stream: usize) -> Option<SimTime> {
        self.inner.stream_done_at(stream)
    }

    /// The (node-local) disk index local stream `stream` targets.
    pub fn stream_disk(&self, stream: usize) -> usize {
        self.inner.stream_disk(stream)
    }

    /// Streams on the node that still have requests to issue.
    pub fn live_streams(&self) -> usize {
        self.inner.live_streams()
    }

    /// Assembles a [`HealthSnapshot`] at time `at` from model state only.
    pub fn health(&self, at: SimTime) -> HealthSnapshot {
        self.inner.health(at)
    }

    /// Applies a mid-run retune of the stream scheduler's dynamic knobs —
    /// `D`, `R`, `N` and the degraded-rotate threshold — between events.
    /// `M` stays fixed, so the new working set must satisfy
    /// `D * R * N <= M`. The change takes effect on the scheduler's next
    /// admission/issue path; a run whose controller never calls this is
    /// bit-identical to the static tune.
    ///
    /// # Errors
    ///
    /// Rejects invalid tunes (leaving the configuration untouched) and
    /// nodes whose frontend is not the stream scheduler.
    pub fn retune(
        &mut self,
        dispatch_streams: usize,
        read_ahead_bytes: u64,
        requests_per_residency: u64,
        degraded_rotate_threshold: f64,
    ) -> Result<(), SeqioError> {
        self.inner.retune(
            dispatch_streams,
            read_ahead_bytes,
            requests_per_residency,
            degraded_rotate_threshold,
        )
    }
}

impl SimComponent for NodeSim {
    fn init(&mut self) {
        NodeSim::init(self);
    }
    fn peek_next_time(&self) -> Option<SimTime> {
        NodeSim::peek_next_time(self)
    }
    fn advance_to(&mut self, limit: SimTime) {
        NodeSim::advance_to(self, limit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio_simcore::FaultPlan;

    fn spec() -> Experiment {
        Experiment::builder()
            .streams_per_disk(6)
            .requests_per_stream(20)
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(30))
            .seed(5)
            .build()
    }

    fn fingerprint(r: &RunResult) -> (Vec<u64>, u64, u64, u64, Vec<u64>) {
        (
            r.per_stream_mbs.iter().map(|m| m.to_bits()).collect(),
            r.bytes_delivered,
            r.requests_completed,
            r.events_simulated,
            r.per_stream_bytes.clone(),
        )
    }

    #[test]
    fn stepping_is_bit_identical_to_running() {
        let plain = spec().run();
        for epoch_ms in [1u64, 7, 50, 1_000] {
            let mut sim = NodeSim::new(&spec()).unwrap();
            sim.init();
            let mut t = SimTime::ZERO;
            while sim.peek_next_time().is_some() {
                t += SimDuration::from_millis(epoch_ms);
                sim.advance_to(t);
            }
            let stepped = sim.finish();
            assert_eq!(
                fingerprint(&stepped),
                fingerprint(&plain),
                "epoch {epoch_ms}ms diverged from the one-shot run"
            );
            assert_eq!(stepped.window, plain.window);
        }
    }

    #[test]
    fn migration_conserves_the_workload() {
        // Two 1-disk nodes; move every live stream from B to A mid-run.
        let mut a = NodeSim::new(&spec()).unwrap();
        let mut b = NodeSim::new(&spec()).unwrap();
        a.init();
        b.init();
        let cut = SimTime::ZERO + SimDuration::from_millis(200);
        a.advance_to(cut);
        b.advance_to(cut);
        let mut moved = 0;
        for s in 0..6 {
            if let Some(h) = b.retire_stream(s) {
                assert_eq!(h.disk(), 0);
                assert!(h.remaining_requests() > 0);
                a.inject_stream(cut, h);
                moved += 1;
            }
        }
        assert!(moved > 0, "mid-run streams should have work left");
        a.advance_to(SimTime::MAX);
        b.advance_to(SimTime::MAX);
        let ra = a.finish();
        let rb = b.finish();
        // Every one of the 2 x 6 x 20 requests completes somewhere.
        assert_eq!(ra.requests_completed + rb.requests_completed, 2 * 6 * 20);
        assert_eq!(ra.per_stream_bytes.len(), 6 + moved);
        let total: u64 = ra.bytes_delivered + rb.bytes_delivered;
        assert_eq!(total, 2 * 6 * 20 * 64 * 1024);
    }

    #[test]
    fn health_reads_the_fault_plan_at_the_given_instant() {
        let mut e = spec();
        e.faults = Some(FaultPlan::new().straggler(
            0,
            8.0,
            SimDuration::from_millis(500),
            Some(SimDuration::from_millis(500)),
        ));
        let sim = NodeSim::new(&e).unwrap();
        let healthy = sim.health(SimTime::ZERO);
        assert_eq!(healthy.worst_straggler_factor(), 1.0);
        let degraded = sim.health(SimTime::ZERO + SimDuration::from_millis(700));
        assert_eq!(degraded.worst_straggler_factor(), 8.0);
        let recovered = sim.health(SimTime::ZERO + SimDuration::from_millis(1_100));
        assert_eq!(recovered.worst_straggler_factor(), 1.0);
        assert_eq!(healthy.queue_depths.len(), 1);
    }
}
