//! Temporary instrumentation: epoch health of the auto tune per scenario.

use seqio_node::{Frontend, NodeSim};
use seqio_scenario::{matrix_scenario, matrix_template, MatrixScale, ScenarioKind};
use seqio_simcore::{SimDuration, SimTime};

#[test]
#[ignore]
fn dump_epoch_health() {
    let scale = MatrixScale::quick();
    for kind in ScenarioKind::ALL {
        let scenario = matrix_scenario(kind, &scale, 11).unwrap();
        let mut t = matrix_template(&scale, 11);
        t.frontend = Frontend::StreamScheduler(seqio_core::ServerConfig::auto_tune(1 << 30, 8));
        t.faults = scenario.faults.clone();
        let mut sim = NodeSim::new(&t).unwrap();
        seqio_simcore::SimComponent::init(&mut sim);
        let mut ops = scenario.trace.ops.clone();
        ops.sort_by_key(|o| o.at);
        let mut oi = 0;
        let mut slot_of = std::collections::HashMap::new();
        let epoch = SimDuration::from_millis(250);
        let horizon = SimTime::ZERO + scale.warmup + scale.duration;
        let mut tick = SimTime::ZERO + epoch;
        println!("== {}", kind.name());
        let mut prev_busy = SimDuration::ZERO;
        while tick <= horizon {
            while oi < ops.len() && ops[oi].at <= tick {
                let op = ops[oi];
                oi += 1;
                sim.advance_to(op.at);
                match op.kind {
                    seqio_scenario::TraceOpKind::Inject { .. } => {
                        let h = seqio_node::StreamHandoff::fresh(op.spec().unwrap()).unwrap();
                        let slot = sim.inject_stream(op.at, h);
                        slot_of.insert(op.stream, slot);
                    }
                    seqio_scenario::TraceOpKind::Retire => {
                        let slot = slot_of[&op.stream];
                        if sim.stream_live(slot) {
                            let _ = sim.retire_stream(slot);
                        }
                    }
                }
            }
            sim.advance_to(tick);
            let h = sim.health(tick);
            let busy_now: SimDuration = h.busy_time.iter().copied().sum();
            let frac = (busy_now - prev_busy).as_secs_f64()
                / (h.busy_time.len() as f64 * epoch.as_secs_f64());
            prev_busy = busy_now;
            println!(
                "  t={:>4}ms busy={frac:.2} q={:?} live={} staged={}MiB",
                tick.as_millis_f64(),
                h.queue_depths,
                h.live_streams,
                h.staged_bytes >> 20,
            );
            tick += epoch;
        }
    }
}
