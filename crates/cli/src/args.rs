//! Flag parsing utilities (no external dependencies).

use std::collections::BTreeMap;

use seqio_simcore::SimDuration;

/// Parsed command line: positional subcommand plus `--key value` /
/// `--switch` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
}

impl Args {
    /// Parses everything after the subcommand.
    ///
    /// # Errors
    ///
    /// Returns a message on a malformed flag (missing `--`, or a value
    /// flag at the end of the line if it looks like it needed one).
    pub fn parse<I: IntoIterator<Item = String>>(items: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = items.into_iter().peekable();
        while let Some(item) = it.next() {
            let Some(name) = item.strip_prefix("--") else {
                return Err(format!("expected a --flag, found {item:?}"));
            };
            if name.is_empty() {
                return Err("empty flag name".into());
            }
            // `--key=value` or `--key value` or bare switch.
            if let Some((k, v)) = name.split_once('=') {
                out.flags.insert(k.to_string(), v.to_string());
            } else if it.peek().map(|n| !n.starts_with("--")).unwrap_or(false) {
                let v = it.next().expect("peeked");
                out.flags.insert(name.to_string(), v);
            } else {
                out.switches.push(name.to_string());
            }
        }
        Ok(out)
    }

    /// String value of `key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// `true` if the bare switch was given.
    pub fn switch(&self, key: &str) -> bool {
        self.switches.iter().any(|s| s == key)
    }

    /// Integer flag with default.
    ///
    /// # Errors
    ///
    /// Returns a message if the value does not parse.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{key}: expected an integer, got {v:?}")),
        }
    }

    /// Size flag (`64K`, `4M`, `1G`, plain bytes) with default.
    ///
    /// # Errors
    ///
    /// Returns a message if the value does not parse.
    pub fn size_or(&self, key: &str, default: u64) -> Result<u64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => parse_size(v).map_err(|e| format!("--{key}: {e}")),
        }
    }

    /// Duration flag (`8s`, `500ms`, `2m`) with default.
    ///
    /// # Errors
    ///
    /// Returns a message if the value does not parse.
    pub fn duration_or(&self, key: &str, default: SimDuration) -> Result<SimDuration, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => parse_duration(v).map_err(|e| format!("--{key}: {e}")),
        }
    }

    /// All unknown flags (for typo detection).
    pub fn unknown_flags<'a>(&'a self, known: &[&str]) -> Vec<&'a str> {
        self.flags
            .keys()
            .map(String::as_str)
            .chain(self.switches.iter().map(String::as_str))
            .filter(|k| !known.contains(k))
            .collect()
    }
}

/// Parses `64K` / `4M` / `1G` / `512` into bytes (binary units).
///
/// # Errors
///
/// Returns a message on unknown suffixes or non-numeric input.
pub fn parse_size(s: &str) -> Result<u64, String> {
    let t = s.trim();
    let (num, mult) = match t.chars().last() {
        Some('K' | 'k') => (&t[..t.len() - 1], 1024u64),
        Some('M' | 'm') => (&t[..t.len() - 1], 1024 * 1024),
        Some('G' | 'g') => (&t[..t.len() - 1], 1024 * 1024 * 1024),
        Some('B' | 'b') => (&t[..t.len() - 1], 1),
        _ => (t, 1),
    };
    let n: f64 = num.parse().map_err(|_| format!("bad size {s:?}"))?;
    if !(n >= 0.0 && n.is_finite()) {
        return Err(format!("bad size {s:?}"));
    }
    Ok((n * mult as f64).round() as u64)
}

/// Parses `8s` / `500ms` / `2m` / `90` (seconds) into a duration.
///
/// # Errors
///
/// Returns a message on unknown suffixes or non-numeric input.
pub fn parse_duration(s: &str) -> Result<SimDuration, String> {
    let t = s.trim();
    let (num, to_ns) = if let Some(n) = t.strip_suffix("ms") {
        (n, 1e6)
    } else if let Some(n) = t.strip_suffix("us") {
        (n, 1e3)
    } else if let Some(n) = t.strip_suffix('s') {
        (n, 1e9)
    } else if let Some(n) = t.strip_suffix('m') {
        (n, 60e9)
    } else {
        (t, 1e9)
    };
    let v: f64 = num.parse().map_err(|_| format!("bad duration {s:?}"))?;
    if !(v >= 0.0 && v.is_finite()) {
        return Err(format!("bad duration {s:?}"));
    }
    Ok(SimDuration::from_nanos((v * to_ns).round() as u64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_switches_and_equals() {
        let a = Args::parse(["--streams", "30", "--writes", "--request=64K"].map(String::from))
            .unwrap();
        assert_eq!(a.get("streams"), Some("30"));
        assert_eq!(a.get("request"), Some("64K"));
        assert!(a.switch("writes"));
        assert!(!a.switch("reads"));
    }

    #[test]
    fn rejects_non_flags() {
        assert!(Args::parse(["streams".to_string()]).is_err());
        assert!(Args::parse(["--".to_string()]).is_err());
    }

    #[test]
    fn sizes() {
        assert_eq!(parse_size("512").unwrap(), 512);
        assert_eq!(parse_size("64K").unwrap(), 64 * 1024);
        assert_eq!(parse_size("4m").unwrap(), 4 * 1024 * 1024);
        assert_eq!(parse_size("1G").unwrap(), 1 << 30);
        assert_eq!(parse_size("1.5M").unwrap(), 3 * 512 * 1024);
        assert!(parse_size("x").is_err());
        assert!(parse_size("-4K").is_err());
    }

    #[test]
    fn durations() {
        assert_eq!(parse_duration("8s").unwrap(), SimDuration::from_secs(8));
        assert_eq!(parse_duration("500ms").unwrap(), SimDuration::from_millis(500));
        assert_eq!(parse_duration("2m").unwrap(), SimDuration::from_secs(120));
        assert_eq!(parse_duration("90").unwrap(), SimDuration::from_secs(90));
        assert!(parse_duration("soon").is_err());
    }

    #[test]
    fn defaults_and_errors() {
        let a = Args::parse(["--n".to_string(), "abc".to_string()]).unwrap();
        assert!(a.u64_or("n", 1).is_err());
        assert_eq!(a.u64_or("missing", 7).unwrap(), 7);
        assert_eq!(a.size_or("missing", 42).unwrap(), 42);
    }

    #[test]
    fn unknown_flag_detection() {
        let a = Args::parse(["--streams", "3", "--tpyo", "--x=1"].map(String::from)).unwrap();
        let unknown = a.unknown_flags(&["streams"]);
        assert!(unknown.contains(&"tpyo"));
        assert!(unknown.contains(&"x"));
        assert!(!unknown.contains(&"streams"));
    }
}
