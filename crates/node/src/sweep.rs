//! Parallel, deterministic grids of experiments.
//!
//! A [`Sweep`] takes an ordered list of [`Experiment`] points (a figure's
//! x-axis, a parameter grid, an ablation matrix), runs them on a pool of
//! worker threads, and returns the results **in grid order** regardless of
//! which worker finished first. Each point's RNG seed is derived
//! deterministically from the sweep's base seed and the point's index, so
//! a sweep run with one worker and the same sweep run with eight produce
//! bit-identical [`RunResult`]s.
//!
//! ```
//! use seqio_node::{Experiment, Sweep};
//! use seqio_simcore::SimDuration;
//!
//! let report = Sweep::builder()
//!     .points((1..=3).map(|s| {
//!         Experiment::builder()
//!             .streams_per_disk(s)
//!             .warmup(SimDuration::ZERO)
//!             .duration(SimDuration::from_millis(300))
//!             .build()
//!     }))
//!     .base_seed(7)
//!     .jobs(2)
//!     .run();
//! assert_eq!(report.len(), 3);
//! let throughputs: Vec<f64> =
//!     report.results().map(|r| r.total_throughput_mbs()).collect();
//! assert_eq!(throughputs.len(), 3);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::experiment::{Experiment, RunResult};

/// Environment variable overriding the default worker count.
pub const JOBS_ENV: &str = "SEQIO_JOBS";

/// Derives the RNG seed for grid point `index` of a sweep seeded with
/// `base_seed`.
///
/// The derivation is a SplitMix64 step over `base_seed ^ index`, which
/// spreads consecutive indices across the full 64-bit space: neighbouring
/// points never share correlated low bits the way `base_seed + index`
/// would. The function is pure, so the seed of a point depends only on
/// `(base_seed, index)` — never on worker count or completion order.
pub fn derive_seed(base_seed: u64, index: usize) -> u64 {
    let mut z = base_seed ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Resolves the worker count: an explicit override wins, then the
/// `SEQIO_JOBS` environment variable, then the host's available
/// parallelism (at least 1). Shared by the sweep pool and the cluster
/// co-simulation's epoch driver.
pub fn resolve_jobs(explicit: Option<usize>) -> usize {
    if let Some(j) = explicit {
        return j.max(1);
    }
    if let Ok(v) = std::env::var(JOBS_ENV) {
        if let Ok(j) = v.trim().parse::<usize>() {
            return j.max(1);
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// One completed grid point: the spec that ran (with its derived seed
/// already applied) and its result plus wall-clock timing.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// Position in the grid.
    pub index: usize,
    /// The experiment exactly as executed (seed already derived).
    pub spec: Experiment,
    /// The measured outcome.
    pub result: RunResult,
    /// Host wall-clock time this point took.
    pub elapsed: Duration,
}

/// The outcome of [`Sweep::run`]: every point in grid order plus run-wide
/// timing.
#[derive(Debug)]
pub struct SweepReport {
    outcomes: Vec<PointOutcome>,
    /// Host wall-clock time for the whole sweep.
    pub wall: Duration,
    /// Worker threads actually used.
    pub jobs: usize,
}

impl SweepReport {
    /// Number of grid points.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the sweep was empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Outcomes in grid order.
    pub fn outcomes(&self) -> &[PointOutcome] {
        &self.outcomes
    }

    /// Results in grid order.
    pub fn results(&self) -> impl Iterator<Item = &RunResult> {
        self.outcomes.iter().map(|o| &o.result)
    }

    /// Consumes the report, yielding results in grid order.
    pub fn into_results(self) -> Vec<RunResult> {
        self.outcomes.into_iter().map(|o| o.result).collect()
    }

    /// Sum of per-point wall-clock times — with several workers this
    /// exceeds [`wall`](Self::wall), and the ratio is the realized
    /// parallel speedup.
    pub fn cpu_time(&self) -> Duration {
        self.outcomes.iter().map(|o| o.elapsed).sum()
    }
}

/// A validated, ready-to-run grid of experiments. Build with
/// [`Sweep::builder`].
#[derive(Debug)]
pub struct Sweep {
    points: Vec<Experiment>,
    jobs: Option<usize>,
    base_seed: Option<u64>,
    progress: bool,
}

impl Sweep {
    /// Starts an empty builder.
    pub fn builder() -> SweepBuilder {
        SweepBuilder {
            sweep: Sweep { points: Vec::new(), jobs: None, base_seed: None, progress: false },
        }
    }

    /// Runs every point and collects the outcomes in grid order.
    ///
    /// Work is distributed over the worker pool by an atomic cursor, so
    /// scheduling is dynamic; determinism comes from the per-point seed
    /// derivation, not from the schedule.
    ///
    /// # Panics
    ///
    /// Panics if any point's specification is invalid (same contract as
    /// [`Experiment::run`]) or a worker thread dies.
    pub fn run(self) -> SweepReport {
        let jobs = resolve_jobs(self.jobs).min(self.points.len().max(1));
        let total = self.points.len();

        // Apply the derived seeds up front so `spec` in each outcome is
        // exactly what ran and re-running it alone reproduces the point.
        let mut points = self.points;
        if let Some(base) = self.base_seed {
            for (i, p) in points.iter_mut().enumerate() {
                p.seed = derive_seed(base, i);
            }
        }
        for (i, p) in points.iter().enumerate() {
            if let Err(e) = p.validate() {
                panic!("sweep point {i}: {e}");
            }
        }

        let started = Instant::now();
        let cursor = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<PointOutcome>>> =
            Mutex::new((0..total).map(|_| None).collect());
        let progress = self.progress;
        let points = &points;

        crossbeam::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|_| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= total {
                        break;
                    }
                    let spec = points[index].clone();
                    let t0 = Instant::now();
                    let result = spec.run();
                    let elapsed = t0.elapsed();
                    if progress {
                        eprintln!(
                            "sweep: point {}/{} done in {:.2}s",
                            index + 1,
                            total,
                            elapsed.as_secs_f64()
                        );
                    }
                    let outcome = PointOutcome { index, spec, result, elapsed };
                    slots.lock().unwrap_or_else(|e| e.into_inner())[index] = Some(outcome);
                });
            }
        })
        .expect("sweep worker panicked");

        let outcomes: Vec<PointOutcome> = slots
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .into_iter()
            .map(|o| o.expect("every slot filled"))
            .collect();
        let wall = started.elapsed();
        if progress {
            eprintln!(
                "sweep: {total} point(s) on {jobs} worker(s) in {:.2}s (cpu {:.2}s)",
                wall.as_secs_f64(),
                outcomes.iter().map(|o| o.elapsed).sum::<Duration>().as_secs_f64()
            );
        }
        SweepReport { outcomes, wall, jobs }
    }
}

/// Builder for [`Sweep`].
#[derive(Debug)]
pub struct SweepBuilder {
    sweep: Sweep,
}

impl SweepBuilder {
    /// Appends one grid point.
    pub fn point(mut self, spec: Experiment) -> Self {
        self.sweep.points.push(spec);
        self
    }

    /// Appends a whole axis of grid points, in order.
    pub fn points<I: IntoIterator<Item = Experiment>>(mut self, specs: I) -> Self {
        self.sweep.points.extend(specs);
        self
    }

    /// Overrides the worker count (default: `SEQIO_JOBS`, then the host's
    /// available parallelism). Values are clamped to at least 1.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.sweep.jobs = Some(jobs);
        self
    }

    /// Derives every point's seed from `(base_seed, index)` via
    /// [`derive_seed`], overwriting whatever seed the point carried.
    /// Without a base seed, points keep their own seeds.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.sweep.base_seed = Some(seed);
        self
    }

    /// Prints per-point completion lines and a final timing summary to
    /// stderr.
    pub fn progress(mut self, on: bool) -> Self {
        self.sweep.progress = on;
        self
    }

    /// Finalizes the grid without running it.
    pub fn build(self) -> Sweep {
        self.sweep
    }

    /// Builds and runs in one step.
    pub fn run(self) -> SweepReport {
        self.sweep.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio_simcore::SimDuration;

    fn quick(streams: usize) -> Experiment {
        Experiment::builder()
            .streams_per_disk(streams)
            .requests_per_stream(10)
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(30))
            .build()
    }

    #[test]
    fn empty_sweep_is_fine() {
        let report = Sweep::builder().run();
        assert!(report.is_empty());
        assert_eq!(report.len(), 0);
    }

    #[test]
    fn results_come_back_in_grid_order() {
        let report = Sweep::builder().points((1..=5).map(quick)).jobs(3).base_seed(1).run();
        assert_eq!(report.len(), 5);
        for (i, o) in report.outcomes().iter().enumerate() {
            assert_eq!(o.index, i);
            assert_eq!(o.spec.streams_per_disk, i + 1);
            // 10 requests per stream, all completed.
            assert_eq!(o.result.requests_completed, 10 * (i + 1) as u64);
        }
    }

    #[test]
    fn derived_seeds_are_pure_and_distinct() {
        let a: Vec<u64> = (0..16).map(|i| derive_seed(42, i)).collect();
        let b: Vec<u64> = (0..16).map(|i| derive_seed(42, i)).collect();
        assert_eq!(a, b, "derivation is a pure function of (base, index)");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len(), "distinct indices get distinct seeds");
        assert_ne!(derive_seed(42, 0), derive_seed(43, 0), "base seed matters");
    }

    #[test]
    fn base_seed_overwrites_point_seeds() {
        let report = Sweep::builder().points((1..=3).map(quick)).base_seed(9).jobs(1).run();
        for (i, o) in report.outcomes().iter().enumerate() {
            assert_eq!(o.spec.seed, derive_seed(9, i));
        }
        // Without a base seed, the builder seed survives.
        let report = Sweep::builder().point(quick(2)).jobs(1).run();
        assert_eq!(report.outcomes()[0].spec.seed, 1);
    }

    #[test]
    fn jobs_clamp_to_point_count() {
        let report = Sweep::builder().points((1..=2).map(quick)).jobs(16).run();
        assert_eq!(report.jobs, 2);
    }

    #[test]
    #[should_panic(expected = "sweep point 1")]
    fn invalid_point_is_named() {
        let mut bad = quick(1);
        bad.request_bytes = 0;
        Sweep::builder().point(quick(1)).point(bad).run();
    }
}
