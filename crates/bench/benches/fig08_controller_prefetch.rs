//! Figure 8 — Prefetching at the controller level.
//!
//! Paper: 128 MB controller cache, controller read-ahead swept 64K–4M,
//! 1–100 streams, one disk. Moderate prefetch lifts many-stream throughput
//! to near the disk maximum; once `streams x prefetch` exceeds controller
//! memory (4 MB at 60–100 streams), extents are reclaimed before reuse and
//! throughput collapses towards zero.

use seqio_bench::{quick_mode, window_secs, Figure, Grid};
use seqio_node::{Experiment, NodeShape};
use seqio_simcore::units::{format_bytes, KIB, MIB};

fn main() {
    let (warmup, duration) = window_secs((2, 3), (4, 8));
    let prefetch_sizes: Vec<u64> = if quick_mode() {
        vec![64 * KIB, 512 * KIB, MIB, 4 * MIB]
    } else {
        vec![64 * KIB, 256 * KIB, 512 * KIB, MIB, 2 * MIB, 4 * MIB]
    };
    let stream_counts: Vec<usize> =
        if quick_mode() { vec![1, 30, 60, 100] } else { vec![1, 10, 30, 60, 100] };

    let mut grid = Grid::new();
    for &n in &stream_counts {
        let label = format!("{n} Stream{}", if n == 1 { "" } else { "s" });
        for &pf in &prefetch_sizes {
            let mut shape = NodeShape::single_disk();
            shape.controller = shape.controller.with_prefetch(128 * MIB, pf);
            grid = grid.point(
                &label,
                format_bytes(pf),
                Experiment::builder()
                    .shape(shape)
                    .streams_per_disk(n)
                    .request_size(64 * KIB)
                    .warmup(warmup)
                    .duration(duration)
                    .seed(88)
                    .build(),
            );
        }
    }
    let run = grid.run();

    let mut fig = Figure::new(
        "Figure 8",
        "Prefetching at the controller level (128MB controller cache)",
        "Prefetch Size",
        "Throughput (MBytes/s)",
    );
    run.fill(&mut fig, |r| r.total_throughput_mbs());
    fig.report("fig08_controller_prefetch");

    // Wasted-prefetch fractions at the top stream count, from the same runs.
    let top = format!("{} Streams", stream_counts.last().unwrap());
    let waste_at_100: Vec<f64> = run
        .series(&top)
        .map(|(_, r)| {
            let r = r.expect("spec cell");
            r.ctrl_wasted_bytes as f64 / r.ctrl_bytes_from_disks.max(1) as f64
        })
        .collect();

    // Shape checks. (1) One stream is fairly insensitive to controller
    // prefetch (pipelined speculative fetches keep it near media rate).
    let one = fig.series[0].ys();
    let ratio =
        one.iter().cloned().fold(f64::MIN, f64::max) / one.iter().cloned().fold(f64::MAX, f64::min);
    assert!(ratio < 2.0, "1 stream should stay within 2x across prefetch sizes: {one:?}");
    // (2) Moderate prefetch lifts many-stream throughput far above tiny
    // prefetch (the paper's "significant impact").
    let hundred = fig.series.last().unwrap().ys();
    let best = hundred.iter().cloned().fold(f64::MIN, f64::max);
    assert!(best > 2.5 * hundred[0], "good prefetch must far exceed 64K: {hundred:?}");
    // (3) At 4 MB x 100 streams the pool is over-committed (400 MB of
    // working set over 128 MB): evictions must be happening. NOTE: the
    // paper reports a near-zero throughput collapse here; our controller
    // coalesces waiting requests onto in-flight fetches and closed-loop
    // clients drain each extent at memory speed before FIFO replacement
    // reaches it, so the eviction-refetch spiral does not ignite. The
    // divergence is recorded in EXPERIMENTS.md.
    let waste_4m = *waste_at_100.last().unwrap();
    println!(
        "shape ok: 100 streams, 64K prefetch {:.0} MB/s vs best {:.0} MB/s; 4M wasted-byte fraction {:.0}% \
         (paper expects a full collapse at 4M — known divergence)",
        hundred[0],
        best,
        waste_4m * 100.0
    );
}
