//! Property-based integration tests: random experiment configurations and
//! random request sequences must preserve the system's core invariants.

use proptest::prelude::*;
use seqio::core::{ClientRequest, ServerConfig, ServerOutput, StorageServer};
use seqio::node::{Experiment, Frontend};
use seqio::simcore::units::KIB;
use seqio::simcore::{SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any sane experiment configuration completes its finite workload
    /// exactly (conservation), whatever the frontend or geometry knobs.
    #[test]
    fn prop_experiments_conserve_requests(
        streams in 1usize..24,
        req_kib in prop_oneof![Just(4u64), Just(16), Just(64), Just(256)],
        ra_kib in prop_oneof![Just(128u64), Just(512), Just(2048)],
        use_sched in any::<bool>(),
        seed in 0u64..1000,
    ) {
        let reqs = 20u64;
        let mut b = Experiment::builder()
            .streams_per_disk(streams)
            .request_size(req_kib * KIB)
            .requests_per_stream(reqs)
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(120))
            .seed(seed);
        if use_sched {
            b = b.frontend(Frontend::stream_scheduler_with_readahead(ra_kib * KIB));
        }
        let r = b.run();
        prop_assert_eq!(r.requests_completed, streams as u64 * reqs);
        prop_assert_eq!(r.bytes_delivered, streams as u64 * reqs * req_kib * KIB);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fuzz the storage server directly with interleaved sequential and
    /// random readers and an immediate-completion backend:
    /// * every client request completes exactly once;
    /// * staging memory never exceeds `M`;
    /// * the dispatch set never exceeds `D`.
    #[test]
    fn prop_server_invariants_under_fuzz(
        ops in proptest::collection::vec((0usize..6, 0u64..3, 1u64..5), 1..300),
        d in 1usize..5,
        n in 1u64..5,
    ) {
        let cfg = ServerConfig {
            dispatch_streams: d,
            read_ahead_bytes: 128 * KIB,
            requests_per_residency: n,
            memory_bytes: d as u64 * 128 * KIB * n,
            ..ServerConfig::default_tuning()
        };
        let m = cfg.memory_bytes;
        let cap = 10_000_000u64;
        let mut srv = StorageServer::new(cfg, vec![cap; 3]);
        // Per (pseudo-)stream cursors: ops pick a stream, a disk bias and a
        // block count; stream cursors advance sequentially with occasional
        // jumps, giving the classifier a mix of sequential and random traffic.
        let mut cursors = [0u64; 6];
        let mut issued = 0u64;
        let mut completed = 0u64;
        let mut disk_q: Vec<u64> = Vec::new();
        let mut clock = 0u64;
        let mut next_id = 0u64;

        let drain = |outs: Vec<ServerOutput>, disk_q: &mut Vec<u64>, completed: &mut u64| {
            for o in outs {
                match o {
                    ServerOutput::SubmitDisk(b) => disk_q.push(b.id),
                    ServerOutput::CompleteClient { .. } => *completed += 1,
                }
            }
        };

        for (stream, jump, blocks16) in ops {
            clock += 97;
            let disk = stream % 3;
            if jump == 2 {
                cursors[stream] += 10_000; // tear the sequence
            }
            let lba = (stream as u64 * 1_500_000 + cursors[stream]) % (cap - 200);
            let blocks = blocks16 * 16;
            cursors[stream] += blocks;
            let req = ClientRequest::read(next_id, disk, lba, blocks);
            next_id += 1;
            issued += 1;
            let outs = srv.on_client_request(SimTime::from_nanos(clock * 1_000), req);
            drain(outs, &mut disk_q, &mut completed);
            prop_assert!(srv.memory_used() <= m, "memory bound violated");
            prop_assert!(srv.dispatched_streams() <= d, "dispatch bound violated");
            // Complete one pending disk request (out of order now and then).
            if !disk_q.is_empty() {
                let idx = (clock as usize) % disk_q.len();
                let id = disk_q.swap_remove(idx);
                clock += 13;
                let outs = srv.on_disk_complete(SimTime::from_nanos(clock * 1_000), id);
                drain(outs, &mut disk_q, &mut completed);
            }
        }
        // Drain everything outstanding, with periodic GC for stragglers.
        let mut gc_rounds = 0;
        while completed < issued && gc_rounds < 100 {
            if disk_q.is_empty() {
                clock += 60_000_000; // jump a minute: GC reclaims and reissues
                gc_rounds += 1;
                let outs = srv.on_gc(SimTime::from_nanos(clock * 1_000));
                drain(outs, &mut disk_q, &mut completed);
            } else {
                let id = disk_q.remove(0);
                clock += 13;
                let outs = srv.on_disk_complete(SimTime::from_nanos(clock * 1_000), id);
                drain(outs, &mut disk_q, &mut completed);
            }
            prop_assert!(srv.memory_used() <= m, "memory bound violated during drain");
        }
        prop_assert_eq!(completed, issued, "every request completes exactly once");
    }
}
