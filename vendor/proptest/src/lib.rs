//! Offline stub of `proptest`.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a small property-testing harness exposing exactly the `proptest` surface
//! the test suite uses: the `proptest!` macro (with optional
//! `#![proptest_config]`), `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! `prop_oneof!`/`Just`, `any::<T>()`, range and tuple strategies, and
//! `proptest::collection::vec`.
//!
//! Differences from the real crate: cases are generated from a fixed
//! deterministic seed per test (derived from the test's module path), there
//! is no shrinking, and `prop_assume!` skips the remainder of a case
//! instead of resampling. `*.proptest-regressions` files are ignored.

/// Run-time configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic generator driving case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test identifier so every run of a given
    /// test explores the same cases.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: usize) -> usize {
        ((self.next_u64() as u128 * bound as u128) >> 64) as usize
    }
}

/// A value generator: the stub's notion of a proptest strategy.
pub trait Strategy {
    /// Type of generated values.
    type Value;
    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let v = (rng.next_u64() as u128 * span) >> 64;
                self.start + v as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice over boxed strategies — the engine behind `prop_oneof!`.
pub struct Union<T> {
    options: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Union").field("options", &self.options.len()).finish()
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.options.len());
        self.options[i].generate(rng)
    }
}

/// Boxes a strategy for [`Union`], guiding inference in `prop_oneof!`.
pub fn union_option<T, S>(s: S) -> Box<dyn Strategy<Value = T>>
where
    S: Strategy<Value = T> + 'static,
{
    Box::new(s)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy form of [`Arbitrary`]; created by [`any`].
#[derive(Debug, Clone, Default)]
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Inclusive-exclusive length bound for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + if span > 0 { rng.below(span) } else { 0 };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// The `proptest::prelude` glob import.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> = (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = outcome {
                    ::std::panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        cfg.cases,
                        message
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "{} ({:?} vs {:?})",
                ::std::format!($($fmt)+),
                l,
                r
            ));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the rest of a case when its precondition does not hold. The
/// stub counts discarded cases as passes instead of resampling.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice among several strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::union_option($strategy)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let mut c = crate::TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; tuples and vecs compose.
        #[test]
        fn stub_strategies_compose(
            x in 1u64..10,
            pair in (0u32..5, 0.0f64..1.0),
            v in crate::collection::vec(0usize..3, 1..6),
            flag in any::<bool>(),
            pick in prop_oneof![Just(1u8), Just(2), Just(3)],
        ) {
            prop_assert!((1..10).contains(&x));
            prop_assert!(pair.0 < 5 && pair.1 < 1.0);
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 3));
            let _ = flag;
            prop_assert!((1..=3).contains(&pick));
            prop_assume!(x != 0);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }
}
