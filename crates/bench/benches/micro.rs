//! Criterion micro-benchmarks for the hot data structures: the detection
//! bitmap/classifier, the segmented disk cache, the event queue, and one
//! small end-to-end experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use seqio_core::Classifier;
use seqio_disk::{CacheConfig, SegmentedCache};
use seqio_node::Experiment;
use seqio_simcore::{EventQueue, HeapEventQueue, SimDuration, SimTime};

fn bench_classifier(c: &mut Criterion) {
    c.bench_function("classifier_observe_sequential", |b| {
        b.iter_batched(
            || Classifier::new(4096, 192),
            |mut clf| {
                for i in 0..64u64 {
                    std::hint::black_box(clf.observe(0, i * 128, 128, SimTime::ZERO));
                }
                clf
            },
            criterion::BatchSize::SmallInput,
        )
    });
    c.bench_function("classifier_observe_scattered", |b| {
        b.iter_batched(
            || Classifier::new(4096, 192),
            |mut clf| {
                for i in 0..64u64 {
                    std::hint::black_box(clf.observe(0, i * 1_000_000, 128, SimTime::ZERO));
                }
                clf
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("disk_cache_lookup_hit", |b| {
        let mut cache = SegmentedCache::new(CacheConfig {
            segment_count: 32,
            segment_bytes: 256 * 1024,
            read_ahead_bytes: 256 * 1024,
        });
        let t = cache.begin_fill(0, 512, SimTime::ZERO).unwrap();
        cache.commit_fill(t, 0, 512, SimTime::ZERO);
        b.iter(|| std::hint::black_box(cache.lookup(128, 128, SimTime::ZERO)))
    });
    c.bench_function("disk_cache_fill_cycle", |b| {
        let mut cache = SegmentedCache::new(CacheConfig {
            segment_count: 32,
            segment_bytes: 256 * 1024,
            read_ahead_bytes: 256 * 1024,
        });
        let mut lba = 0u64;
        b.iter(|| {
            if let Some(t) = cache.begin_fill(lba, 512, SimTime::ZERO) {
                cache.commit_fill(t, lba, 512, SimTime::ZERO);
            }
            lba += 1_000_000;
        })
    });
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.push(SimTime::from_nanos((i * 2_654_435_761) % 1_000_000), i);
            }
            let mut acc = 0u64;
            while let Some((_, v)) = q.pop() {
                acc = acc.wrapping_add(v);
            }
            std::hint::black_box(acc)
        })
    });
}

/// Event time for slot `i` of `n`, either spread evenly over one second
/// (uniform) or piled into a handful of tight bursts (clustered) — the
/// shape a DES produces when many streams complete at nearly the same
/// instant.
fn event_time(i: u64, clustered: bool) -> u64 {
    if clustered {
        (i % 8) * 100_000_000 + (i * 2_654_435_761) % 20_000
    } else {
        (i * 2_654_435_761) % 1_000_000_000
    }
}

/// Steady-state churn: prefill `n` events, then for each of `n` steps pop
/// the earliest event and push a replacement shortly after it — the access
/// pattern of a running simulation with a stable pending-event population.
macro_rules! queue_churn {
    ($queue:ty, $n:expr, $clustered:expr) => {{
        let n: u64 = $n;
        let mut q = <$queue>::new();
        for i in 0..n {
            q.push(SimTime::from_nanos(event_time(i, $clustered)), i);
        }
        let mut acc = 0u64;
        for i in 0..n {
            let (t, v) = q.pop().expect("queue prefilled");
            acc = acc.wrapping_add(v);
            q.push(t + SimDuration::from_nanos(1 + (i * 48_271) % 1_000_000), i);
        }
        while let Some((_, v)) = q.pop() {
            acc = acc.wrapping_add(v);
        }
        std::hint::black_box(acc)
    }};
}

fn bench_queue_comparison(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_compare");
    for &(n, label) in &[(1_000u64, "1k"), (100_000u64, "100k")] {
        if n >= 100_000 {
            g.sample_size(10);
        }
        for &(clustered, dist) in &[(false, "uniform"), (true, "clustered")] {
            g.bench_function(&format!("calendar_{label}_{dist}"), |b| {
                b.iter(|| queue_churn!(EventQueue<u64>, n, clustered))
            });
            g.bench_function(&format!("heap_{label}_{dist}"), |b| {
                b.iter(|| queue_churn!(HeapEventQueue<u64>, n, clustered))
            });
        }
    }
    g.finish();
}

fn bench_experiment(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end");
    g.sample_size(10);
    g.bench_function("small_direct_experiment", |b| {
        b.iter(|| {
            Experiment::builder()
                .streams_per_disk(10)
                .warmup(SimDuration::from_millis(100))
                .duration(SimDuration::from_millis(400))
                .seed(3)
                .run()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_classifier,
    bench_cache,
    bench_event_queue,
    bench_queue_comparison,
    bench_experiment
);
criterion_main!(benches);
