//! Property tests for the cluster stream router: purity, hash-deal
//! balance, straggler avoidance and range contiguity, over randomized
//! node counts, stream counts, health vectors and capacities.

use proptest::prelude::*;
use seqio_cluster::{NodeHealth, Router, ShardPolicy};

/// The degraded threshold used throughout: matches the stream
/// scheduler's `degraded_rotate_threshold` default.
const THRESHOLD: f64 = 2.0;

fn router(policy: ShardPolicy, degraded: &[bool]) -> Router {
    let health: Vec<NodeHealth> = degraded
        .iter()
        .map(|&d| NodeHealth { worst_straggler_factor: if d { 4.0 } else { 1.0 } })
        .collect();
    Router::new(policy, degraded.len()).with_health(health).with_threshold(THRESHOLD)
}

proptest! {
    /// Sharding is a pure function of (policy, K, S, health, capacity):
    /// recomputing the assignment — as a different worker or a later
    /// process would — yields the identical vector, and every stream
    /// lands on a real node.
    #[test]
    fn prop_assignment_is_pure_and_total(
        nodes in 1usize..9,
        streams in 0usize..400,
        policy_pick in 0usize..3,
        degraded in proptest::collection::vec(any::<bool>(), 1..9),
    ) {
        let policy = [
            ShardPolicy::HashByStream,
            ShardPolicy::RangeByOffset,
            ShardPolicy::StragglerAware,
        ][policy_pick];
        let degraded: Vec<bool> = (0..nodes).map(|k| *degraded.get(k).unwrap_or(&false)).collect();
        let r = router(policy, &degraded);
        let a = r.assign(streams);
        let b = r.assign(streams);
        prop_assert_eq!(&a, &b, "assignment must be reproducible");
        prop_assert_eq!(a.len(), streams);
        prop_assert!(a.iter().all(|&k| k < nodes), "stream routed past node count");
    }

    /// The hash policy balances within the promised ±20% of the ideal
    /// S/K share for 64 or more streams (the rank-based deal actually
    /// achieves ±1 stream, well inside the contract).
    #[test]
    fn prop_hash_balances_within_20_percent(
        nodes in 1usize..9,
        streams in 64usize..512,
    ) {
        let r = Router::new(ShardPolicy::HashByStream, nodes);
        let loads = r.node_loads(streams);
        prop_assert_eq!(loads.iter().sum::<usize>(), streams);
        let ideal = streams as f64 / nodes as f64;
        for (k, &l) in loads.iter().enumerate() {
            prop_assert!(
                (l as f64 - ideal).abs() <= 0.2 * ideal,
                "node {} holds {} streams, ideal {:.1} (K={}, S={})",
                k, l, ideal, nodes, streams
            );
            prop_assert!((l as f64 - ideal).abs() <= 1.0, "deal is exact to ±1");
        }
    }

    /// The straggler-aware policy never routes a stream to a node flagged
    /// past the degraded threshold while any healthy node still has
    /// capacity: a degraded node carrying load implies every healthy node
    /// is full.
    #[test]
    fn prop_straggler_aware_spares_degraded_nodes(
        nodes in 2usize..9,
        streams in 1usize..400,
        cap_slots in 1usize..80,
        use_cap in any::<bool>(),
        degraded_seed in proptest::collection::vec(any::<bool>(), 8),
    ) {
        let degraded: Vec<bool> =
            (0..nodes).map(|k| degraded_seed[k % degraded_seed.len()]).collect();
        prop_assume!(degraded.iter().any(|&d| !d));
        let mut r = router(ShardPolicy::StragglerAware, &degraded);
        if use_cap {
            r = r.with_capacity(cap_slots);
        }
        let cap = if use_cap { cap_slots } else { usize::MAX };
        let loads = r.node_loads(streams);
        prop_assert_eq!(loads.iter().sum::<usize>(), streams, "no stream may be dropped");
        for k in 0..nodes {
            if degraded[k] && loads[k] > 0 {
                for h in 0..nodes {
                    if !degraded[h] {
                        prop_assert!(
                            loads[h] >= cap,
                            "degraded node {} got {} streams while healthy node {} \
                             had {}/{} capacity used",
                            k, loads[k], h, loads[h], cap
                        );
                    }
                }
            }
        }
    }

    /// With every node healthy, the straggler-aware deal degenerates to
    /// the hash deal exactly — health consultation must cost nothing.
    #[test]
    fn prop_straggler_aware_matches_hash_when_healthy(
        nodes in 1usize..9,
        streams in 0usize..300,
    ) {
        let aware = Router::new(ShardPolicy::StragglerAware, nodes).assign(streams);
        let hash = Router::new(ShardPolicy::HashByStream, nodes).assign(streams);
        prop_assert_eq!(aware, hash);
    }

    /// Range-by-offset assigns monotonically non-decreasing nodes over
    /// the global id axis (contiguous ranges), covers every node when
    /// S >= K, and balances to within one stream.
    #[test]
    fn prop_range_is_contiguous(
        nodes in 1usize..9,
        streams in 1usize..400,
    ) {
        let r = Router::new(ShardPolicy::RangeByOffset, nodes);
        let a = r.assign(streams);
        for w in a.windows(2) {
            prop_assert!(w[0] <= w[1], "range shards must be contiguous");
        }
        let loads = r.node_loads(streams);
        if streams >= nodes {
            prop_assert!(loads.iter().all(|&l| l > 0), "every node serves a range");
        }
        let (min, max) = (loads.iter().min().unwrap(), loads.iter().max().unwrap());
        prop_assert!(max - min <= 1, "ranges differ by more than one stream: {:?}", loads);
    }
}
