//! Figure 2 — Linux I/O scheduler performance for concurrent sequential
//! readers.
//!
//! Paper: xdd on ext3, 4 KB reads, one disk, 1–256 streams; anticipatory,
//! CFQ and noop schedulers. All degrade sharply beyond 16 streams; the
//! anticipatory scheduler is best but still loses ~4x by 256 streams.

use seqio_bench::{quick_mode, window_secs, Figure, Grid};
use seqio_hostsched::{ReadaheadConfig, SchedKind};
use seqio_node::{CostModel, Experiment, Frontend};
use seqio_simcore::units::KIB;

fn main() {
    let (warmup, duration) = window_secs((2, 3), (3, 6));
    let streams: Vec<usize> =
        if quick_mode() { vec![1, 4, 16, 64, 256] } else { vec![1, 2, 4, 8, 16, 32, 64, 128, 256] };

    let mut grid = Grid::new();
    for kind in [SchedKind::Anticipatory, SchedKind::Cfq, SchedKind::Noop] {
        let label = format!("{} scheduler", kind.name());
        for &n in &streams {
            grid = grid.point(
                &label,
                n.to_string(),
                Experiment::builder()
                    .streams_per_disk(n)
                    .request_size(4 * KIB)
                    .frontend(Frontend::Linux {
                        scheduler: kind,
                        readahead: ReadaheadConfig::default(),
                    })
                    .costs(CostModel::local_xdd())
                    .warmup(warmup)
                    .duration(duration)
                    .seed(22)
                    .build(),
            );
        }
    }

    let mut fig = Figure::new(
        "Figure 2",
        "I/O scheduler performance (xdd, 4KB reads, one disk)",
        "Concurrent Seq. Streams",
        "Aggr. Read Throughput (MBytes/s)",
    );
    grid.run().fill(&mut fig, |r| r.total_throughput_mbs());
    fig.report("fig02_linux_sched");

    // Shape checks: anticipatory dominates at high stream counts, and even
    // it loses a large factor from 1 stream to 256.
    let antic = fig.series[0].ys();
    let noop = fig.series[2].ys();
    let last = antic.len() - 1;
    assert!(antic[last] >= noop[last], "anticipatory must win at 256 streams");
    let factor = antic[0] / antic[last];
    assert!(factor > 2.5, "anticipatory should lose >2.5x by 256 streams, lost {factor:.1}x");
    println!("shape ok: anticipatory loses {factor:.1}x at 256 streams (paper: ~4x)");
}
