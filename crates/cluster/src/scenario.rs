//! One typed construction surface for single-node and cluster runs.
//!
//! Historically a single-node study was set up through
//! [`Experiment::builder`](seqio_node::Experiment::builder) and a cluster
//! study through [`ClusterExperiment::builder`](crate::ClusterExperiment::builder),
//! with the fault / observability / layout / seed knobs spelled slightly
//! differently on each. [`ScenarioBuilder`] unifies them: every scenario
//! is a cluster, a single-node study is literally a 1-node cluster (which
//! the equivalence oracle keeps bit-identical to a plain `Experiment`
//! run), and **all** validation happens at [`build`](ScenarioBuilder::build)
//! time as a typed [`SeqioError`] instead of a panic mid-run.
//!
//! The two historical builders remain supported entry points for code
//! that drives one layer directly, but new call sites should prefer
//! `Scenario` — the examples and the CLI construct everything through it.

use seqio_node::{CostModel, Experiment, Frontend, NodeShape, RunResult};
use seqio_simcore::{FaultPlan, ObsConfig, SeqioError, SimDuration};

use crate::cluster::{ClusterExperiment, ClusterResult};
use crate::rebalance::RebalanceConfig;
use crate::router::ShardPolicy;

/// A validated, ready-to-run scenario. Build with [`Scenario::builder`].
///
/// Internally every scenario is a [`ClusterExperiment`]; a single-node
/// scenario is a 1-node identity cluster, so the single-node and cluster
/// code paths are one and the same.
#[derive(Debug, Clone)]
pub struct Scenario {
    cluster: ClusterExperiment,
}

impl Scenario {
    /// Starts a builder: one healthy node, identity routing, template
    /// defaults from [`Experiment::builder`].
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder { cluster: ClusterExperiment::builder().build(), faults: None }
    }

    /// The underlying cluster specification.
    pub fn cluster(&self) -> &ClusterExperiment {
        &self.cluster
    }

    /// Consumes the scenario, yielding the cluster specification.
    pub fn into_cluster(self) -> ClusterExperiment {
        self.cluster
    }

    /// Number of storage nodes.
    pub fn nodes(&self) -> usize {
        self.cluster.nodes
    }

    /// Runs the scenario through the shared-clock cluster driver.
    ///
    /// # Errors
    ///
    /// Returns the first specification error ([`ScenarioBuilder::build`]
    /// already validated, so this only fails if the specification was
    /// mutated afterwards).
    pub fn run(&self) -> Result<ClusterResult, SeqioError> {
        self.cluster.run()
    }

    /// Runs the scenario and unwraps the single node's own
    /// [`RunResult`] — the convenience path for 1-node studies that
    /// read node-level detail (traces, spans, disk counters).
    ///
    /// # Errors
    ///
    /// Returns a [`SeqioError`] if the scenario has more than one node,
    /// or the first specification error.
    pub fn run_node(&self) -> Result<RunResult, SeqioError> {
        if self.cluster.nodes != 1 {
            return Err(SeqioError::Experiment(format!(
                "run_node() is for 1-node scenarios; this one has {} nodes (use run())",
                self.cluster.nodes
            )));
        }
        let mut result = self.cluster.run()?;
        result
            .nodes
            .remove(0)
            .result
            .ok_or_else(|| SeqioError::Experiment("the single node received no streams".into()))
    }
}

/// Builder for [`Scenario`] — the one construction surface shared by
/// single-node and cluster studies (see module docs).
///
/// # Examples
///
/// A single-node study with faults and observability, as a 1-node
/// cluster:
///
/// ```
/// use seqio_cluster::Scenario;
/// use seqio_simcore::{FaultPlan, SimDuration};
///
/// let result = Scenario::builder()
///     .streams_per_disk(4)
///     .requests_per_stream(8)
///     .warmup(SimDuration::ZERO)
///     .duration(SimDuration::from_secs(30))
///     .seed(7)
///     .faults(FaultPlan::new().read_errors(0, 0.01))
///     .build()
///     .unwrap()
///     .run()
///     .unwrap();
/// assert_eq!(result.per_stream_mbs.len(), 4);
/// ```
///
/// The same surface scales out; invalid combinations surface at build
/// time as typed errors, not mid-run panics:
///
/// ```
/// use seqio_cluster::{Scenario, ShardPolicy};
///
/// let err = Scenario::builder()
///     .nodes(2)
///     .policy(ShardPolicy::HashByStream)
///     .stream_counts(vec![3])
///     .build()
///     .unwrap_err();
/// assert!(err.to_string().contains("1-node"));
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    cluster: ClusterExperiment,
    /// Whole-scenario fault plan, only legal on a 1-node scenario where
    /// it is exactly "node 0's plan". Kept separate until `build` so the
    /// nodes() knob can be applied in any order.
    faults: Option<FaultPlan>,
}

impl ScenarioBuilder {
    // ---- per-node template ------------------------------------------

    /// Replaces the whole per-node template — the escape hatch for
    /// knobs without a dedicated setter (access pattern, writes, trace
    /// replay). Template-level faults/layout still validate at build.
    pub fn template(mut self, t: Experiment) -> Self {
        self.cluster.template = t;
        self
    }

    /// Sets the node hardware shape.
    pub fn shape(mut self, shape: NodeShape) -> Self {
        self.cluster.template.shape = shape;
        self
    }

    /// Sets a uniform per-disk stream count (per node).
    pub fn streams_per_disk(mut self, n: usize) -> Self {
        self.cluster.template.streams_per_disk = n;
        self
    }

    /// Sets an explicit per-disk stream layout. Only valid on a 1-node
    /// scenario — across nodes the router owns the layout — and checked
    /// at [`build`](Self::build).
    pub fn stream_counts(mut self, counts: Vec<usize>) -> Self {
        self.cluster.template.stream_counts = Some(counts);
        self
    }

    /// Sets the client request size in bytes.
    pub fn request_size(mut self, bytes: u64) -> Self {
        self.cluster.template.request_bytes = bytes;
        self
    }

    /// Bounds each stream to a finite request batch.
    pub fn requests_per_stream(mut self, n: u64) -> Self {
        self.cluster.template.requests_per_stream = Some(n);
        self
    }

    /// Selects the per-node front end.
    pub fn frontend(mut self, f: Frontend) -> Self {
        self.cluster.template.frontend = f;
        self
    }

    /// Overrides the device cost model.
    pub fn costs(mut self, c: CostModel) -> Self {
        self.cluster.template.costs = c;
        self
    }

    /// Sets the measurement warmup.
    pub fn warmup(mut self, d: SimDuration) -> Self {
        self.cluster.template.warmup = d;
        self
    }

    /// Sets the measured duration after warmup.
    pub fn duration(mut self, d: SimDuration) -> Self {
        self.cluster.template.duration = d;
        self
    }

    /// Sets the RNG seed (per node; multi-node scenarios usually derive
    /// per-node seeds from [`base_seed`](Self::base_seed) instead).
    pub fn seed(mut self, s: u64) -> Self {
        self.cluster.template.seed = s;
        self
    }

    /// Enables per-request completion tracing on every node.
    pub fn record_trace(mut self, on: bool) -> Self {
        self.cluster.template.record_trace = on;
        self
    }

    /// Enables opt-in observability (spans, metric sampling) on every
    /// node.
    pub fn observe(mut self, cfg: ObsConfig) -> Self {
        self.cluster.template.obs = Some(cfg);
        self
    }

    // ---- faults ------------------------------------------------------

    /// Installs the scenario's fault plan. On a 1-node scenario this is
    /// node 0's plan; on a multi-node scenario faults are per node, so
    /// [`build`](Self::build) rejects this in favour of
    /// [`node_fault`](Self::node_fault).
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Installs a fault plan on one node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is past the configured node count (call
    /// [`nodes`](Self::nodes) first).
    pub fn node_fault(mut self, node: usize, plan: FaultPlan) -> Self {
        assert!(node < self.cluster.nodes, "node {node} past cluster size {}", self.cluster.nodes);
        self.cluster.node_faults[node] = Some(plan);
        self
    }

    // ---- cluster shape ----------------------------------------------

    /// Sets the node count (resizes the per-node fault table).
    pub fn nodes(mut self, k: usize) -> Self {
        self.cluster.nodes = k;
        self.cluster.node_faults.resize(k, None);
        self
    }

    /// Sets the stream sharding policy.
    pub fn policy(mut self, p: ShardPolicy) -> Self {
        self.cluster.policy = p;
        self
    }

    /// Derives per-node seeds from a cluster base seed.
    pub fn base_seed(mut self, seed: u64) -> Self {
        self.cluster.base_seed = Some(seed);
        self
    }

    /// Overrides the co-simulation worker count.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.cluster.jobs = Some(jobs);
        self
    }

    /// Overrides the degraded threshold for straggler-aware routing.
    pub fn degraded_threshold(mut self, t: f64) -> Self {
        self.cluster.degraded_threshold = t;
        self
    }

    /// Caps the streams any single node accepts under the
    /// straggler-aware deal.
    pub fn capacity_per_node(mut self, cap: usize) -> Self {
        self.cluster.capacity_per_node = Some(cap);
        self
    }

    /// Enables mid-run stream rebalancing.
    pub fn rebalance(mut self, cfg: RebalanceConfig) -> Self {
        self.cluster.rebalance = Some(cfg);
        self
    }

    // ---- finish ------------------------------------------------------

    /// Validates the whole specification and seals it.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint — template, fault table,
    /// layout, router and rebalancer are all checked here, so a built
    /// [`Scenario`] always runs to completion.
    pub fn build(mut self) -> Result<Scenario, SeqioError> {
        if let Some(plan) = self.faults.take() {
            if self.cluster.nodes != 1 {
                return Err(SeqioError::Experiment(format!(
                    "faults(plan) names the whole scenario and needs exactly 1 node; \
                     this one has {} — use node_fault(k, plan)",
                    self.cluster.nodes
                )));
            }
            if self.cluster.node_faults[0].is_some() {
                return Err(SeqioError::Experiment(
                    "both faults(plan) and node_fault(0, plan) were set; pick one".into(),
                ));
            }
            self.cluster.node_faults[0] = Some(plan);
        }
        self.cluster.validate()?;
        Ok(Scenario { cluster: self.cluster })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rebalance::RebalanceConfig;

    fn quick() -> ScenarioBuilder {
        Scenario::builder()
            .streams_per_disk(4)
            .requests_per_stream(8)
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(30))
            .seed(7)
    }

    #[test]
    fn one_node_scenario_matches_the_plain_experiment() {
        let scenario = quick().build().unwrap();
        assert_eq!(scenario.nodes(), 1);
        let cluster = scenario.run().unwrap();
        let plain = Experiment::builder()
            .streams_per_disk(4)
            .requests_per_stream(8)
            .warmup(SimDuration::ZERO)
            .duration(SimDuration::from_secs(30))
            .seed(7)
            .run();
        let cluster_bits: Vec<u64> = cluster.per_stream_mbs.iter().map(|m| m.to_bits()).collect();
        let plain_bits: Vec<u64> = plain.per_stream_mbs.iter().map(|m| m.to_bits()).collect();
        assert_eq!(cluster_bits, plain_bits);
        assert_eq!(cluster.bytes_delivered, plain.bytes_delivered);
    }

    #[test]
    fn run_node_unwraps_the_single_result() {
        let r = quick().build().unwrap().run_node().unwrap();
        assert_eq!(r.per_stream_mbs.len(), 4);
        let err = quick()
            .nodes(2)
            .policy(ShardPolicy::HashByStream)
            .build()
            .unwrap()
            .run_node()
            .unwrap_err();
        assert!(err.to_string().contains("1-node"));
    }

    #[test]
    fn stream_counts_work_on_one_node_only() {
        let r = quick().stream_counts(vec![3]).build().unwrap().run_node().unwrap();
        assert_eq!(r.per_stream_mbs.len(), 3);
        let err = quick()
            .nodes(2)
            .policy(ShardPolicy::HashByStream)
            .stream_counts(vec![3])
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("1-node cluster"));
    }

    #[test]
    fn whole_scenario_faults_need_one_node() {
        let plan = FaultPlan::new().read_errors(0, 0.01);
        assert!(quick().faults(plan.clone()).build().is_ok());
        let err = quick().nodes(2).policy(ShardPolicy::HashByStream).faults(plan.clone()).build();
        assert!(err.is_err());
        let err = quick().faults(plan.clone()).node_fault(0, plan).build().unwrap_err();
        assert!(err.to_string().contains("pick one"));
    }

    #[test]
    fn build_time_validation_is_typed() {
        // Zero-byte requests: caught at build, not run.
        let err = quick().request_size(0).build().unwrap_err();
        assert!(!err.to_string().is_empty());
        // Bad rebalance config too.
        let err = quick().rebalance(RebalanceConfig::new(SimDuration::ZERO)).build().unwrap_err();
        assert!(err.to_string().contains("interval"));
    }
}
