//! Regression guard for the committed figure data: recomputes a small
//! subset of `bench_results/fig01_collapse.csv` from the current build and
//! fails if the committed full-mode numbers drift from what the code now
//! produces. Cheap on purpose — two cells of the figure, chosen from the
//! low-throughput corner so the simulated event count stays small.

use seqio_node::{Experiment, NodeShape};
use seqio_simcore::units::KIB;
use seqio_simcore::SimDuration;

/// Loads a cell of the committed CSV by row label and column header.
fn committed_cell(row: &str, column: &str) -> String {
    let path = seqio_bench::results_dir().join("fig01_collapse.csv");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut lines = text.lines();
    let header: Vec<&str> = lines.next().expect("csv header").split(',').collect();
    let col = header.iter().position(|h| *h == column).unwrap_or_else(|| {
        panic!(
            "no column {column:?} in {header:?} — if a quick-mode `cargo bench` \
             overwrote {}, restore it with git or regenerate with \
             `SEQIO_BENCH_FULL=1 cargo bench`",
            path.display()
        )
    });
    for line in lines {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.first() == Some(&row) {
            return cells[col].to_string();
        }
    }
    panic!("no row {row:?} in {}", path.display());
}

/// Recomputes one full-figure cell with the exact spec the bench uses in
/// full mode (`SEQIO_BENCH_FULL=1`): 60 disks, seed 11, 4 s warmup, 8 s
/// measured window. `Figure::report` writes y values with `{:.4}`.
fn recomputed_cell(streams_per_disk: usize, request_size: u64) -> String {
    let r = Experiment::builder()
        .shape(NodeShape::sixty_disk())
        .streams_per_disk(streams_per_disk)
        .request_size(request_size)
        .warmup(SimDuration::from_secs(4))
        .duration(SimDuration::from_secs(8))
        .seed(11)
        .run();
    format!("{:.4}", r.total_throughput_mbs())
}

#[test]
fn fig01_committed_csv_matches_current_build() {
    // 256K row: the collapsed stream counts deliver under 1 GB/s, so these
    // are the cheapest cells of the figure to re-simulate.
    for (column, per_disk) in [("120 Streams", 2), ("300 Streams", 5)] {
        let committed = committed_cell("256K", column);
        let current = recomputed_cell(per_disk, 256 * KIB);
        assert_eq!(
            current, committed,
            "bench_results/fig01_collapse.csv cell (256K, {column}) drifted from the \
             current build; regenerate the figure CSVs with \
             `SEQIO_BENCH_FULL=1 cargo bench` and commit the result"
        );
    }
}
