//! Per-region detection bitmaps.
//!
//! The classifier allocates a small bitmap around the first request it sees
//! in a disk region: one bit per block over `[base, base + len)`. Each
//! subsequent request in the range sets its blocks' bits; when enough
//! distinct blocks are set, the region is declared a sequential stream
//! (paper §4.1). Dynamically-allocated small bitmaps keep memory bounded on
//! large disks.

/// Block address type re-used from the disk crate.
pub type Lba = u64;

/// A fixed-range block bitmap.
#[derive(Debug, Clone)]
pub struct RegionBitmap {
    base: Lba,
    len: u64,
    words: Vec<u64>,
    set_count: u64,
}

impl RegionBitmap {
    /// Creates an empty bitmap over `[base, base + len)` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn new(base: Lba, len: u64) -> Self {
        assert!(len > 0, "bitmap must cover at least one block");
        let words = vec![0u64; len.div_ceil(64) as usize];
        RegionBitmap { base, len, words, set_count: 0 }
    }

    /// First block covered.
    pub fn base(&self) -> Lba {
        self.base
    }

    /// One past the last block covered.
    pub fn end(&self) -> Lba {
        self.base + self.len
    }

    /// `true` if `lba` falls inside the region.
    pub fn covers(&self, lba: Lba) -> bool {
        (self.base..self.end()).contains(&lba)
    }

    /// Number of distinct blocks marked so far.
    pub fn set_count(&self) -> u64 {
        self.set_count
    }

    /// Approximate heap footprint in bytes (for memory accounting).
    pub fn memory_bytes(&self) -> usize {
        self.words.len() * 8 + std::mem::size_of::<Self>()
    }

    /// Marks the blocks of `[lba, lba + blocks)` that fall inside the
    /// region; out-of-range blocks are ignored. Returns the number of bits
    /// newly set (already-set blocks — duplicate requests — count zero,
    /// matching the paper's "ignores multiple requests to the same block").
    pub fn set_range(&mut self, lba: Lba, blocks: u64) -> u64 {
        let lo = lba.max(self.base);
        let hi = (lba + blocks).min(self.end());
        let mut newly = 0;
        let mut b = lo;
        while b < hi {
            let off = b - self.base;
            let w = (off / 64) as usize;
            let bit = 1u64 << (off % 64);
            if self.words[w] & bit == 0 {
                self.words[w] |= bit;
                newly += 1;
            }
            b += 1;
        }
        self.set_count += newly;
        newly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn covers_and_bounds() {
        let b = RegionBitmap::new(100, 50);
        assert!(b.covers(100));
        assert!(b.covers(149));
        assert!(!b.covers(99));
        assert!(!b.covers(150));
        assert_eq!(b.base(), 100);
        assert_eq!(b.end(), 150);
    }

    #[test]
    fn set_range_counts_new_bits_once() {
        let mut b = RegionBitmap::new(0, 256);
        assert_eq!(b.set_range(0, 64), 64);
        assert_eq!(b.set_range(0, 64), 0, "duplicates ignored");
        assert_eq!(b.set_range(32, 64), 32, "overlap counted once");
        assert_eq!(b.set_count(), 96);
    }

    #[test]
    fn set_range_clips_to_region() {
        let mut b = RegionBitmap::new(100, 50);
        // Entirely before / after: nothing.
        assert_eq!(b.set_range(0, 50), 0);
        assert_eq!(b.set_range(200, 50), 0);
        // Straddling the start.
        assert_eq!(b.set_range(90, 20), 10);
        // Straddling the end.
        assert_eq!(b.set_range(145, 20), 5);
        assert_eq!(b.set_count(), 15);
    }

    #[test]
    fn memory_footprint_is_small() {
        // The paper's point: a few-thousand-block region costs well under a KiB.
        let b = RegionBitmap::new(0, 4096);
        assert!(b.memory_bytes() < 1024, "{} bytes", b.memory_bytes());
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn zero_length_panics() {
        let _ = RegionBitmap::new(0, 0);
    }

    proptest! {
        /// set_count always equals the number of distinct covered blocks.
        #[test]
        fn prop_set_count_matches_distinct_blocks(
            ranges in proptest::collection::vec((0u64..600, 1u64..100), 1..20)
        ) {
            let mut b = RegionBitmap::new(50, 512);
            let mut reference = std::collections::HashSet::new();
            for (lba, blocks) in ranges {
                b.set_range(lba, blocks);
                for x in lba..lba + blocks {
                    if (50..562).contains(&x) {
                        reference.insert(x);
                    }
                }
            }
            prop_assert_eq!(b.set_count(), reference.len() as u64);
        }
    }
}
