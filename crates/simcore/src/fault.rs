//! Deterministic, seeded fault injection for the simulated storage stack.
//!
//! A [`FaultPlan`] schedules per-disk faults for one experiment run:
//!
//! * **straggler windows** — a service-time multiplier applied to every
//!   media operation of one disk over a virtual-time window (a slow or
//!   degraded spindle);
//! * **transient read errors** — each media read fails with a configured
//!   probability and must be retried by the controller;
//! * **bad regions** — LBA ranges whose accesses pay a fixed remap
//!   penalty (reallocated sectors living in a spare area).
//!
//! The plan itself is pure data: all randomness (the per-operation error
//! draw) comes from a [`SimRng`](crate::SimRng) forked deterministically
//! from the experiment seed by the disk model, so a fixed seed plus a
//! fixed plan reproduces a run bit for bit — including across parallel
//! sweep workers. An empty plan injects nothing and leaves the healthy
//! simulation byte-identical: models only consult fault state when it was
//! explicitly installed.
//!
//! # Examples
//!
//! ```
//! use seqio_simcore::{FaultPlan, SimDuration, SimTime};
//!
//! let plan = FaultPlan::new()
//!     .straggler(0, 4.0, SimDuration::from_secs(1), Some(SimDuration::from_secs(5)))
//!     .read_errors(0, 0.01);
//! plan.validate().unwrap();
//! let t = SimTime::ZERO + SimDuration::from_secs(2);
//! assert_eq!(plan.straggler_factor(0, t), 4.0);
//! assert_eq!(plan.straggler_factor(1, t), 1.0);
//! ```

use crate::error::SeqioError;
use crate::record::{parse_duration, ClauseFields};
use crate::time::{SimDuration, SimTime};

/// One straggler window: every media operation started by the disk while
/// the window is active has its positioning and transfer times multiplied
/// by `factor`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Straggler {
    /// Service-time multiplier, `>= 1.0`.
    pub factor: f64,
    /// Window start (virtual time; experiment runs start at `SimTime::ZERO`).
    pub from: SimTime,
    /// Window end (exclusive); `None` keeps the disk slow for the whole run.
    pub until: Option<SimTime>,
}

impl Straggler {
    /// Whether the window is active at `t`.
    #[must_use]
    pub fn active_at(&self, t: SimTime) -> bool {
        t >= self.from && self.until.is_none_or(|u| t < u)
    }
}

/// An LBA range whose media accesses pay a fixed remap penalty, modelling
/// sectors reallocated to a spare area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BadRegion {
    /// First block of the region.
    pub start: u64,
    /// Length of the region in blocks.
    pub blocks: u64,
    /// Extra positioning time charged per media operation touching the
    /// region.
    pub penalty: SimDuration,
}

impl BadRegion {
    /// Whether a media operation covering `[lba, lba + blocks)` touches
    /// this region.
    #[must_use]
    pub fn overlaps(&self, lba: u64, blocks: u64) -> bool {
        lba < self.start + self.blocks && self.start < lba + blocks
    }
}

/// Bounded retry-with-backoff and per-request timeout policy applied by
/// the controllers when a disk reports a transient read error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum number of retries per request before the controller gives
    /// up and completes the request via the drive's internal recovery.
    pub max_retries: u32,
    /// Backoff before the first retry; doubles on every further attempt.
    pub backoff: SimDuration,
    /// Per-request deadline: a request whose total service time exceeds
    /// this is counted as timed out (and no longer retried).
    /// `SimDuration::ZERO` disables the deadline.
    pub timeout: SimDuration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff: SimDuration::from_micros(500),
            timeout: SimDuration::ZERO,
        }
    }
}

/// All faults scheduled for one disk.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiskFaults {
    /// Straggler windows; when several are active the largest factor wins.
    pub stragglers: Vec<Straggler>,
    /// Probability that a media read fails transiently, in `[0, 1]`.
    pub read_error_rate: f64,
    /// Remapped LBA ranges.
    pub bad_regions: Vec<BadRegion>,
}

impl DiskFaults {
    /// The straggler multiplier in effect at `t` (`1.0` when healthy).
    #[must_use]
    pub fn straggler_factor(&self, t: SimTime) -> f64 {
        self.stragglers.iter().filter(|s| s.active_at(t)).fold(1.0, |acc, s| acc.max(s.factor))
    }

    /// The total remap penalty for a media operation covering
    /// `[lba, lba + blocks)` (`ZERO` when it touches no bad region).
    #[must_use]
    pub fn remap_penalty(&self, lba: u64, blocks: u64) -> SimDuration {
        self.bad_regions
            .iter()
            .filter(|r| r.overlaps(lba, blocks))
            .fold(SimDuration::ZERO, |acc, r| acc + r.penalty)
    }
}

/// A deterministic per-disk fault schedule for one experiment run.
///
/// Built with the chained [`straggler`](FaultPlan::straggler),
/// [`read_errors`](FaultPlan::read_errors),
/// [`bad_region`](FaultPlan::bad_region) and [`retry`](FaultPlan::retry)
/// methods, or parsed from the CLI spec grammar with
/// [`parse`](FaultPlan::parse). Disk indices are global (over all
/// controllers), matching the experiment's disk numbering.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    disks: Vec<(usize, DiskFaults)>,
    retry: Option<RetryPolicy>,
}

impl FaultPlan {
    /// An empty plan: injects nothing, changes nothing.
    #[must_use]
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules no faults and overrides no policy.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.disks.is_empty() && self.retry.is_none()
    }

    /// Adds a straggler window for `disk`: media operations started in
    /// `[from, from + duration)` are slowed by `factor`; `None` keeps the
    /// disk slow for the rest of the run.
    #[must_use]
    pub fn straggler(
        mut self,
        disk: usize,
        factor: f64,
        from: SimDuration,
        duration: Option<SimDuration>,
    ) -> Self {
        let from = SimTime::ZERO + from;
        let until = duration.map(|d| from + d);
        self.entry(disk).stragglers.push(Straggler { factor, from, until });
        self
    }

    /// Sets the transient read-error probability for `disk`.
    #[must_use]
    pub fn read_errors(mut self, disk: usize, rate: f64) -> Self {
        self.entry(disk).read_error_rate = rate;
        self
    }

    /// Adds a remapped region of `blocks` blocks starting at `start` on
    /// `disk`, charging `penalty` per media operation touching it.
    #[must_use]
    pub fn bad_region(
        mut self,
        disk: usize,
        start: u64,
        blocks: u64,
        penalty: SimDuration,
    ) -> Self {
        self.entry(disk).bad_regions.push(BadRegion { start, blocks, penalty });
        self
    }

    /// Overrides the controllers' retry/timeout policy for this run.
    #[must_use]
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// The retry-policy override, if the plan carries one.
    #[must_use]
    pub fn retry_policy(&self) -> Option<RetryPolicy> {
        self.retry
    }

    /// The faults scheduled for `disk`, if any.
    #[must_use]
    pub fn disk(&self, disk: usize) -> Option<&DiskFaults> {
        self.disks.iter().find(|(d, _)| *d == disk).map(|(_, f)| f)
    }

    /// The highest disk index named by the plan, if any disk is named.
    #[must_use]
    pub fn max_disk(&self) -> Option<usize> {
        self.disks.iter().map(|(d, _)| *d).max()
    }

    /// The straggler multiplier in effect for `disk` at `t` (`1.0` for
    /// disks the plan does not name).
    #[must_use]
    pub fn straggler_factor(&self, disk: usize, t: SimTime) -> f64 {
        self.disk(disk).map_or(1.0, |f| f.straggler_factor(t))
    }

    /// Checks every scheduled fault for internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: straggler factors must be
    /// finite and `>= 1.0`, windows non-empty, error rates in `[0, 1]`,
    /// and bad regions non-empty.
    pub fn validate(&self) -> Result<(), SeqioError> {
        let fail = |reason: String| Err(SeqioError::Component { component: "faults", reason });
        for (disk, f) in &self.disks {
            for s in &f.stragglers {
                if !s.factor.is_finite() || s.factor < 1.0 {
                    return fail(format!("disk {disk}: straggler factor must be >= 1.0"));
                }
                if s.until.is_some_and(|u| u <= s.from) {
                    return fail(format!("disk {disk}: straggler window is empty"));
                }
            }
            if !(0.0..=1.0).contains(&f.read_error_rate) {
                return fail(format!("disk {disk}: read error rate must be in [0, 1]"));
            }
            for r in &f.bad_regions {
                if r.blocks == 0 {
                    return fail(format!("disk {disk}: bad region must cover at least one block"));
                }
            }
        }
        Ok(())
    }

    /// Parses the CLI `--faults` spec grammar: `;`-separated clauses of
    /// `key=value` pairs, e.g.
    ///
    /// ```text
    /// straggler:disk=0,factor=4,from=1s,for=10s;errors:disk=0,rate=0.01;
    /// badregion:disk=1,start=4096,blocks=8192,penalty=5ms;
    /// retry:max=4,backoff=500us,timeout=250ms
    /// ```
    ///
    /// Durations accept `ns`/`us`/`ms`/`s` suffixes (bare numbers are
    /// seconds). `straggler` defaults `from` to `0s` and leaves the window
    /// open-ended when `for` is omitted. The parsed plan is validated.
    ///
    /// # Errors
    ///
    /// Returns a `faults` component error naming the malformed clause or
    /// the violated constraint.
    pub fn parse(spec: &str) -> Result<FaultPlan, SeqioError> {
        let fail = |reason: String| SeqioError::Component { component: "faults", reason };
        let mut plan = FaultPlan::new();
        for clause in spec.split(';').map(str::trim).filter(|c| !c.is_empty()) {
            let (kind, rest) = clause
                .split_once(':')
                .ok_or_else(|| fail(format!("clause `{clause}` is missing `kind:`")))?;
            let kind = kind.trim();
            let mut fields = ClauseFields::parse("faults", kind, rest).map_err(&fail)?;
            match kind {
                "straggler" => {
                    let disk = fields.usize_field("disk", "a disk index")?;
                    let factor = fields.float("factor")?;
                    let from = fields.duration_or("from", SimDuration::ZERO)?;
                    let dur = fields.optional_duration("for")?;
                    plan = plan.straggler(disk, factor, from, dur);
                }
                "errors" => {
                    let disk = fields.usize_field("disk", "a disk index")?;
                    let rate = fields.float("rate")?;
                    plan = plan.read_errors(disk, rate);
                }
                "badregion" => {
                    let disk = fields.usize_field("disk", "a disk index")?;
                    let start = fields.u64_field("start", "a block count")?;
                    let blocks = fields.u64_field("blocks", "a block count")?;
                    let penalty = fields.duration_or("penalty", SimDuration::from_millis(5))?;
                    plan = plan.bad_region(disk, start, blocks, penalty);
                }
                "retry" => {
                    let mut policy = RetryPolicy::default();
                    if let Some(m) = fields.take("max") {
                        policy.max_retries =
                            m.parse().map_err(|_| fail(format!("`max={m}` is not an integer")))?;
                    }
                    if let Some(b) = fields.take("backoff") {
                        policy.backoff = parse_duration(&b)
                            .map_err(|reason| fail(format!("`backoff={b}`: {reason}")))?;
                    }
                    if let Some(t) = fields.take("timeout") {
                        policy.timeout = parse_duration(&t)
                            .map_err(|reason| fail(format!("`timeout={t}`: {reason}")))?;
                    }
                    plan = plan.retry(policy);
                }
                other => return Err(fail(format!("unknown fault kind `{other}`"))),
            }
            fields.finish()?;
        }
        plan.validate()?;
        Ok(plan)
    }
}

impl FaultPlan {
    fn entry(&mut self, disk: usize) -> &mut DiskFaults {
        if let Some(i) = self.disks.iter().position(|(d, _)| *d == disk) {
            return &mut self.disks[i].1;
        }
        self.disks.push((disk, DiskFaults::default()));
        &mut self.disks.last_mut().expect("just pushed").1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        assert!(plan.disk(0).is_none());
        assert_eq!(plan.straggler_factor(0, at(1)), 1.0);
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn straggler_window_bounds() {
        let plan = FaultPlan::new().straggler(
            2,
            4.0,
            SimDuration::from_secs(1),
            Some(SimDuration::from_secs(2)),
        );
        assert_eq!(plan.straggler_factor(2, at(0)), 1.0);
        assert_eq!(plan.straggler_factor(2, at(1)), 4.0);
        assert_eq!(plan.straggler_factor(2, at(2)), 4.0);
        assert_eq!(plan.straggler_factor(2, at(3)), 1.0);
        assert_eq!(plan.straggler_factor(0, at(1)), 1.0);
        assert_eq!(plan.max_disk(), Some(2));
    }

    #[test]
    fn overlapping_windows_take_the_max_factor() {
        let plan = FaultPlan::new().straggler(0, 2.0, SimDuration::ZERO, None).straggler(
            0,
            8.0,
            SimDuration::from_secs(1),
            Some(SimDuration::from_secs(1)),
        );
        assert_eq!(plan.straggler_factor(0, at(0)), 2.0);
        assert_eq!(plan.straggler_factor(0, at(1)), 8.0);
        assert_eq!(plan.straggler_factor(0, at(3)), 2.0);
    }

    #[test]
    fn bad_region_overlap_and_penalty() {
        let plan = FaultPlan::new().bad_region(1, 100, 50, SimDuration::from_millis(5));
        let f = plan.disk(1).unwrap();
        assert_eq!(f.remap_penalty(0, 100), SimDuration::ZERO);
        assert_eq!(f.remap_penalty(140, 16), SimDuration::from_millis(5));
        assert_eq!(f.remap_penalty(149, 1), SimDuration::from_millis(5));
        assert_eq!(f.remap_penalty(150, 10), SimDuration::ZERO);
    }

    #[test]
    fn validate_rejects_bad_inputs() {
        let p = FaultPlan::new().straggler(0, 0.5, SimDuration::ZERO, None);
        assert!(p.validate().is_err());
        let p =
            FaultPlan::new().straggler(0, 2.0, SimDuration::from_secs(1), Some(SimDuration::ZERO));
        assert!(p.validate().is_err());
        let p = FaultPlan::new().read_errors(0, 1.5);
        assert!(p.validate().is_err());
        let p = FaultPlan::new().bad_region(0, 10, 0, SimDuration::from_millis(1));
        assert!(p.validate().is_err());
    }

    #[test]
    fn parse_full_spec() {
        let plan = FaultPlan::parse(
            "straggler:disk=0,factor=4,from=1s,for=10s; errors:disk=0,rate=0.01;\
             badregion:disk=1,start=4096,blocks=8192,penalty=5ms;\
             retry:max=4,backoff=500us,timeout=250ms",
        )
        .unwrap();
        assert_eq!(plan.straggler_factor(0, at(5)), 4.0);
        assert_eq!(plan.straggler_factor(0, at(20)), 1.0);
        assert!((plan.disk(0).unwrap().read_error_rate - 0.01).abs() < 1e-12);
        assert_eq!(
            plan.disk(1).unwrap().bad_regions,
            vec![BadRegion { start: 4096, blocks: 8192, penalty: SimDuration::from_millis(5) }]
        );
        let retry = plan.retry_policy().unwrap();
        assert_eq!(retry.max_retries, 4);
        assert_eq!(retry.backoff, SimDuration::from_micros(500));
        assert_eq!(retry.timeout, SimDuration::from_millis(250));
    }

    #[test]
    fn parse_defaults_and_errors() {
        let plan = FaultPlan::parse("straggler:disk=3,factor=2").unwrap();
        assert_eq!(plan.straggler_factor(3, at(0)), 2.0);
        assert_eq!(plan.straggler_factor(3, at(1000)), 2.0);

        assert!(FaultPlan::parse("nonsense").is_err());
        assert!(FaultPlan::parse("wobble:disk=0").is_err());
        assert!(FaultPlan::parse("straggler:factor=2").is_err());
        assert!(FaultPlan::parse("straggler:disk=0,factor=2,bogus=1").is_err());
        assert!(FaultPlan::parse("errors:disk=0,rate=7").is_err());
        assert!(FaultPlan::parse("straggler:disk=0,factor=2,for=-1s").is_err());
    }

    #[test]
    fn parse_errors_name_the_offending_token() {
        // Each message pinpoints the bad token and its clause — never
        // just echoes the whole spec back.
        let msg = |spec: &str| FaultPlan::parse(spec).unwrap_err().to_string();

        let m = msg("straggler:disk=0,factor=4; errors:disk=zero,rate=0.01");
        assert!(m.contains("`disk=zero`"), "{m}");
        assert!(m.contains("`errors` clause"), "{m}");

        let m = msg("straggler:factor=4");
        assert!(m.contains("`straggler` clause"), "{m}");
        assert!(m.contains("`disk`"), "{m}");

        let m = msg("straggler:disk=0,factor=4,from=never");
        assert!(m.contains("`from=never`"), "{m}");

        let m = msg("straggler:disk=0,factor=4,wobble=1");
        assert!(m.contains("unknown field `wobble`"), "{m}");
        assert!(m.contains("`straggler` clause"), "{m}");

        let m = msg("retry:max=many");
        assert!(m.contains("`max=many`"), "{m}");

        let m = msg("retry:backoff=soon");
        assert!(m.contains("`backoff=soon`"), "{m}");

        let m = msg("badregion:disk=0,start=4096 blocks=8");
        assert!(m.contains("`start=4096 blocks=8`"), "{m}");
        assert!(m.contains("`badregion` clause"), "{m}");
    }

    #[test]
    fn parse_duration_suffixes() {
        assert_eq!(parse_duration("250ns").unwrap(), SimDuration::from_nanos(250));
        assert_eq!(parse_duration("500us").unwrap(), SimDuration::from_micros(500));
        assert_eq!(parse_duration("5ms").unwrap(), SimDuration::from_millis(5));
        assert_eq!(parse_duration("2s").unwrap(), SimDuration::from_secs(2));
        assert_eq!(parse_duration("0.5").unwrap(), SimDuration::from_millis(500));
        assert!(parse_duration("fast").is_err());
    }
}
