//! A minimal JSON reader for the telemetry interchange formats.
//!
//! The workspace builds without crates.io access, so the JSONL trace
//! format is parsed by this small recursive-descent reader instead of
//! serde. It covers exactly the JSON this crate writes — objects,
//! arrays, numbers, strings, booleans and `null` — and keeps numeric
//! tokens as raw text so 64-bit nanosecond timestamps never round
//! through `f64`.

/// One parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    /// The raw numeric token, converted on demand.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub(crate) fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub(crate) fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub(crate) fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|v| v as usize)
    }

    pub(crate) fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub(crate) fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub(crate) fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", ch as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        _ => Err(format!("unexpected input at byte {}", *pos)),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let raw = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    // Validate once so downstream as_u64/parse failures mean "wrong
    // type", never "never was a number".
    raw.parse::<f64>().map_err(|_| format!("bad number {raw:?} at byte {start}"))?;
    Ok(Json::Num(raw.to_string()))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    other => return Err(format!("unsupported escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one whole UTF-8 scalar so multi-byte text survives.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().expect("non-empty");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Escapes a string for embedding in JSON output.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_trace_shapes() {
        let v = parse(r#"{"a":[1,null,true],"b":"x\"y","c":-2.5e3}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert!(v.get("a").unwrap().as_arr().unwrap()[1].is_null());
        assert_eq!(v.get("b"), Some(&Json::Str("x\"y".into())));
        assert_eq!(v.get("c").unwrap().as_u64(), None);
        assert_eq!(parse("18446744073709551615").unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let nasty = "a\"b\\c\nd\te";
        let v = parse(&format!("\"{}\"", escape(nasty))).unwrap();
        assert_eq!(v, Json::Str(nasty.into()));
    }
}
