//! Seek-time model.
//!
//! Seek time as a function of cylinder distance follows the classic
//! three-parameter curve used by DiskSim and the disk-modeling literature
//! (Ruemmler & Wilkes): an acceleration-dominated `sqrt` region for short
//! seeks blending into a linear coast region for long seeks:
//!
//! ```text
//! seek(d) = c + a*sqrt(d) + b*d      (d >= 1 cylinders)
//! seek(0) = 0
//! ```
//!
//! The three coefficients are fitted from the numbers a datasheet actually
//! publishes: track-to-track, average (one-third stroke) and full-stroke
//! seek times.

use seqio_simcore::SimDuration;

/// Datasheet seek characteristics used to fit a [`SeekModel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeekConfig {
    /// Track-to-track (single-cylinder) seek time.
    pub track_to_track: SimDuration,
    /// Average seek time (industry convention: one-third stroke).
    pub average: SimDuration,
    /// Full-stroke seek time.
    pub full_stroke: SimDuration,
}

impl SeekConfig {
    /// Validates ordering of the three published figures.
    ///
    /// # Errors
    ///
    /// Returns a message if `track_to_track <= average <= full_stroke` does
    /// not hold or any figure is zero.
    pub fn validate(&self) -> Result<(), String> {
        if self.track_to_track == SimDuration::ZERO {
            return Err("track-to-track seek must be positive".into());
        }
        if self.track_to_track > self.average || self.average > self.full_stroke {
            return Err("seek times must satisfy track_to_track <= average <= full_stroke".into());
        }
        Ok(())
    }
}

/// Fitted seek curve over a given cylinder count.
#[derive(Debug, Clone, Copy)]
pub struct SeekModel {
    a: f64, // ms per sqrt(cylinder)
    b: f64, // ms per cylinder
    c: f64, // ms constant (settle)
    max_cylinders: u64,
}

impl SeekModel {
    /// Fits the curve through the three datasheet points.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid, `total_cylinders < 9`, or the
    /// fitted curve would be non-monotonic (which would indicate physically
    /// inconsistent datasheet numbers).
    pub fn fit(cfg: &SeekConfig, total_cylinders: u64) -> Self {
        cfg.validate().expect("invalid seek config");
        assert!(total_cylinders >= 9, "too few cylinders to fit a seek curve");
        let d_full = (total_cylinders - 1) as f64;
        let d_avg = d_full / 3.0;
        let t2t = cfg.track_to_track.as_millis_f64();
        let avg = cfg.average.as_millis_f64();
        let full = cfg.full_stroke.as_millis_f64();

        // Solve:
        //   c + a*1        + b*1      = t2t
        //   c + a*sqrt(dA) + b*dA     = avg
        //   c + a*sqrt(dF) + b*dF     = full
        let s_a = d_avg.sqrt();
        let s_f = d_full.sqrt();
        // Subtract row 1 from rows 2 and 3:
        //   a*(sA-1) + b*(dA-1) = avg - t2t
        //   a*(sF-1) + b*(dF-1) = full - t2t
        let m11 = s_a - 1.0;
        let m12 = d_avg - 1.0;
        let m21 = s_f - 1.0;
        let m22 = d_full - 1.0;
        let r1 = avg - t2t;
        let r2 = full - t2t;
        let det = m11 * m22 - m12 * m21;
        assert!(det.abs() > 1e-12, "degenerate seek fit");
        let a = (r1 * m22 - m12 * r2) / det;
        let b = (m11 * r2 - r1 * m21) / det;
        let c = t2t - a - b;
        let model = SeekModel { a, b, c, max_cylinders: total_cylinders };
        // Monotonicity: derivative a/(2*sqrt(d)) + b >= 0 for d in [1, dF].
        // Sufficient check at the endpoint where each term is smallest.
        let deriv_at_full = a / (2.0 * s_f) + b;
        let deriv_at_one = a / 2.0 + b;
        assert!(
            deriv_at_full >= -1e-9 && deriv_at_one >= -1e-9 && model.time(1) >= SimDuration::ZERO,
            "seek curve fit is non-monotonic; datasheet numbers inconsistent"
        );
        model
    }

    /// Seek time for a move of `distance` cylinders (0 for no move).
    pub fn time(&self, distance: u64) -> SimDuration {
        if distance == 0 {
            return SimDuration::ZERO;
        }
        let d = distance.min(self.max_cylinders - 1) as f64;
        let ms = self.c + self.a * d.sqrt() + self.b * d;
        SimDuration::from_millis_f64(ms.max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn wd_cfg() -> SeekConfig {
        SeekConfig {
            track_to_track: SimDuration::from_millis(2),
            average: SimDuration::from_millis_f64(8.9),
            full_stroke: SimDuration::from_millis(21),
        }
    }

    #[test]
    fn fit_reproduces_datasheet_points() {
        let cyls = 100_000;
        let m = SeekModel::fit(&wd_cfg(), cyls);
        let t2t = m.time(1).as_millis_f64();
        let avg = m.time((cyls - 1) / 3).as_millis_f64();
        let full = m.time(cyls - 1).as_millis_f64();
        assert!((t2t - 2.0).abs() < 0.05, "t2t {t2t}");
        assert!((avg - 8.9).abs() < 0.1, "avg {avg}");
        assert!((full - 21.0).abs() < 0.05, "full {full}");
    }

    #[test]
    fn zero_distance_is_free() {
        let m = SeekModel::fit(&wd_cfg(), 100_000);
        assert_eq!(m.time(0), SimDuration::ZERO);
    }

    #[test]
    fn distance_clamped_to_stroke() {
        let m = SeekModel::fit(&wd_cfg(), 100_000);
        assert_eq!(m.time(99_999), m.time(10_000_000));
    }

    #[test]
    fn validate_rejects_misordered() {
        let bad = SeekConfig {
            track_to_track: SimDuration::from_millis(10),
            average: SimDuration::from_millis(5),
            full_stroke: SimDuration::from_millis(20),
        };
        assert!(bad.validate().is_err());
        assert!(wd_cfg().validate().is_ok());
    }

    proptest! {
        /// The fitted curve is monotonically non-decreasing in distance.
        #[test]
        fn prop_monotonic(d1 in 1u64..99_999, d2 in 1u64..99_999) {
            let m = SeekModel::fit(&wd_cfg(), 100_000);
            let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
            prop_assert!(m.time(lo) <= m.time(hi));
        }

        /// Seek time is always within [0, full_stroke] for in-range distances.
        #[test]
        fn prop_bounded(d in 0u64..99_999) {
            let m = SeekModel::fit(&wd_cfg(), 100_000);
            let t = m.time(d);
            prop_assert!(t <= SimDuration::from_millis_f64(21.01));
        }
    }
}
