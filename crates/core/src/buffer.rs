//! The buffered set: host-memory staging of prefetched data.
//!
//! Every dispatched stream owns one or more R-sized [`IoBuffer`]s. A buffer
//! is allocated when the read-ahead request is issued, marked *filled* when
//! the disk delivers, serves client requests from memory, and is freed when
//! the last byte is consumed — or reclaimed by the garbage collector if its
//! stream goes quiet (paper §4.3). Total allocation never exceeds `M`.

use std::collections::HashMap;

use seqio_simcore::SimTime;

/// Identifier of one staging buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BufferId(pub u64);

/// Identifier of a detected stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StreamId(pub u64);

/// Block address (512-byte units).
pub type Lba = u64;

const BLOCK: u64 = 512;

/// One staging buffer.
#[derive(Debug, Clone)]
pub struct IoBuffer {
    /// Owning stream.
    pub stream: StreamId,
    /// Target disk.
    pub disk: usize,
    /// First block staged.
    pub start: Lba,
    /// Length in blocks.
    pub blocks: u64,
    /// `true` once the disk delivered the data.
    pub filled: bool,
    /// Blocks from `start` already served to clients.
    pub consumed: u64,
    /// Last time the buffer served (or received) data.
    pub last_access: SimTime,
}

impl IoBuffer {
    /// One past the last staged block.
    pub fn end(&self) -> Lba {
        self.start + self.blocks
    }
}

/// Outcome of trying to serve a client request from the buffered set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverage {
    /// Entirely covered by filled buffers: serve from memory now.
    Ready,
    /// Covered, but part of it is still being filled by an in-flight
    /// read-ahead: the request must wait for the fill to land.
    InFlight,
    /// Not covered: the scheduler must fetch it.
    Missing,
}

/// The buffered set with `M`-bounded accounting.
#[derive(Debug)]
pub struct BufferPool {
    capacity: u64,
    used: u64,
    peak: u64,
    buffers: HashMap<BufferId, IoBuffer>,
    by_stream: HashMap<StreamId, Vec<BufferId>>,
    next_id: u64,
    allocations: u64,
    gc_freed: u64,
}

impl BufferPool {
    /// Creates a pool bounded at `capacity` bytes (`M`).
    pub fn new(capacity: u64) -> Self {
        BufferPool {
            capacity,
            used: 0,
            peak: 0,
            buffers: HashMap::new(),
            by_stream: HashMap::new(),
            next_id: 0,
            allocations: 0,
            gc_freed: 0,
        }
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Highest allocation ever reached.
    pub fn peak_bytes(&self) -> u64 {
        self.peak
    }

    /// Configured bound (`M`).
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Total buffers ever allocated.
    pub fn allocations(&self) -> u64 {
        self.allocations
    }

    /// Buffers reclaimed by the garbage collector.
    pub fn gc_freed(&self) -> u64 {
        self.gc_freed
    }

    /// Allocates a buffer for `[start, start+blocks)` of `stream` on `disk`,
    /// or returns `None` if that would exceed `M`.
    pub fn try_alloc(
        &mut self,
        stream: StreamId,
        disk: usize,
        start: Lba,
        blocks: u64,
        now: SimTime,
    ) -> Option<BufferId> {
        let bytes = blocks * BLOCK;
        if self.used + bytes > self.capacity {
            return None;
        }
        let id = BufferId(self.next_id);
        self.next_id += 1;
        self.used += bytes;
        self.peak = self.peak.max(self.used);
        self.allocations += 1;
        self.buffers.insert(
            id,
            IoBuffer { stream, disk, start, blocks, filled: false, consumed: 0, last_access: now },
        );
        self.by_stream.entry(stream).or_default().push(id);
        Some(id)
    }

    /// Marks a buffer as filled by the disk.
    ///
    /// # Panics
    ///
    /// Panics if the buffer does not exist.
    pub fn mark_filled(&mut self, id: BufferId, now: SimTime) {
        let b = self.buffers.get_mut(&id).expect("mark_filled: unknown buffer");
        b.filled = true;
        b.last_access = now;
    }

    /// Classifies how `[lba, lba+blocks)` of `stream` is covered by the
    /// stream's buffers (chaining across contiguous buffers).
    pub fn coverage(&self, stream: StreamId, lba: Lba, blocks: u64) -> Coverage {
        let end = lba + blocks;
        let Some(ids) = self.by_stream.get(&stream) else { return Coverage::Missing };
        let mut bufs: Vec<&IoBuffer> = ids.iter().filter_map(|i| self.buffers.get(i)).collect();
        bufs.sort_by_key(|b| b.start);
        let mut at = lba;
        let mut any_unfilled = false;
        for b in bufs {
            if b.end() <= at || b.start > at {
                if b.start > at {
                    break; // gap
                }
                continue;
            }
            if !b.filled {
                any_unfilled = true;
            }
            at = b.end();
            if at >= end {
                return if any_unfilled { Coverage::InFlight } else { Coverage::Ready };
            }
        }
        Coverage::Missing
    }

    /// Returns the first block at or after `from` (bounded by `limit`) that
    /// no buffer of `stream` covers — filled or in flight. Used to resume
    /// fetching exactly at the gap instead of re-reading staged data.
    pub fn covered_until(&self, stream: StreamId, from: Lba, limit: Lba) -> Lba {
        let Some(ids) = self.by_stream.get(&stream) else { return from };
        let mut bufs: Vec<&IoBuffer> = ids.iter().filter_map(|i| self.buffers.get(i)).collect();
        bufs.sort_by_key(|b| b.start);
        let mut at = from;
        for b in bufs {
            if b.end() <= at {
                continue;
            }
            if b.start > at {
                break; // gap
            }
            at = b.end();
            if at >= limit {
                return limit;
            }
        }
        at.min(limit)
    }

    /// Records that `[lba, lba+blocks)` of `stream` has been served,
    /// advancing consumption watermarks. Buffers whose data is entirely at
    /// or below the served range's end are freed ("last request that
    /// corresponds to an I/O buffer" — paper §4.3). Returns the number of
    /// bytes freed.
    pub fn consume(&mut self, stream: StreamId, lba: Lba, blocks: u64, now: SimTime) -> u64 {
        let end = lba + blocks;
        let buffers = &mut self.buffers;
        let Some(ids) = self.by_stream.get_mut(&stream) else { return 0 };
        let mut freed = 0;
        ids.retain(|id| {
            let b = buffers.get_mut(id).expect("index out of sync");
            if b.start < end && b.filled {
                let new_consumed = (end.min(b.end())) - b.start;
                b.consumed = b.consumed.max(new_consumed);
                b.last_access = now;
            }
            if b.filled && b.consumed >= b.blocks {
                freed += b.blocks * BLOCK;
                buffers.remove(id);
                false
            } else {
                true
            }
        });
        self.used -= freed;
        if freed > 0 {
            self.prune_stream_index(stream);
        }
        freed
    }

    fn prune_stream_index(&mut self, stream: StreamId) {
        if let Some(v) = self.by_stream.get(&stream) {
            if v.is_empty() {
                self.by_stream.remove(&stream);
            }
        }
    }

    /// Frees every buffer of `stream` (used when a stream is torn down).
    /// Returns bytes freed. In-flight (unfilled) buffers are kept — their
    /// disk request is still outstanding — unless `force` is set.
    pub fn free_stream(&mut self, stream: StreamId, force: bool) -> u64 {
        let buffers = &mut self.buffers;
        let Some(ids) = self.by_stream.get_mut(&stream) else { return 0 };
        let mut freed = 0;
        ids.retain(|id| {
            let b = &buffers[id];
            if b.filled || force {
                freed += b.blocks * BLOCK;
                buffers.remove(id);
                false
            } else {
                true
            }
        });
        self.used -= freed;
        self.prune_stream_index(stream);
        freed
    }

    /// Reclaims filled buffers idle since before `cutoff`; returns the
    /// affected streams and bytes freed.
    pub fn gc(&mut self, cutoff: SimTime) -> (Vec<StreamId>, u64) {
        let victims: Vec<BufferId> = self
            .buffers
            .iter()
            .filter(|(_, b)| b.filled && b.last_access < cutoff)
            .map(|(&id, _)| id)
            .collect();
        let mut freed = 0;
        let mut streams = Vec::new();
        for id in victims {
            let b = self.buffers.remove(&id).expect("victim exists");
            freed += b.blocks * BLOCK;
            self.gc_freed += 1;
            if let Some(v) = self.by_stream.get_mut(&b.stream) {
                v.retain(|x| *x != id);
            }
            self.prune_stream_index(b.stream);
            if !streams.contains(&b.stream) {
                streams.push(b.stream);
            }
        }
        self.used -= freed;
        (streams, freed)
    }

    /// `true` if `stream` has no buffers at all.
    pub fn stream_is_empty(&self, stream: StreamId) -> bool {
        !self.by_stream.contains_key(&stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    const S: StreamId = StreamId(1);

    #[test]
    fn alloc_respects_capacity() {
        let mut p = BufferPool::new(1024 * 1024); // 2048 blocks
        let a = p.try_alloc(S, 0, 0, 1024, t(0));
        assert!(a.is_some());
        let b = p.try_alloc(S, 0, 1024, 1024, t(0));
        assert!(b.is_some());
        assert_eq!(p.used_bytes(), 1024 * 1024);
        assert!(p.try_alloc(S, 0, 2048, 1, t(0)).is_none(), "over capacity");
        assert_eq!(p.peak_bytes(), 1024 * 1024);
    }

    #[test]
    fn coverage_transitions() {
        let mut p = BufferPool::new(10 * 1024 * 1024);
        assert_eq!(p.coverage(S, 0, 128), Coverage::Missing);
        let id = p.try_alloc(S, 0, 0, 1024, t(0)).unwrap();
        assert_eq!(p.coverage(S, 0, 128), Coverage::InFlight);
        p.mark_filled(id, t(1));
        assert_eq!(p.coverage(S, 0, 128), Coverage::Ready);
        assert_eq!(p.coverage(S, 896, 128), Coverage::Ready);
        assert_eq!(p.coverage(S, 1000, 128), Coverage::Missing, "past the end");
    }

    #[test]
    fn coverage_chains_across_contiguous_buffers() {
        let mut p = BufferPool::new(10 * 1024 * 1024);
        let a = p.try_alloc(S, 0, 0, 1024, t(0)).unwrap();
        let b = p.try_alloc(S, 0, 1024, 1024, t(0)).unwrap();
        p.mark_filled(a, t(1));
        assert_eq!(p.coverage(S, 1000, 48), Coverage::InFlight, "straddles into unfilled");
        p.mark_filled(b, t(2));
        assert_eq!(p.coverage(S, 1000, 48), Coverage::Ready);
        // A gap breaks the chain.
        assert_eq!(p.coverage(S, 2048, 8), Coverage::Missing);
    }

    #[test]
    fn consume_frees_fully_used_buffers() {
        let mut p = BufferPool::new(10 * 1024 * 1024);
        let a = p.try_alloc(S, 0, 0, 1024, t(0)).unwrap();
        p.mark_filled(a, t(1));
        // Consume in four quarters; only the last frees.
        for q in 0..4u64 {
            let freed = p.consume(S, q * 256, 256, t(2 + q));
            if q < 3 {
                assert_eq!(freed, 0);
            } else {
                assert_eq!(freed, 1024 * 512);
            }
        }
        assert_eq!(p.used_bytes(), 0);
        assert!(p.stream_is_empty(S));
    }

    #[test]
    fn consume_with_skip_frees_bypassed_buffers() {
        let mut p = BufferPool::new(10 * 1024 * 1024);
        let a = p.try_alloc(S, 0, 0, 512, t(0)).unwrap();
        let b = p.try_alloc(S, 0, 512, 512, t(0)).unwrap();
        p.mark_filled(a, t(1));
        p.mark_filled(b, t(1));
        // A near-sequential client skips the first buffer entirely.
        let freed = p.consume(S, 512, 512, t(2));
        // Both buffers end at or below 1024: both are freed.
        assert_eq!(freed, 1024 * 512);
    }

    #[test]
    fn gc_reclaims_idle_filled_buffers_only() {
        let mut p = BufferPool::new(10 * 1024 * 1024);
        let a = p.try_alloc(S, 0, 0, 512, t(0)).unwrap();
        let _inflight = p.try_alloc(StreamId(2), 0, 9000, 512, t(0)).unwrap();
        p.mark_filled(a, t(1));
        let (streams, freed) = p.gc(t(100));
        assert_eq!(streams, vec![S]);
        assert_eq!(freed, 512 * 512);
        assert_eq!(p.gc_freed(), 1);
        // The unfilled buffer survives (its disk request is outstanding).
        assert_eq!(p.used_bytes(), 512 * 512);
    }

    #[test]
    fn gc_respects_recent_access() {
        let mut p = BufferPool::new(10 * 1024 * 1024);
        let a = p.try_alloc(S, 0, 0, 512, t(0)).unwrap();
        p.mark_filled(a, t(50));
        let (_, freed) = p.gc(t(10));
        assert_eq!(freed, 0, "recently touched buffer must survive");
    }

    #[test]
    fn free_stream_keeps_inflight_unless_forced() {
        let mut p = BufferPool::new(10 * 1024 * 1024);
        let a = p.try_alloc(S, 0, 0, 512, t(0)).unwrap();
        let _b = p.try_alloc(S, 0, 512, 512, t(0)).unwrap();
        p.mark_filled(a, t(1));
        let freed = p.free_stream(S, false);
        assert_eq!(freed, 512 * 512);
        let freed2 = p.free_stream(S, true);
        assert_eq!(freed2, 512 * 512);
        assert_eq!(p.used_bytes(), 0);
    }

    #[test]
    fn per_stream_isolation() {
        let mut p = BufferPool::new(10 * 1024 * 1024);
        let a = p.try_alloc(StreamId(1), 0, 0, 512, t(0)).unwrap();
        p.mark_filled(a, t(1));
        assert_eq!(p.coverage(StreamId(2), 0, 8), Coverage::Missing);
        assert_eq!(p.consume(StreamId(2), 0, 512, t(2)), 0);
        assert_eq!(p.coverage(StreamId(1), 0, 8), Coverage::Ready);
    }
}
