//! # seqio
//!
//! Facade crate for the `seqio` workspace: a reproduction of
//! *"Reducing Disk I/O Performance Sensitivity for Large Numbers of
//! Sequential Streams"* (Panagiotakis, Flouris, Bilas — ICDCS 2009).
//!
//! The workspace implements, from scratch:
//!
//! * a DiskSim-style storage simulator ([`disk`], [`controller`], [`simcore`]);
//! * a Linux-like kernel I/O path with noop/deadline/anticipatory/CFQ
//!   schedulers ([`hostsched`]);
//! * the paper's contribution — a host-level sequential-stream scheduler
//!   with bitmap classification, a bounded dispatch set and a memory-bounded
//!   buffered set ([`core`]);
//! * workload generation ([`workload`]) and a full storage-node simulation
//!   with an experiment runner ([`node`]);
//! * a multi-node cluster layer running every node on a shared simulated
//!   clock, with deterministic stream routing and mid-run stream
//!   migration off degraded nodes ([`cluster`]);
//! * an open-loop client/network front end: user-scale session arrivals
//!   over a fair-share link with end-to-end session SLOs ([`client`]);
//! * cluster-wide telemetry: cross-tier trace correlation, tail
//!   attribution and SLO burn-rate monitoring ([`telemetry`]);
//! * named replayable workload scenarios and an epoch feedback
//!   controller adapting the scheduler's `D`/`R`/`N` mid-run
//!   ([`scenario`]).
//!
//! # Quick start
//!
//! Single-node and cluster studies share one construction surface,
//! [`cluster::Scenario`] — a single-node study is a 1-node scenario, and
//! every specification problem surfaces at `build()` as a typed
//! [`SeqioError`]:
//!
//! ```
//! use seqio::prelude::*;
//!
//! // 30 sequential streams on one disk, serviced through the paper's
//! // stream scheduler with 1 MiB read-ahead.
//! let result = Scenario::builder()
//!     .shape(NodeShape::single_disk())
//!     .streams_per_disk(30)
//!     .request_size(64 * 1024)
//!     .frontend(Frontend::stream_scheduler_with_readahead(1024 * 1024))
//!     .seed(7)
//!     .build()
//!     .unwrap()
//!     .run_node()
//!     .unwrap();
//! assert!(result.total_throughput_mbs() > 10.0);
//! ```
//!
//! Grids of experiments run on a worker pool via [`node::Sweep`], with
//! results returned in grid order regardless of worker count:
//!
//! ```
//! use seqio::prelude::*;
//!
//! let report = Sweep::builder()
//!     .points((1..=3).map(|n| {
//!         Experiment::builder().streams_per_disk(10 * n).seed(7).build()
//!     }))
//!     .jobs(2)
//!     .run();
//! assert_eq!(report.len(), 3);
//! ```

pub use seqio_simcore::SeqioError;

/// One-line import for the common experiment-building vocabulary.
///
/// ```
/// use seqio::prelude::*;
/// ```
pub mod prelude {
    pub use seqio_cluster::{
        ClusterExperiment, ClusterResult, RebalanceConfig, Scenario, ScenarioBuilder, ShardPolicy,
    };
    pub use seqio_core::ServerConfig;
    pub use seqio_node::{
        Experiment, ExperimentBuilder, Frontend, NodeShape, RunResult, Sweep, SweepBuilder,
        SweepReport,
    };
    pub use seqio_simcore::{SeqioError, SimDuration};
}

pub use seqio_client as client;
pub use seqio_cluster as cluster;
pub use seqio_controller as controller;
pub use seqio_core as core;
pub use seqio_disk as disk;
pub use seqio_hostsched as hostsched;
pub use seqio_node as node;
pub use seqio_scenario as scenario;
pub use seqio_simcore as simcore;
pub use seqio_telemetry as telemetry;
pub use seqio_workload as workload;
