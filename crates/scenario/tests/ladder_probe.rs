//! Temporary instrumentation: static (D, N) ladder at constant D*R*N.

use seqio_core::ServerConfig;
use seqio_node::Frontend;
use seqio_scenario::{matrix_scenario, matrix_template, MatrixScale, ScenarioKind, ScenarioRun};

#[test]
#[ignore]
fn dump_dn_ladder() {
    let scale = MatrixScale::quick();
    for kind in ScenarioKind::ALL {
        let scenario = matrix_scenario(kind, &scale, 11).unwrap();
        print!("{:<13}", kind.name());
        for (d, n) in [(8usize, 128u64), (16, 64), (32, 32), (64, 16), (128, 8)] {
            let mut cfg = ServerConfig::auto_tune(1 << 30, 8);
            cfg.dispatch_streams = d;
            cfg.requests_per_residency = n;
            let mut t = matrix_template(&scale, 11);
            t.frontend = Frontend::StreamScheduler(cfg);
            t.faults = scenario.faults.clone();
            let run = ScenarioRun::new(t, scenario.trace.clone());
            let out = run.run().unwrap();
            print!("  D{d}/N{n}={:.1}", out.total_throughput_mbs());
        }
        println!();
    }
}
