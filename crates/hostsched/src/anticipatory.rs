//! The anticipatory scheduler (Iyer & Druschel, SOSP'01; Linux 2.6 "as").
//!
//! After serving a request from process `P`, the disk is *deceptively idle*:
//! `P` is probably about to issue the sequential follow-up, but it has not
//! reached the block layer yet. Instead of seeking away to another process,
//! the scheduler keeps the disk idle for a short window; if `P`'s next
//! request arrives in time, it is serviced seek-free. A batch limit keeps
//! one process from monopolizing the disk.

use seqio_simcore::{SimDuration, SimTime};

use crate::scheduler::{BlockRequest, IoScheduler, SchedDecision};

/// Anticipatory scheduler: elevator plus per-process idling.
#[derive(Debug)]
pub struct Anticipatory {
    entries: Vec<(BlockRequest, SimTime)>,
    head: u64,
    /// Process whose follow-up we are anticipating, if any.
    last_process: Option<usize>,
    /// When the current anticipation window expires.
    antic_until: Option<SimTime>,
    antic_timeout: SimDuration,
    /// Requests served to the current process in the current batch.
    batch: u32,
    batch_limit: u32,
    /// Aging bound, as in the deadline scheduler.
    max_age: SimDuration,
}

impl Anticipatory {
    /// Creates the scheduler with the given anticipation window (Linux
    /// default ~6 ms) and a 16-request batch limit.
    pub fn new(antic_timeout: SimDuration) -> Self {
        Anticipatory {
            entries: Vec::new(),
            head: 0,
            last_process: None,
            antic_until: None,
            antic_timeout,
            batch: 0,
            batch_limit: 16,
            max_age: SimDuration::from_millis(500),
        }
    }

    fn position_of_process(&self, p: usize) -> Option<usize> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, (r, _))| r.process == p)
            .min_by_key(|(_, (r, _))| r.lba)
            .map(|(i, _)| i)
    }

    fn elevator_pick(&self, now: SimTime) -> Option<usize> {
        if self.entries.is_empty() {
            return None;
        }
        if let Some((i, _)) = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, (_, at))| now.saturating_duration_since(*at) > self.max_age)
            .min_by_key(|(_, (_, at))| *at)
        {
            return Some(i);
        }
        let up = self
            .entries
            .iter()
            .enumerate()
            .filter(|(_, (r, _))| r.lba >= self.head)
            .min_by_key(|(_, (r, _))| r.lba)
            .map(|(i, _)| i);
        up.or_else(|| {
            self.entries.iter().enumerate().min_by_key(|(_, (r, _))| r.lba).map(|(i, _)| i)
        })
    }

    fn dispatch_at(&mut self, i: usize) -> SchedDecision {
        let (r, _) = self.entries.swap_remove(i);
        self.head = r.lba + r.blocks;
        if self.last_process == Some(r.process) {
            self.batch += 1;
        } else {
            self.last_process = Some(r.process);
            self.batch = 1;
        }
        self.antic_until = None;
        SchedDecision::Dispatch(r)
    }
}

impl IoScheduler for Anticipatory {
    fn add(&mut self, req: BlockRequest, now: SimTime) {
        self.entries.push((req, now));
    }

    fn next(&mut self, now: SimTime) -> SchedDecision {
        // Continue the current process's batch if it has a queued request.
        if let Some(p) = self.last_process {
            if self.batch < self.batch_limit {
                if let Some(i) = self.position_of_process(p) {
                    return self.dispatch_at(i);
                }
                // The anticipated process has nothing queued: idle briefly.
                let deadline = *self.antic_until.get_or_insert(now + self.antic_timeout);
                if now < deadline {
                    // Only worth waiting if there is any reason to believe
                    // the process continues; we always anticipate (the
                    // common case for sequential readers).
                    return SchedDecision::WaitUntil(deadline);
                }
            }
        }
        // Batch over or anticipation expired: fall back to the elevator.
        // A process whose batch just expired yields to other queues first.
        self.antic_until = None;
        let exhausted = match self.last_process {
            Some(p) if self.batch >= self.batch_limit => Some(p),
            _ => None,
        };
        if let Some(p) = exhausted {
            let other = self
                .entries
                .iter()
                .enumerate()
                .filter(|(_, (r, _))| r.process != p)
                .min_by_key(|(_, (r, _))| r.lba)
                .map(|(i, _)| i);
            if let Some(i) = other {
                self.last_process = None;
                return self.dispatch_at(i);
            }
        }
        match self.elevator_pick(now) {
            Some(i) => {
                // Switching process resets the batch (handled in dispatch_at).
                self.last_process = None;
                self.dispatch_at(i)
            }
            None => {
                self.last_process = None;
                SchedDecision::Idle
            }
        }
    }

    fn on_complete(&mut self, _process: usize, _now: SimTime) {}

    fn queued(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: u64, process: usize, lba: u64) -> BlockRequest {
        BlockRequest { id, process, lba, blocks: 8 }
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    #[test]
    fn anticipates_same_process() {
        let mut s = Anticipatory::new(SimDuration::from_millis(6));
        s.add(req(1, 0, 0), t(0));
        s.add(req(2, 1, 1_000_000), t(0));
        assert!(matches!(s.next(t(0)), SchedDecision::Dispatch(r) if r.id == 1));
        // Process 0 has nothing queued: the scheduler waits instead of
        // seeking to process 1.
        let SchedDecision::WaitUntil(deadline) = s.next(t(100)) else {
            panic!("expected anticipation");
        };
        assert_eq!(deadline, t(100) + SimDuration::from_millis(6));
        // Process 0's follow-up arrives in time and is served seek-free.
        s.add(req(3, 0, 8), t(500));
        assert!(matches!(s.next(t(500)), SchedDecision::Dispatch(r) if r.id == 3));
    }

    #[test]
    fn anticipation_times_out() {
        let mut s = Anticipatory::new(SimDuration::from_millis(6));
        s.add(req(1, 0, 0), t(0));
        s.add(req(2, 1, 1_000_000), t(0));
        let _ = s.next(t(0));
        let SchedDecision::WaitUntil(deadline) = s.next(t(10)) else { panic!() };
        // Past the deadline the other process is served.
        let after = deadline + SimDuration::from_nanos(1);
        assert!(matches!(s.next(after), SchedDecision::Dispatch(r) if r.id == 2));
    }

    #[test]
    fn batch_limit_prevents_monopoly() {
        let mut s = Anticipatory::new(SimDuration::from_millis(6));
        // Process 0 has a deep queue; process 1 has one request.
        for i in 0..32 {
            s.add(req(i, 0, i * 8), t(0));
        }
        s.add(req(99, 1, 500_000), t(0));
        let mut served_0 = 0;
        loop {
            match s.next(t(1)) {
                SchedDecision::Dispatch(r) if r.process == 0 => served_0 += 1,
                SchedDecision::Dispatch(r) => {
                    assert_eq!(r.id, 99);
                    break;
                }
                other => panic!("{other:?}"),
            }
            assert!(served_0 <= 16, "batch limit exceeded");
        }
        assert_eq!(served_0, 16);
    }

    #[test]
    fn idle_when_empty() {
        let mut s = Anticipatory::new(SimDuration::from_millis(6));
        assert_eq!(s.next(t(0)), SchedDecision::Idle);
        assert_eq!(s.queued(), 0);
    }

    #[test]
    fn no_anticipation_before_first_dispatch() {
        let mut s = Anticipatory::new(SimDuration::from_millis(6));
        s.add(req(1, 3, 42), t(0));
        assert!(matches!(s.next(t(0)), SchedDecision::Dispatch(r) if r.id == 1));
    }
}
