//! # seqio-telemetry
//!
//! Cluster-wide telemetry for the `seqio` simulation: cross-tier trace
//! correlation, tail-latency attribution and SLO burn-rate monitoring.
//!
//! The observability layers below (PR 4's spans and metrics, PR 6's
//! cluster merge, PR 8's session SLOs) each answer a per-tier question.
//! This crate answers the operator's questions across tiers, as pure
//! post-run computations over artifacts the layers already produce — no
//! recording path changes, so the zero-perturbation guarantee pinned by
//! `obs_neutrality.rs` carries over wholesale:
//!
//! * [`correlate`] — joins the client tier's session schedule, the
//!   cluster's placement/migration record and every node's span log into
//!   one [`SessionTrace`] per session, following sessions across mid-run
//!   migrations; serializes to JSON Lines for `seqio report
//!   --correlate`.
//! * [`TailAttribution`] — decomposes a latency percentile band
//!   (p99–p100 by default) into additive buckets — arrival wait, the
//!   span phases, inter-request gap — with a phase-share table summing
//!   to 100%, dominant-phase counts and worst-offender exemplars.
//! * [`monitor`] — multi-window SLO burn-rate monitoring in the SRE
//!   style (page at 5x on fast+slow windows, warn at 1x), emitting a
//!   deterministic alert record and a `slo.*` metric series on the same
//!   tick grid the [`MetricsHub`](seqio_simcore::MetricsHub) samples on.
//!
//! # Example
//!
//! ```
//! use seqio_client::{ArrivalConfig, ClientExperiment};
//! use seqio_node::{Experiment, ObsConfig};
//! use seqio_simcore::SimDuration;
//! use seqio_telemetry::{correlate, monitor, BurnRateConfig, TailAttribution};
//!
//! let template = Experiment::builder()
//!     .warmup(SimDuration::ZERO)
//!     .duration(SimDuration::from_secs(5))
//!     .observe(ObsConfig::new().with_spans())
//!     .build();
//! let xp = ClientExperiment::builder()
//!     .template(template)
//!     .nodes(2)
//!     .base_seed(7)
//!     .arrivals(ArrivalConfig { rate_per_sec: 40.0, ..ArrivalConfig::default() })
//!     .build();
//! let schedule = xp.session_schedule().unwrap();
//! let result = xp.run().unwrap();
//!
//! let traces = correlate(&result, &schedule);
//! let tail = TailAttribution::compute(&traces, 0.99, 1.0).unwrap();
//! assert!((tail.share_sum_pct() - 100.0).abs() < 1e-6);
//!
//! let slo = result.slo.as_ref().unwrap();
//! let burn = monitor(&traces, &BurnRateConfig::from_slo(slo), SimDuration::from_millis(100))
//!     .unwrap();
//! assert_eq!(burn.completed, slo.completed);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod attribution;
mod burnrate;
mod correlate;
mod json;

pub use attribution::{parse_percentile, PhaseShare, TailAttribution, TailExemplar};
pub use burnrate::{
    monitor, monitor_samples, AlertEvent, AlertSeverity, BurnRateConfig, BurnRateReport,
};
pub use correlate::{
    bucket_names, correlate, correlate_cluster, traces_from_jsonl, traces_to_jsonl, SessionTrace,
    TraceSpan, BUCKETS,
};
