//! Property tests for the fair-share link: conservation, max-min
//! fairness, monotonicity of the pure allocator, and insertion-order
//! determinism of the full progressive-filling link simulation.

use proptest::prelude::*;
use seqio_simcore::{max_min_rates, FairShareLink, LinkDelivery, SimComponent, SimTime};

/// Builds a positive, finite demand vector from raw generator output.
fn demands_from(raw: &[u16]) -> Vec<f64> {
    raw.iter().map(|&d| f64::from(d) + 1.0).collect()
}

/// Runs `n` transfers through a link, inserting the starts of each
/// simultaneous batch in the order given by `perm`, and returns the
/// deliveries.
fn run_link(capacity: f64, transfers: &[(u64, u64, f64)], order: &[usize]) -> Vec<LinkDelivery> {
    let mut link = FairShareLink::new(capacity).expect("positive capacity");
    link.init();
    // Starts must be fed in time order; the stable sort keeps `order`'s
    // relative arrangement within each simultaneous batch (the property
    // under test).
    let mut idx: Vec<usize> = order.to_vec();
    idx.sort_by_key(|&i| transfers[i].0);
    for &i in &idx {
        let (start_ns, bytes, demand) = transfers[i];
        link.start_transfer(SimTime::from_nanos(start_ns), bytes, demand, i as u64);
    }
    link.advance_to(SimTime::MAX);
    link.take_deliveries()
}

proptest! {
    /// Conservation: granted rates sum to `min(capacity, sum demands)`
    /// (up to fp rounding) — the link never oversubscribes and never
    /// leaves claimable bandwidth idle.
    #[test]
    fn prop_allocation_conserves_capacity(
        capacity_raw in 1u32..1_000_000,
        raw in proptest::collection::vec(any::<u16>(), 1..40),
    ) {
        let capacity = f64::from(capacity_raw);
        let demands = demands_from(&raw);
        let rates = max_min_rates(capacity, &demands);
        let granted: f64 = rates.iter().sum();
        let claimable: f64 = demands.iter().sum::<f64>().min(capacity);
        prop_assert!(
            (granted - claimable).abs() <= 1e-9 * claimable.max(1.0),
            "granted {granted} != claimable {claimable}"
        );
    }

    /// Max-min fairness: nobody sits below `min(demand, capacity / n)` —
    /// a transfer is only ever short of the equal share because its own
    /// demand is smaller.
    #[test]
    fn prop_no_one_below_the_fair_share(
        capacity_raw in 1u32..1_000_000,
        raw in proptest::collection::vec(any::<u16>(), 1..40),
    ) {
        let capacity = f64::from(capacity_raw);
        let demands = demands_from(&raw);
        let rates = max_min_rates(capacity, &demands);
        let equal = capacity / demands.len() as f64;
        for (i, (&rate, &demand)) in rates.iter().zip(&demands).enumerate() {
            let floor = demand.min(equal);
            prop_assert!(
                rate >= floor - 1e-9 * floor.max(1.0),
                "transfer {i}: rate {rate} below fair floor {floor}"
            );
            prop_assert!(rate <= demand + 1e-12, "transfer {i} granted above its demand");
        }
    }

    /// Monotonicity: adding one more transfer never *raises* any
    /// existing transfer's rate.
    #[test]
    fn prop_adding_a_transfer_never_raises_others(
        capacity_raw in 1u32..1_000_000,
        raw in proptest::collection::vec(any::<u16>(), 1..40),
        extra in any::<u16>(),
    ) {
        let capacity = f64::from(capacity_raw);
        let demands = demands_from(&raw);
        let before = max_min_rates(capacity, &demands);
        let mut grown = demands.clone();
        grown.push(f64::from(extra) + 1.0);
        let after = max_min_rates(capacity, &grown);
        for (i, (&b, &a)) in before.iter().zip(&after).enumerate() {
            prop_assert!(
                a <= b + 1e-9 * b.max(1.0),
                "transfer {i} rose from {b} to {a} when a competitor joined"
            );
        }
    }

    /// Allocation is invariant under permutation of the demand vector:
    /// each transfer's rate depends only on its own demand and the
    /// multiset of competitors.
    #[test]
    fn prop_allocation_is_permutation_invariant(
        capacity_raw in 1u32..1_000_000,
        raw in proptest::collection::vec(any::<u16>(), 2..30),
        rot in 1usize..29,
    ) {
        let capacity = f64::from(capacity_raw);
        let demands = demands_from(&raw);
        let rot = rot % demands.len();
        let mut rotated = demands.clone();
        rotated.rotate_left(rot);
        let base = max_min_rates(capacity, &demands);
        let perm = max_min_rates(capacity, &rotated);
        for (i, p) in perm.iter().enumerate() {
            let j = (i + rot) % demands.len();
            prop_assert_eq!(
                base[j].to_bits(),
                p.to_bits(),
                "rate changed under permutation at index {}",
                j
            );
        }
    }

    /// Completion-order determinism: permuting the insertion order of
    /// simultaneous transfers changes no delivery instant and no
    /// delivery order (ties always resolve by ascending tag).
    #[test]
    fn prop_deliveries_are_insertion_order_invariant(
        capacity_raw in 1u32..100_000,
        raw in proptest::collection::vec((0u64..5, 1u64..100_000, any::<bool>()), 1..20),
        rot in 1usize..19,
    ) {
        let capacity = f64::from(capacity_raw);
        // A handful of start instants so simultaneous batches are common.
        let transfers: Vec<(u64, u64, f64)> = raw
            .iter()
            .map(|&(slot, bytes, capped)| {
                let demand = if capped { capacity / 3.0 } else { f64::INFINITY };
                (slot * 1_000_000, bytes, demand)
            })
            .collect();
        let forward: Vec<usize> = (0..transfers.len()).collect();
        let mut permuted = forward.clone();
        permuted.rotate_left(rot % transfers.len());
        let a = run_link(capacity, &transfers, &forward);
        let b = run_link(capacity, &transfers, &permuted);
        prop_assert_eq!(a.len(), transfers.len(), "every transfer is delivered");
        prop_assert_eq!(a, b, "insertion order leaked into deliveries");
    }
}
