//! Worker-count invariance and the identity reduction.
//!
//! The two contracts the front-end tier must keep:
//!
//! 1. an open-loop run with arrivals and a finite link enabled is
//!    bit-identical at every worker count (nodes advance independently;
//!    the link overlay is a single-threaded pass over a deterministic
//!    order);
//! 2. the identity configuration — closed loop, unconstrained link —
//!    reduces bit-identically to the plain cluster driver on every
//!    pre-existing output, span and metric recordings included; only the
//!    new `slo` field is filled in.

use seqio_client::{ArrivalConfig, ClientExperiment, DriveMode, LinkConfig, RateModulation};
use seqio_cluster::{ClusterExperiment, ClusterResult, SessionSlo, ShardPolicy};
use seqio_node::Experiment;
use seqio_simcore::{ObsConfig, SimDuration};

fn open_template() -> Experiment {
    Experiment::builder().warmup(SimDuration::ZERO).duration(SimDuration::from_secs(8)).build()
}

fn arrivals() -> ArrivalConfig {
    ArrivalConfig {
        rate_per_sec: 120.0,
        modulation: RateModulation::Bursty {
            period: SimDuration::from_secs(2),
            duty: 0.25,
            on_factor: 4.0,
        },
        titles: 96,
        zipf_exponent: 0.9,
        requests_per_session: 3,
        session_lifetime: Some(SimDuration::from_secs(4)),
    }
}

fn fingerprint(r: &ClusterResult) -> (Vec<u64>, u64, u64, u64, u64, Option<SessionSlo>) {
    (
        r.per_stream_mbs.iter().map(|m| m.to_bits()).collect(),
        r.bytes_delivered,
        r.requests_completed,
        r.events_simulated,
        r.window.as_nanos(),
        r.slo.clone(),
    )
}

#[test]
fn open_loop_is_bit_identical_at_any_worker_count() {
    let run_with = |jobs: usize| {
        ClientExperiment::builder()
            .template(open_template())
            .nodes(3)
            .base_seed(11)
            .jobs(jobs)
            .arrivals(arrivals())
            .link(LinkConfig { capacity_bps: 40.0 * 1024.0 * 1024.0, ..LinkConfig::default() })
            .run()
            .unwrap()
    };
    let one = run_with(1);
    assert!(one.slo.is_some(), "the workload must complete sessions");
    for jobs in [2, 3, 7] {
        let other = run_with(jobs);
        assert_eq!(
            fingerprint(&one),
            fingerprint(&other),
            "SEQIO_JOBS={jobs} diverged from the single-worker run"
        );
        // Per-node detail must match too, spans included.
        for (a, b) in one.nodes.iter().zip(&other.nodes) {
            let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
            assert_eq!(ra.stream_done_at, rb.stream_done_at);
            assert_eq!(ra.per_stream_bytes, rb.per_stream_bytes);
        }
    }
}

#[test]
fn lifetime_bound_abandons_sessions_without_breaking_determinism() {
    let mut cfg = arrivals();
    cfg.session_lifetime = Some(SimDuration::from_millis(120));
    let run = || {
        ClientExperiment::builder()
            .template(open_template())
            .nodes(2)
            .base_seed(5)
            .arrivals(cfg.clone())
            .run()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(fingerprint(&a), fingerprint(&b));
    let slo = a.slo.expect("some sessions still complete inside 120 ms");
    assert!(
        slo.completed < slo.sessions,
        "a tight lifetime must abandon some sessions ({} of {})",
        slo.completed,
        slo.sessions
    );
    // Every measured latency fits under the lifetime bound plus the
    // final request's in-flight remainder — sanity-check the ceiling.
    assert!(slo.max_ms < 1_000.0, "abandoned sessions leaked into the SLO: {}", slo.max_ms);
}

#[test]
fn identity_configuration_reduces_to_the_plain_cluster_run() {
    let template = Experiment::builder()
        .streams_per_disk(6)
        .requests_per_stream(40)
        .warmup(SimDuration::from_millis(200))
        .duration(SimDuration::from_secs(6))
        .seed(11)
        .observe(ObsConfig::all())
        .build();
    let plain = ClusterExperiment::builder()
        .template(template.clone())
        .nodes(2)
        .policy(ShardPolicy::HashByStream)
        .base_seed(11)
        .run()
        .unwrap();
    let via_client = ClientExperiment::builder()
        .template(template)
        .nodes(2)
        .policy(ShardPolicy::HashByStream)
        .base_seed(11)
        .run()
        .unwrap();

    let plain_bits: Vec<u64> = plain.per_stream_mbs.iter().map(|m| m.to_bits()).collect();
    let client_bits: Vec<u64> = via_client.per_stream_mbs.iter().map(|m| m.to_bits()).collect();
    assert_eq!(plain_bits, client_bits);
    assert_eq!(plain.bytes_delivered, via_client.bytes_delivered);
    assert_eq!(plain.requests_completed, via_client.requests_completed);
    assert_eq!(plain.events_simulated, via_client.events_simulated);
    assert_eq!(plain.window, via_client.window);
    assert_eq!(plain.assignment, via_client.assignment);

    // Spans and metrics are byte-identical: an unconstrained link stamps
    // nothing.
    for (a, b) in plain.nodes.iter().zip(&via_client.nodes) {
        let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        assert_eq!(ra.spans, rb.spans, "identity mode must not touch spans");
        assert_eq!(
            ra.metrics.as_ref().map(seqio_simcore::MetricSeries::to_csv),
            rb.metrics.as_ref().map(seqio_simcore::MetricSeries::to_csv),
            "identity mode must not touch metrics"
        );
        assert_eq!(ra.stream_done_at, rb.stream_done_at);
    }

    // The only difference: the client tier fills in the SLO, and with no
    // network in the way every latency equals the storage completion
    // instant.
    assert!(plain.slo.is_none());
    let slo = via_client.slo.expect("finite streams all complete");
    assert_eq!(slo.sessions, 12);
    assert_eq!(slo.completed, 12);
    assert!(slo.p50_ms > 0.0);
}

#[test]
fn finite_link_stamps_the_network_phase_and_stretches_the_tail() {
    let template = Experiment::builder()
        .streams_per_disk(8)
        .requests_per_stream(30)
        .warmup(SimDuration::ZERO)
        .duration(SimDuration::from_secs(10))
        .seed(3)
        .observe(ObsConfig::new().with_spans())
        .build();
    let free = ClientExperiment::builder().template(template.clone()).run().unwrap();
    // 2 MB/s shared across eight ~2 MB responses: a visible network tail.
    let choked = ClientExperiment::builder()
        .template(template)
        .link(LinkConfig { capacity_bps: 2.0 * 1024.0 * 1024.0, ..LinkConfig::default() })
        .run()
        .unwrap();
    let (f, c) = (free.slo.unwrap(), choked.slo.unwrap());
    assert_eq!(f.completed, 8);
    assert_eq!(c.completed, 8);
    assert!(c.p99_ms > f.p99_ms, "a choked link must stretch the tail");
    // Storage-side outputs are untouched by link configuration.
    assert_eq!(free.bytes_delivered, choked.bytes_delivered);
    assert_eq!(free.events_simulated, choked.events_simulated);

    // Exactly one span per stream gained a network_delivered stamp: the
    // session's final request.
    let spans = choked.nodes[0].result.as_ref().unwrap().spans.as_ref().unwrap();
    let stamped: Vec<_> = spans
        .iter()
        .filter(|s| s.stamp(seqio_simcore::SpanPhase::NetworkDelivered).is_some())
        .collect();
    assert_eq!(stamped.len(), 8, "one network stamp per completed session");
    for s in &stamped {
        assert!(s.stamp(seqio_simcore::SpanPhase::NetworkDelivered).unwrap() >= s.delivered());
        assert!(s.total() >= s.delivered().duration_since(s.enqueued()));
    }
    let free_spans = free.nodes[0].result.as_ref().unwrap().spans.as_ref().unwrap();
    assert!(
        free_spans.iter().all(|s| s.stamp(seqio_simcore::SpanPhase::NetworkDelivered).is_none()),
        "an unconstrained link stamps nothing"
    );
}

#[test]
fn open_loop_rejects_incompatible_templates() {
    let mut template = open_template();
    template.faults = Some(seqio_simcore::FaultPlan::new().read_errors(0, 0.01));
    let err = ClientExperiment::builder()
        .template(template)
        .arrivals(ArrivalConfig::default())
        .run()
        .unwrap_err();
    assert!(err.to_string().contains("fault"), "unexpected error: {err}");

    let bad_link = ClientExperiment::builder()
        .link(LinkConfig { capacity_bps: 0.0, ..LinkConfig::default() })
        .run()
        .unwrap_err();
    assert!(bad_link.to_string().contains("capacity"));
}

#[test]
fn drive_mode_is_inspectable() {
    let e = ClientExperiment::builder().arrivals(ArrivalConfig::default()).build();
    assert!(matches!(e.mode, DriveMode::OpenLoop(_)));
    let e = ClientExperiment::builder().build();
    assert!(matches!(e.mode, DriveMode::ClosedLoop));
}
