//! End-to-end CLI coverage driving the compiled `seqio` binary: the
//! `report --slo` zero-completed-sessions report stays a clean report
//! (not NaN percentiles or a hard error), and `scenario record` →
//! `scenario replay` reproduces `scenario run` exactly.

use std::path::PathBuf;
use std::process::{Command, Output};

fn seqio(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_seqio")).args(args).output().expect("the seqio binary runs")
}

fn stdout(out: &Output) -> String {
    assert!(
        out.status.success(),
        "seqio exited with {:?}: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seqio-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A span file recorded by a plain `run` carries no network-delivered
/// stamps, so the session SLO has zero completed sessions. That is a
/// legitimate outcome and must produce a clean report — historically it
/// was a hard error, and naive percentile math would print NaNs.
#[test]
fn report_slo_with_zero_completed_sessions_is_a_clean_report() {
    let dir = scratch_dir("slo");
    let spans = dir.join("spans.csv");
    let spans = spans.to_str().unwrap();
    stdout(&seqio(&[
        "run",
        "--streams",
        "2",
        "--requests",
        "4",
        "--warmup",
        "0s",
        "--duration",
        "200ms",
        "--trace-out",
        spans,
    ]));

    let report = stdout(&seqio(&["report", "--spans", spans, "--slo"]));
    assert!(
        report.contains("no completed sessions"),
        "zero-completed SLO report missing:\n{report}"
    );
    assert!(!report.contains("NaN"), "SLO report leaked NaN percentiles:\n{report}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `scenario record` writes the trace a `scenario run` of the same kind
/// and seed would generate, and `scenario replay` of that file reproduces
/// the run's report byte-for-byte (totals, per-node lines, retunes).
#[test]
fn scenario_record_then_replay_matches_the_direct_run() {
    let dir = scratch_dir("scenario");
    let trace = dir.join("mixed.trace");
    let trace = trace.to_str().unwrap();

    let recorded = stdout(&seqio(&["scenario", "record", "--kind", "mixed", "--out", trace]));
    assert!(recorded.contains("recorded:"), "{recorded}");
    let text = std::fs::read_to_string(trace).unwrap();
    assert!(text.starts_with("# seqio scenario trace v1"), "unexpected trace header:\n{text}");

    let run = stdout(&seqio(&["scenario", "run", "--kind", "mixed", "--adaptive"]));
    let replay = stdout(&seqio(&["scenario", "replay", "--trace", trace, "--adaptive"]));
    assert_eq!(run, replay, "replaying the recorded trace diverged from the original run");
    assert!(run.contains("total:"), "{run}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Unknown scenario kinds and verbs fail with errors naming the choices.
#[test]
fn scenario_errors_name_the_valid_choices() {
    let out = seqio(&["scenario", "run", "--kind", "bogus"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("bogus") && err.contains("seek-restart"), "{err}");

    let out = seqio(&["scenario", "frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("run|record|replay"), "{err}");
}
