//! Quick start: the paper's headline result in one page.
//!
//! 100 sequential streams on one disk collapse the direct path to a few
//! MB/s; the host-level stream scheduler restores near-maximum throughput
//! with a bounded amount of staging memory.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use seqio::prelude::*;
use seqio::simcore::units::MIB;

fn main() {
    let streams = 100;
    let warmup = SimDuration::from_secs(5);
    let duration = SimDuration::from_secs(6);

    println!("single disk, {streams} sequential streams, 64 KiB requests\n");

    // Baseline: requests flow straight to the disk. A single-node study
    // is a 1-node `Scenario`; the builder validates everything up front.
    let direct = Scenario::builder()
        .streams_per_disk(streams)
        .warmup(warmup)
        .duration(duration)
        .seed(7)
        .build()
        .expect("valid scenario")
        .run_node()
        .expect("single node");
    println!(
        "direct path:       {:6.1} MB/s   mean response {:7.1} ms",
        direct.total_throughput_mbs(),
        direct.mean_response_ms()
    );

    // The paper's scheduler: detect streams, dispatch them with 4 MiB
    // read-ahead, stage the data in host memory.
    let sched = Scenario::builder()
        .streams_per_disk(streams)
        .frontend(Frontend::stream_scheduler_with_readahead(4 * MIB))
        .warmup(warmup)
        .duration(duration)
        .seed(7)
        .build()
        .expect("valid scenario")
        .run_node()
        .expect("single node");
    println!(
        "stream scheduler:  {:6.1} MB/s   mean response {:7.1} ms",
        sched.total_throughput_mbs(),
        sched.mean_response_ms()
    );

    let m = sched.server_metrics.expect("stream scheduler reports metrics");
    println!(
        "\nscheduler internals: {} streams detected, {} read-ahead fills, \
         {} of {} requests served from memory",
        m.streams_detected, m.fills_issued, m.memory_hits, m.client_requests
    );
    println!(
        "\nimprovement: {:.1}x (the paper reports up to 4x at 100 streams)",
        sched.total_throughput_mbs() / direct.total_throughput_mbs()
    );
}
