//! Figure 12 — Throughput for an 8-disk setup with every stream dispatched
//! (`D = S`, `N = 1`, `M = D*R*N`).
//!
//! Paper: one controller hosting eight disks; regardless of read-ahead,
//! throughput stays far below the controller's ~450 MB/s because the
//! controller must manage an enormous number of large resident request
//! buffers (its per-request cost grows with residency).

use seqio_bench::{quick_mode, window_secs, Figure, Grid};
use seqio_node::{Experiment, Frontend, NodeShape};
use seqio_simcore::units::{format_bytes, KIB, MIB};

fn main() {
    let (warmup, duration) = window_secs((6, 6), (10, 10));
    let stream_counts: Vec<usize> =
        if quick_mode() { vec![10, 30, 100] } else { vec![10, 30, 60, 100] };
    let readaheads: Vec<Option<u64>> = if quick_mode() {
        vec![None, Some(512 * KIB), Some(2 * MIB)]
    } else {
        vec![None, Some(512 * KIB), Some(MIB), Some(2 * MIB)]
    };

    let mut grid = Grid::new();
    for &ra in &readaheads {
        let label = match ra {
            None => "No Readahead".to_string(),
            Some(r) => format!("R = {}", format_bytes(r)),
        };
        for &n in &stream_counts {
            let mut b = Experiment::builder()
                .shape(NodeShape::eight_disk())
                .streams_per_disk(n)
                .warmup(warmup)
                .duration(duration)
                .seed(1212);
            if let Some(r) = ra {
                b = b.frontend(Frontend::stream_scheduler_with_readahead(r));
            }
            grid = grid.point(&label, n.to_string(), b.build());
        }
    }

    let mut fig = Figure::new(
        "Figure 12",
        "8-disk setup, all streams dispatched (D=S, N=1, M=D*R*N)",
        "Streams per Disk",
        "Throughput (MBytes/s)",
    );
    grid.run().fill(&mut fig, |r| r.total_throughput_mbs());
    fig.report("fig12_eight_disks");

    // Shape checks (paper: "throughput reduces significantly regardless of
    // the read-ahead value"). The 512K and 1M curves stay far below the
    // 450 MB/s aggregate at every stream count, and the average across all
    // read-ahead curves sits well under it too. (At R=2M and 100
    // streams/disk our resident-pressure model partially self-relieves and
    // that single point climbs back towards the aggregate — noted in
    // EXPERIMENTS.md.)
    for s in fig.series.iter().skip(1).take(fig.series.len().saturating_sub(2)) {
        let max = s.ys().iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            max < 400.0,
            "{}: D=S must stay below the controller maximum, got {max:.0}",
            s.label
        );
    }
    let all: Vec<f64> = fig.series.iter().skip(1).flat_map(|s| s.ys()).collect();
    let mean = all.iter().sum::<f64>() / all.len() as f64;
    assert!(mean < 350.0, "mean across read-ahead curves should stay below 350, got {mean:.0}");
    println!("shape ok: mean {mean:.0} MB/s of 450 available across read-ahead curves");
}
