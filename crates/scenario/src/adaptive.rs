//! Adaptive autotuning of the stream scheduler.
//!
//! [`AdaptiveTuner`] is an [`EpochController`] over [`HealthSnapshot`]s: at
//! every epoch boundary the scenario runner hands it the node's model-state
//! health (disk queues, cumulative busy time, straggler factors, staged
//! bytes — never the opt-in observability recorder) and the tuner may emit
//! a [`RetuneAction`] adjusting `D`, `R`, `N` and the degraded-rotate
//! threshold mid-run. `M` is fixed at construction, so every action keeps
//! the paper's memory invariant `D * R * N <= M`.
//!
//! The tuner is deliberately conservative: each rule fires only on a clear
//! pathology, so on a healthy, well-tuned node it emits nothing — and a
//! run whose tuner never emits is bit-identical to the static tune (epoch
//! health polling is read-only). [`AdaptiveConfig::inert`] makes that a
//! guarantee rather than a tendency, which the retune-neutrality tests
//! pin down to the golden figure hash.

use seqio_core::ServerConfig;
use seqio_node::HealthSnapshot;
use seqio_simcore::{EpochController, SimDuration, SimTime};

/// A mid-run change to the scheduler's dynamic knobs, applied through
/// [`NodeSim::retune`](seqio_node::NodeSim::retune).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetuneAction {
    /// New `D`.
    pub dispatch_streams: usize,
    /// New `R` in bytes.
    pub read_ahead_bytes: u64,
    /// New `N`.
    pub requests_per_residency: u64,
    /// New degraded-rotate threshold.
    pub degraded_rotate_threshold: f64,
}

/// Thresholds governing when [`AdaptiveTuner`] acts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Spacing of epoch boundaries at which health is sampled.
    pub epoch: SimDuration,
    /// Straggler rule: when the worst per-disk straggler factor exceeds
    /// this but sits below the current rotate threshold (so static tuning
    /// would never rotate), lower the threshold to just under the observed
    /// factor.
    pub straggler_fire_above: f64,
    /// Widen rule, part 1: staged bytes exceed this fraction of `M`...
    pub staged_high_frac: f64,
    /// Widen rule, part 2: ...while the mean disk busy fraction over the
    /// epoch is below this. Staged data piling up while disks idle means
    /// the few dispatched streams hold residencies far longer than their
    /// consumers can drain, starving everyone else: trade residency depth
    /// for dispatch width (`D *= 2`, `N /= 2` — the memory product
    /// `D * R * N` is unchanged).
    pub busy_thrash_below: f64,
    /// Underutilization rule: mean busy fraction below this while at least
    /// `2 * D` streams are live means the dispatch set cycles too fast;
    /// `N` is doubled (memory invariant permitting).
    pub busy_idle_below: f64,
    /// Upper bound for `N` when doubling.
    pub max_requests_per_residency: u64,
}

impl AdaptiveConfig {
    /// Production thresholds: act on mild stragglers the static threshold
    /// misses, on staged data piling up over idle disks, and on a visibly
    /// idle dispatch set.
    pub fn standard() -> AdaptiveConfig {
        AdaptiveConfig {
            epoch: SimDuration::from_millis(250),
            straggler_fire_above: 1.05,
            staged_high_frac: 0.25,
            busy_thrash_below: 0.25,
            busy_idle_below: 0.25,
            max_requests_per_residency: 128,
        }
    }

    /// A tuner that can never fire: every rule's trigger is unreachable
    /// (infinite highs, zero lows). Running with this is bit-identical to
    /// the static tune — the retune-neutrality tests rely on it.
    pub fn inert() -> AdaptiveConfig {
        AdaptiveConfig {
            epoch: SimDuration::from_millis(250),
            straggler_fire_above: f64::INFINITY,
            staged_high_frac: f64::INFINITY,
            busy_thrash_below: 0.0,
            busy_idle_below: 0.0,
            max_requests_per_residency: u64::MAX,
        }
    }
}

/// Feedback controller adapting the stream scheduler's knobs from epoch
/// health snapshots (see module docs).
#[derive(Debug, Clone)]
pub struct AdaptiveTuner {
    cfg: AdaptiveConfig,
    /// The tune currently applied on the node.
    dispatch_streams: usize,
    read_ahead_bytes: u64,
    requests_per_residency: u64,
    threshold: f64,
    /// Fixed pool size the invariant is checked against.
    memory_bytes: u64,
    /// Busy-time integral at the previous epoch boundary, for the
    /// per-epoch busy fraction.
    prev_at: SimTime,
    prev_busy: SimDuration,
    emitted: usize,
}

impl AdaptiveTuner {
    /// A tuner starting from the static tune `server` with thresholds
    /// `cfg`.
    pub fn new(server: &ServerConfig, cfg: AdaptiveConfig) -> AdaptiveTuner {
        AdaptiveTuner {
            cfg,
            dispatch_streams: server.dispatch_streams,
            read_ahead_bytes: server.read_ahead_bytes,
            requests_per_residency: server.requests_per_residency,
            threshold: server.degraded_rotate_threshold,
            memory_bytes: server.memory_bytes,
            prev_at: SimTime::ZERO,
            prev_busy: SimDuration::ZERO,
            emitted: 0,
        }
    }

    /// Epoch spacing the runner should poll at.
    pub fn epoch_len(&self) -> SimDuration {
        self.cfg.epoch
    }

    /// Actions emitted so far.
    pub fn actions_emitted(&self) -> usize {
        self.emitted
    }

    fn action(&self) -> RetuneAction {
        RetuneAction {
            dispatch_streams: self.dispatch_streams,
            read_ahead_bytes: self.read_ahead_bytes,
            requests_per_residency: self.requests_per_residency,
            degraded_rotate_threshold: self.threshold,
        }
    }

    /// Mean per-disk busy fraction since the previous epoch boundary.
    fn busy_fraction(&mut self, at: SimTime, obs: &HealthSnapshot) -> f64 {
        let busy_now: SimDuration = obs.busy_time.iter().copied().sum();
        let elapsed = at.saturating_duration_since(self.prev_at);
        let delta = busy_now.saturating_sub(self.prev_busy);
        self.prev_at = at;
        self.prev_busy = busy_now;
        let disks = obs.busy_time.len().max(1) as u64;
        if elapsed == SimDuration::ZERO {
            return 1.0;
        }
        (delta.as_secs_f64() / disks as f64) / elapsed.as_secs_f64()
    }
}

impl EpochController<HealthSnapshot> for AdaptiveTuner {
    type Action = RetuneAction;

    fn epoch(&mut self, at: SimTime, obs: &HealthSnapshot) -> Option<RetuneAction> {
        let busy = self.busy_fraction(at, obs);
        let before = self.action();

        // Straggler rule: a disk is mildly degraded — below the current
        // rotate threshold, so the scheduler keeps granting it full
        // residencies — but clearly unhealthy. Drop the threshold to just
        // under the observed factor so degraded-mode rotation engages.
        // Rotation only reallocates dispatch capacity when `D` is below
        // the disk count (at `D >= disks` every disk owns its quota slot
        // and a freed slot can only return to the same slow disk), so the
        // rule stays inert on a full-width tune.
        let worst = obs.worst_straggler_factor();
        if self.dispatch_streams < obs.queue_depths.len()
            && worst > self.cfg.straggler_fire_above
            && worst < self.threshold
        {
            self.threshold = (worst * 0.75).max(self.cfg.straggler_fire_above);
        }

        // Widen rule: staged data piles up while disks sit idle — the few
        // dispatched streams hold residencies their consumers cannot
        // drain, starving the rest of the live set. Trade residency depth
        // for dispatch width: `D *= 2`, `N /= 2`, leaving the memory
        // product `D * R * N` (and so the paper invariant) untouched.
        // Bounded by the live population — dispatching wider than the
        // stream set buys nothing. Mutually exclusive with the doubling
        // rule below, which would otherwise undo the halving within the
        // same epoch.
        let staged_high =
            obs.staged_bytes as f64 > self.cfg.staged_high_frac * self.memory_bytes as f64;
        let wider = self.dispatch_streams.saturating_mul(2);
        if staged_high
            && busy < self.cfg.busy_thrash_below
            && self.requests_per_residency > 1
            && wider <= obs.live_streams.max(obs.queue_depths.len())
        {
            self.dispatch_streams = wider;
            self.requests_per_residency /= 2;
        } else {
            // Underutilization rule: plenty of live streams but disks
            // mostly idle — the dispatch set churns faster than it fills.
            // Double `N` while the invariant holds.
            let doubled = self.requests_per_residency.saturating_mul(2);
            let fits = (self.dispatch_streams as u64)
                .saturating_mul(self.read_ahead_bytes)
                .saturating_mul(doubled)
                <= self.memory_bytes;
            if busy < self.cfg.busy_idle_below
                && obs.live_streams >= 2 * self.dispatch_streams
                && doubled <= self.cfg.max_requests_per_residency
                && fits
            {
                self.requests_per_residency = doubled;
            }
        }

        let after = self.action();
        if after == before {
            None
        } else {
            self.emitted += 1;
            Some(after)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // 8 disks, so default_tuning's D=4 sits below the disk count and the
    // straggler rule is armed.
    fn snapshot(
        straggler: f64,
        staged: u64,
        busy_each: SimDuration,
        live: usize,
    ) -> HealthSnapshot {
        let mut factors = vec![1.0; 8];
        factors[0] = straggler;
        HealthSnapshot {
            queue_depths: vec![0; 8],
            busy_time: vec![busy_each; 8],
            straggler_factors: factors,
            live_streams: live,
            staged_bytes: staged,
        }
    }

    fn tuner(cfg: AdaptiveConfig) -> AdaptiveTuner {
        AdaptiveTuner::new(&ServerConfig::default_tuning(), cfg)
    }

    #[test]
    fn inert_tuner_never_emits() {
        let mut t = tuner(AdaptiveConfig::inert());
        let mut at = SimTime::ZERO;
        for i in 0..20 {
            at += t.epoch_len();
            // Wildly varying health: still nothing may fire.
            let obs = snapshot(1.0 + i as f64, u64::MAX / 2, SimDuration::ZERO, 1000);
            assert_eq!(t.epoch(at, &obs), None);
        }
        assert_eq!(t.actions_emitted(), 0);
    }

    #[test]
    fn mild_straggler_lowers_the_threshold() {
        let mut t = tuner(AdaptiveConfig::standard());
        let at = SimTime::ZERO + t.epoch_len();
        // Busy disks, mild 1.8x straggler: static threshold 2.0 ignores it.
        let a = t.epoch(at, &snapshot(1.8, 0, t.epoch_len(), 8)).expect("straggler rule fires");
        assert!(a.degraded_rotate_threshold < 1.8, "{a:?}");
        assert!(a.degraded_rotate_threshold >= 1.05, "{a:?}");
        // One epoch later (busy time grown by a full epoch per disk):
        // tune already applied, nothing new.
        let again = t.epoch(at + t.epoch_len(), &snapshot(1.8, 0, t.epoch_len() * 2, 8));
        assert_eq!(again, None);
        assert_eq!(t.actions_emitted(), 1);
    }

    #[test]
    fn severe_straggler_is_left_to_the_static_threshold() {
        // 4x exceeds the configured rotate threshold (2.0): the scheduler
        // already rotates it, so the tuner must not touch anything.
        let mut t = tuner(AdaptiveConfig::standard());
        let at = SimTime::ZERO + t.epoch_len();
        assert_eq!(t.epoch(at, &snapshot(4.0, 0, t.epoch_len(), 8)), None);
    }

    #[test]
    fn staged_pileup_widens_and_idle_doubles_n() {
        // default_tuning: D=4, R=1MiB, N=8, M=64MiB.
        let m = ServerConfig::default_tuning().memory_bytes;
        let mut t = tuner(AdaptiveConfig::standard());
        let e = t.epoch_len();
        // Staged pileup over idle disks -> trade residency for width.
        let a = t.epoch(SimTime::ZERO + e, &snapshot(1.0, m, SimDuration::ZERO, 8)).unwrap();
        assert_eq!(a.dispatch_streams, 8);
        assert_eq!(a.requests_per_residency, 4);
        // Idle disks, many live streams, empty pool -> N doubles back.
        let a = t.epoch(SimTime::ZERO + e * 2, &snapshot(1.0, 0, SimDuration::ZERO, 16)).unwrap();
        assert_eq!(a.dispatch_streams, 8);
        assert_eq!(a.requests_per_residency, 8);
        // Fully busy disks (one whole epoch of busy each) -> steady state.
        assert_eq!(t.epoch(SimTime::ZERO + e * 3, &snapshot(1.0, 0, e, 8)), None);
        assert_eq!(t.actions_emitted(), 2);
    }

    #[test]
    fn widen_is_bounded_by_the_live_population() {
        // Same pileup on 4 disks with only 7 live streams: doubling D to 8
        // would out-dispatch the population, so nothing fires.
        let m = ServerConfig::default_tuning().memory_bytes;
        let mut t = tuner(AdaptiveConfig::standard());
        let at = SimTime::ZERO + t.epoch_len();
        let obs = HealthSnapshot {
            queue_depths: vec![0; 4],
            busy_time: vec![SimDuration::ZERO; 4],
            straggler_factors: vec![1.0; 4],
            live_streams: 7,
            staged_bytes: m,
        };
        assert_eq!(t.epoch(at, &obs), None);
    }
}
