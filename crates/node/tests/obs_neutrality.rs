//! Observability neutrality: enabling spans and metric sampling must not
//! change a single simulation output. The recorder follows the fault
//! layer's discipline — opt-in, no extra RNG draws, no event-arithmetic
//! perturbation — and these tests pin that promise bit-for-bit across the
//! direct and scheduler paths, healthy and faulted, and across sweep
//! worker counts. The accuracy end is covered too: sampled per-disk
//! utilization must agree with the run's aggregate counters, and per-phase
//! latency means must sum to the end-to-end mean.

use seqio_node::span::PhaseBreakdown;
use seqio_node::{
    Experiment, FaultPlan, Frontend, NodeShape, ObsConfig, ProfConfig, RunResult, SpanPhase, Sweep,
};
use seqio_simcore::units::{KIB, MIB};
use seqio_simcore::SimDuration;

/// Every field of `RunResult` except the recorder outputs themselves,
/// rendered so that any drift — histogram buckets, float bit patterns,
/// event counts, trace rows — fails the comparison.
fn fingerprint(r: &RunResult) -> String {
    format!(
        "{:?}|{:?}|{}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{}|{}|{}|{}|{:?}",
        r.per_stream_mbs,
        r.window,
        r.bytes_delivered,
        r.response,
        r.server_metrics,
        r.disk_seeks,
        r.disk_busy,
        r.disk_ops,
        r.disk_read_errors,
        r.disk_retries,
        r.disk_timeouts,
        r.ctrl_wasted_bytes,
        r.ctrl_bytes_from_disks,
        r.requests_completed,
        r.events_simulated,
        r.trace,
    )
}

fn base(frontend: Option<Frontend>, faults: Option<FaultPlan>) -> Experiment {
    let mut b = Experiment::builder()
        .streams_per_disk(20)
        .request_size(64 * KIB)
        .record_trace(true)
        .warmup(SimDuration::from_millis(500))
        .duration(SimDuration::from_secs(2))
        .seed(77);
    if let Some(fe) = frontend {
        b = b.frontend(fe);
    }
    let mut e = b.build();
    e.faults = faults;
    e
}

fn plan() -> FaultPlan {
    FaultPlan::new()
        .straggler(0, 3.0, SimDuration::from_millis(600), Some(SimDuration::from_secs(1)))
        .read_errors(0, 0.03)
}

#[test]
fn enabling_observability_never_changes_outputs() {
    let cases: Vec<(&str, Option<Frontend>, Option<FaultPlan>)> = vec![
        ("direct healthy", None, None),
        ("scheduler healthy", Some(Frontend::stream_scheduler_with_readahead(MIB)), None),
        ("direct faulted", None, Some(plan())),
        ("scheduler faulted", Some(Frontend::stream_scheduler_with_readahead(MIB)), Some(plan())),
    ];
    for (label, fe, faults) in cases {
        let off = base(fe.clone(), faults.clone()).run();
        let on = base(fe.clone(), faults.clone())
            .observe(ObsConfig::all().sample_every(SimDuration::from_millis(5)))
            .run();
        assert_eq!(fingerprint(&off), fingerprint(&on), "{label}: recorder perturbed the run");
        assert!(off.spans.is_none() && off.metrics.is_none(), "{label}: obs off yet recorded");
        let spans = on.spans.as_ref().expect("spans enabled");
        assert_eq!(spans.len() as u64, on.requests_completed, "{label}: one span per completion");
        assert!(!on.metrics.as_ref().expect("metrics enabled").is_empty(), "{label}: no samples");
    }
}

/// Kernel self-profiling obeys the same neutrality bar as the recorder:
/// simulation outputs are bit-identical with it on, the profiled event
/// count equals `events_simulated` plus the sampler ticks it excludes,
/// and the queue stats reflect a real run.
#[test]
fn enabling_profiling_never_changes_outputs() {
    for (label, fe) in
        [("direct", None), ("scheduler", Some(Frontend::stream_scheduler_with_readahead(MIB)))]
    {
        let off = base(fe.clone(), Some(plan())).run();
        let on = base(fe.clone(), Some(plan())).profile(ProfConfig::new()).run();
        assert_eq!(fingerprint(&off), fingerprint(&on), "{label}: profiler perturbed the run");
        assert!(off.prof.is_none(), "{label}: profiling off yet recorded");
        let prof = on.prof.as_ref().expect("profiling enabled");
        // Every scheduled event is dispatched exactly once or still
        // pending at the stop time; the dispatched count can never exceed
        // the scheduled count.
        assert!(prof.total_events() <= prof.queue.pushes, "{label}: dispatched > scheduled");
        assert!(prof.total_events() > 0, "{label}: nothing dispatched");
        assert_eq!(prof.queue.pushes, on.events_simulated, "{label}: queue pushes drifted");
        assert!(prof.classes.iter().any(|c| c.name == "deliver" && c.count > 0), "{label}");
        assert!(prof.total_wall_nanos() > 0, "{label}: wall timing was on");
        // Counts-only profiling reads no host clock but books the same
        // deterministic counts.
        let counts = base(fe.clone(), Some(plan())).profile(ProfConfig::counts_only()).run();
        let cp = counts.prof.as_ref().unwrap();
        assert_eq!(cp.total_wall_nanos(), 0, "{label}: counts_only read the clock");
        assert_eq!(
            cp.classes.iter().map(|c| (c.name, c.count)).collect::<Vec<_>>(),
            prof.classes.iter().map(|c| (c.name, c.count)).collect::<Vec<_>>(),
            "{label}: class counts are deterministic"
        );
    }
}

/// Spans re-derive exactly what the flat trace and response histogram
/// already measure: `delivered - enqueued` per request matches the
/// recorded latency distribution's count and exact sum.
#[test]
fn span_totals_match_the_response_histogram() {
    let r = base(Some(Frontend::stream_scheduler_with_readahead(MIB)), None)
        .observe(ObsConfig::new().with_spans())
        .run();
    let spans = r.spans.as_ref().unwrap();
    assert_eq!(spans.len() as u64, r.response.count());
    let span_sum: u64 = spans.iter().map(|s| s.total().as_nanos()).sum();
    let hist_mean = r.response.mean().as_nanos();
    let span_mean = span_sum / spans.len() as u64;
    assert_eq!(span_mean, hist_mean, "span totals drifted from the response histogram");
    for s in spans {
        let phase_sum: SimDuration = s.phase_durations().iter().copied().sum();
        assert_eq!(phase_sum, s.total(), "per-span phase durations must sum exactly");
    }
}

#[test]
fn per_phase_means_sum_to_end_to_end_mean() {
    let r = base(Some(Frontend::stream_scheduler_with_readahead(MIB)), None)
        .observe(ObsConfig::new().with_spans())
        .run();
    let spans = r.spans.as_ref().unwrap();
    let breakdown = PhaseBreakdown::from_spans(spans);
    let total_ms = breakdown.total.mean().as_millis_f64();
    let sum_ms = breakdown.sum_of_phase_means_ms();
    // Each phase mean truncates to whole nanoseconds, so the sum can fall
    // short of the end-to-end mean by at most one nanosecond per phase.
    let slack_ms = SpanPhase::COUNT as f64 * 1e-6;
    assert!(
        (total_ms - sum_ms).abs() <= slack_ms,
        "phase means {sum_ms} ms do not sum to end-to-end mean {total_ms} ms"
    );
}

/// The sampled per-disk busy fraction telescopes: the mean over equal
/// sampling intervals must agree with the aggregate busy time the run
/// reports, on both sides of the scheduler-vs-direct pair.
#[test]
fn sampled_utilization_matches_aggregate_busy_time() {
    for fe in [None, Some(Frontend::stream_scheduler_with_readahead(MIB))] {
        let mut e = base(fe, None);
        e.record_trace = false;
        let r = e
            .observe(ObsConfig::new().with_metrics().sample_every(SimDuration::from_millis(5)))
            .run();
        let series = r.metrics.as_ref().unwrap();
        let run_secs = (SimDuration::from_millis(500) + SimDuration::from_secs(2)).as_secs_f64();
        for (d, busy) in r.disk_busy.iter().enumerate() {
            let sampled = series.column_mean(&format!("disk{d}.busy_frac"));
            let aggregate = busy.as_secs_f64() / run_secs;
            assert!(
                (sampled - aggregate).abs() <= 0.05 * aggregate.max(0.01),
                "disk {d}: sampled utilization {sampled:.4} vs aggregate {aggregate:.4}"
            );
        }
    }
}

#[test]
fn recorder_outputs_are_identical_across_sweep_worker_counts() {
    let points = || {
        [1usize, 12]
            .iter()
            .map(|&s| {
                let mut e = Experiment::builder()
                    .streams_per_disk(s)
                    .request_size(64 * KIB)
                    .frontend(Frontend::stream_scheduler_with_readahead(MIB))
                    .warmup(SimDuration::from_millis(500))
                    .duration(SimDuration::from_secs(1))
                    .seed(5)
                    .build();
                e.obs = Some(ObsConfig::all().sample_every(SimDuration::from_millis(10)));
                e
            })
            .collect::<Vec<_>>()
    };
    let serial = Sweep::builder().points(points()).jobs(1).run();
    let pooled = Sweep::builder().points(points()).jobs(4).run();
    for (i, (a, b)) in serial.results().zip(pooled.results()).enumerate() {
        assert_eq!(fingerprint(a), fingerprint(b), "point {i} diverged");
        let (sa, sb) = (a.spans.as_ref().unwrap(), b.spans.as_ref().unwrap());
        assert_eq!(
            seqio_node::span::spans_to_csv(sa),
            seqio_node::span::spans_to_csv(sb),
            "point {i}: span CSV diverged across worker counts"
        );
        let (ma, mb) = (a.metrics.as_ref().unwrap(), b.metrics.as_ref().unwrap());
        assert_eq!(ma.to_csv(), mb.to_csv(), "point {i}: metric CSV diverged across workers");
    }
}

/// FNV-1a over the rendered CSV bytes — dependency-free and stable.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The Figure-1 golden subset from `sweep_determinism.rs`, re-run with the
/// full recorder switched ON: the pinned hash must not move. This is the
/// strongest neutrality statement — any extra RNG draw, reordered event or
/// float-accumulation change caused by observability shows up here.
#[test]
fn fig01_golden_hash_unchanged_with_observability_enabled() {
    const GOLDEN: u64 = 4786420990628480947;

    let per_disk = [1usize, 5];
    let requests = [64 * KIB, 256 * KIB];
    let mut points = Vec::new();
    for &streams in &per_disk {
        for &req in &requests {
            let mut e = Experiment::builder()
                .shape(NodeShape::sixty_disk())
                .streams_per_disk(streams)
                .request_size(req)
                .warmup(SimDuration::from_secs(1))
                .duration(SimDuration::from_secs(2))
                .seed(11)
                .build();
            e.obs = Some(ObsConfig::all().sample_every(SimDuration::from_millis(10)));
            e.prof = Some(ProfConfig::new());
            points.push(e);
        }
    }
    let report = Sweep::builder().points(points).jobs(4).run();
    let results: Vec<&RunResult> = report.results().collect();

    let mut csv = String::from("Request size,60 Streams,300 Streams\n");
    for (ri, x) in ["64K", "256K"].iter().enumerate() {
        csv.push_str(x);
        for si in 0..per_disk.len() {
            let y = results[si * requests.len() + ri].total_throughput_mbs();
            csv.push_str(&format!(",{y:.4}"));
        }
        csv.push('\n');
    }

    assert_eq!(
        fnv1a(csv.as_bytes()),
        GOLDEN,
        "fig01 subset CSV drifted when observability was enabled:\n{csv}"
    );
}
