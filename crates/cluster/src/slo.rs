//! End-to-end session SLO summaries.
//!
//! The open-loop client front-end measures each session from its arrival
//! instant to the moment its last response finishes crossing the shared
//! client-facing link. [`SessionSlo`] condenses those end-to-end latencies
//! into the percentiles an operator writes SLOs against. Percentiles are
//! **exact** (computed over the full sorted latency vector by the
//! nearest-rank rule), not bucketed: the power-of-two
//! [`LatencyHistogram`](seqio_simcore::LatencyHistogram) is fine for mean
//! response times but far too coarse to resolve a p99.9.

use seqio_simcore::SimDuration;

/// Exact end-to-end latency percentiles over one run's completed sessions.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSlo {
    /// Sessions the generator admitted (arrived before the horizon).
    pub sessions: u64,
    /// Sessions whose final byte reached the client before the horizon —
    /// only these contribute latencies.
    pub completed: u64,
    /// Median end-to-end session latency in milliseconds.
    pub p50_ms: f64,
    /// 95th-percentile latency in milliseconds.
    pub p95_ms: f64,
    /// 99th-percentile latency in milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile latency in milliseconds.
    pub p999_ms: f64,
    /// Mean latency in milliseconds.
    pub mean_ms: f64,
    /// Worst completed-session latency in milliseconds.
    pub max_ms: f64,
}

impl SessionSlo {
    /// Summarizes `latencies` (one entry per *completed* session, any
    /// order) for a run that admitted `sessions` sessions in total.
    /// Returns `None` when no session completed — there is no latency
    /// distribution to summarize.
    pub fn from_latencies(sessions: u64, mut latencies: Vec<SimDuration>) -> Option<SessionSlo> {
        if latencies.is_empty() {
            return None;
        }
        latencies.sort_unstable();
        let completed = latencies.len() as u64;
        let sum_ns: u128 = latencies.iter().map(|d| d.as_nanos() as u128).sum();
        let mean_ms = (sum_ns as f64 / completed as f64) / 1e6;
        Some(SessionSlo {
            sessions,
            completed,
            p50_ms: percentile_ms(&latencies, 0.50),
            p95_ms: percentile_ms(&latencies, 0.95),
            p99_ms: percentile_ms(&latencies, 0.99),
            p999_ms: percentile_ms(&latencies, 0.999),
            mean_ms,
            max_ms: latencies.last().expect("non-empty").as_millis_f64(),
        })
    }

    /// Fraction of admitted sessions that completed, in `[0, 1]`.
    pub fn completion_ratio(&self) -> f64 {
        if self.sessions == 0 {
            0.0
        } else {
            self.completed as f64 / self.sessions as f64
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted latency vector, in
/// milliseconds: the smallest element such that at least `q` of the
/// distribution is at or below it.
fn percentile_ms(sorted: &[SimDuration], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1].as_millis_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn empty_latencies_give_no_summary() {
        assert_eq!(SessionSlo::from_latencies(10, vec![]), None);
    }

    #[test]
    fn percentiles_are_exact_over_a_known_distribution() {
        // 1..=1000 ms: nearest-rank percentiles are exactly q * 1000.
        let lats: Vec<SimDuration> = (1..=1000).map(ms).collect();
        let slo = SessionSlo::from_latencies(1000, lats).unwrap();
        assert_eq!(slo.sessions, 1000);
        assert_eq!(slo.completed, 1000);
        assert_eq!(slo.p50_ms, 500.0);
        assert_eq!(slo.p95_ms, 950.0);
        assert_eq!(slo.p99_ms, 990.0);
        assert_eq!(slo.p999_ms, 999.0);
        assert_eq!(slo.max_ms, 1000.0);
        assert!((slo.mean_ms - 500.5).abs() < 1e-9);
        assert_eq!(slo.completion_ratio(), 1.0);
    }

    #[test]
    fn input_order_does_not_matter() {
        let a = SessionSlo::from_latencies(4, vec![ms(4), ms(1), ms(3), ms(2)]).unwrap();
        let b = SessionSlo::from_latencies(4, vec![ms(1), ms(2), ms(3), ms(4)]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn single_sample_pins_every_percentile() {
        let slo = SessionSlo::from_latencies(3, vec![ms(7)]).unwrap();
        assert_eq!(slo.completed, 1);
        assert_eq!(slo.p50_ms, 7.0);
        assert_eq!(slo.p999_ms, 7.0);
        assert_eq!(slo.max_ms, 7.0);
        assert!((slo.completion_ratio() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tail_percentiles_need_enough_samples_to_separate() {
        // With 10,000 samples 0..10s, p99.9 lands in the top decile
        // strictly above p99 — the resolution the bucketed histogram
        // cannot provide.
        let lats: Vec<SimDuration> = (1..=10_000).map(ms).collect();
        let slo = SessionSlo::from_latencies(10_000, lats).unwrap();
        assert_eq!(slo.p99_ms, 9_900.0);
        assert_eq!(slo.p999_ms, 9_990.0);
        assert!(slo.p999_ms > slo.p99_ms);
    }
}
