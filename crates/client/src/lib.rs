//! # seqio-client
//!
//! Open-loop client/network front-end for the `seqio` storage
//! simulation: user-scale session arrivals over a shared fair-share
//! link, with end-to-end SLO percentiles.
//!
//! The storage layers below model closed-loop clients — a fixed stream
//! population pinned from `t = 0`. Real media services see the opposite:
//! users *arrive* (Poisson, possibly bursty or diurnal), pick titles by
//! popularity (Zipf), watch for a bounded time, and receive their bytes
//! across one shared network link. This crate adds that tier:
//!
//! * [`ArrivalProcess`] / [`ZipfSampler`] — deterministic open-loop
//!   session generation by Lewis–Shedler thinning over a modulated rate
//!   ([`RateModulation`]), with Zipf title popularity;
//! * [`ClientExperiment`] — the driver: sessions are injected into live
//!   [`NodeSim`](seqio_node::NodeSim)s mid-run through the stream-handoff
//!   surface, each node advancing independently (bit-identical at any
//!   `SEQIO_JOBS`), with optional lifetime-bounded retirement;
//! * [`LinkConfig`] — a shared-bandwidth client-facing link, applied as a
//!   deterministic lagged overlay of
//!   [`FairShareLink`](seqio_simcore::FairShareLink) over the exact
//!   storage-completion instants; per-session end-to-end latencies
//!   condense into [`SessionSlo`](seqio_cluster::SessionSlo) percentiles
//!   on the merged [`ClusterResult`](seqio_cluster::ClusterResult).
//!
//! The identity configuration — closed loop + unconstrained link — is
//! bit-identical to [`ClusterExperiment::run`](seqio_cluster::ClusterExperiment::run)
//! on every pre-existing output, including span and metric recordings;
//! the client tier then only fills in the new `slo` field.
//!
//! # Examples
//!
//! A thousand-user open-loop run against two nodes behind a gigabit
//! link:
//!
//! ```
//! use seqio_client::{ArrivalConfig, ClientExperiment, LinkConfig};
//! use seqio_node::Experiment;
//! use seqio_simcore::SimDuration;
//!
//! let template = Experiment::builder()
//!     .warmup(SimDuration::ZERO)
//!     .duration(SimDuration::from_secs(10))
//!     .build();
//! let result = ClientExperiment::builder()
//!     .template(template)
//!     .nodes(2)
//!     .base_seed(7)
//!     .arrivals(ArrivalConfig { rate_per_sec: 100.0, ..ArrivalConfig::default() })
//!     .link(LinkConfig::gigabit())
//!     .run()
//!     .unwrap();
//! let slo = result.slo.expect("sessions completed");
//! assert!(slo.completed > 0);
//! assert!(slo.p999_ms >= slo.p50_ms);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arrivals;
mod run;
mod session;

pub use arrivals::{ArrivalProcess, RateModulation, ZipfSampler};
pub use run::{
    ClientExperiment, ClientExperimentBuilder, DriveMode, LinkConfig, SESSION_SEED_INDEX,
};
pub use session::{generate_sessions, ArrivalConfig, SessionSpec};
