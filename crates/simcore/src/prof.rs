//! Opt-in kernel self-profiling: per-event-class count/duration
//! accounting for the simulation engine's dispatch loop, plus calendar
//! queue shape statistics.
//!
//! Like faults and observability, profiling is **strictly opt-in and
//! zero-perturbation**: with no [`ProfConfig`] installed the engine's hot
//! loop takes the exact branch-free path it always took, and with one
//! installed the profiler only *reads* the host clock around dispatch —
//! simulation outputs stay bit-identical either way. Event-class counts
//! are deterministic; wall-clock nanoseconds are host measurements and
//! vary run to run (they are reported, never fed back).

use std::fmt::Write as _;

/// What the kernel profiler should record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfConfig {
    /// Record wall-clock dispatch time per event class (host
    /// nanoseconds; nondeterministic across runs). Counts are always
    /// recorded when profiling is installed.
    pub wall_time: bool,
}

impl Default for ProfConfig {
    fn default() -> Self {
        Self::new()
    }
}

impl ProfConfig {
    /// Counts and wall-clock durations.
    pub fn new() -> Self {
        ProfConfig { wall_time: true }
    }

    /// Deterministic counts only — no host-clock reads.
    pub fn counts_only() -> Self {
        ProfConfig { wall_time: false }
    }
}

/// Dispatch statistics for one event class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventClassStats {
    /// Stable class name (e.g. `"deliver"`).
    pub name: &'static str,
    /// Events of this class dispatched (deterministic).
    pub count: u64,
    /// Total wall-clock nanoseconds spent in this class's handlers
    /// (zero when [`ProfConfig::wall_time`] was off).
    pub wall_nanos: u64,
}

/// Shape statistics of the calendar event queue at the end of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueStats {
    /// Events ever scheduled (the engine's `events_simulated` numerator
    /// before sampler-tick subtraction).
    pub pushes: u64,
    /// Final bucket-ring size.
    pub buckets: usize,
    /// Final bucket width in simulated nanoseconds.
    pub width_ns: u64,
    /// Ring rebuilds (grow, shrink, or re-width) over the whole run.
    pub resizes: u64,
}

/// Accumulator the engine drives while profiling is installed; condenses
/// into a [`KernelProfile`] at the end of the run.
#[derive(Debug, Clone)]
pub struct ProfTally {
    cfg: ProfConfig,
    classes: Vec<EventClassStats>,
}

impl ProfTally {
    /// Creates a tally over the given event classes (indexed by position).
    pub fn new(cfg: ProfConfig, class_names: &[&'static str]) -> Self {
        ProfTally {
            cfg,
            classes: class_names
                .iter()
                .map(|&name| EventClassStats { name, count: 0, wall_nanos: 0 })
                .collect(),
        }
    }

    /// `true` when the engine should read the host clock around dispatch.
    pub fn wall_time(&self) -> bool {
        self.cfg.wall_time
    }

    /// Books one dispatched event of class `class`.
    pub fn record(&mut self, class: usize, wall_nanos: u64) {
        let c = &mut self.classes[class];
        c.count += 1;
        c.wall_nanos += wall_nanos;
    }

    /// Condenses the tally plus final queue shape into the exported
    /// profile.
    pub fn finish(self, queue: QueueStats) -> KernelProfile {
        KernelProfile { classes: self.classes, queue }
    }
}

/// The exported kernel self-profile: per-event-class dispatch accounting
/// plus final calendar-queue shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelProfile {
    /// Per-class stats, in engine class order (classes never dispatched
    /// keep zero counts).
    pub classes: Vec<EventClassStats>,
    /// Calendar queue shape at the end of the run.
    pub queue: QueueStats,
}

impl KernelProfile {
    /// Total events dispatched across all classes.
    pub fn total_events(&self) -> u64 {
        self.classes.iter().map(|c| c.count).sum()
    }

    /// Total wall-clock nanoseconds across all classes.
    pub fn total_wall_nanos(&self) -> u64 {
        self.classes.iter().map(|c| c.wall_nanos).sum()
    }

    /// The class with the largest wall-clock share (falling back to the
    /// largest count when wall timing was off); `None` when nothing was
    /// dispatched.
    pub fn dominant(&self) -> Option<&EventClassStats> {
        if self.total_events() == 0 {
            return None;
        }
        self.classes.iter().max_by_key(|c| (c.wall_nanos, c.count))
    }

    /// Renders the profile as an aligned text table.
    pub fn to_table(&self) -> String {
        let total_ns = self.total_wall_nanos().max(1);
        let mut out = String::new();
        let _ = writeln!(out, "{:<16} {:>12} {:>12} {:>7}", "event class", "count", "wall ms", "%");
        for c in self.classes.iter().filter(|c| c.count > 0) {
            let _ = writeln!(
                out,
                "{:<16} {:>12} {:>12.3} {:>6.1}%",
                c.name,
                c.count,
                c.wall_nanos as f64 / 1e6,
                100.0 * c.wall_nanos as f64 / total_ns as f64
            );
        }
        let _ = writeln!(
            out,
            "queue: {} pushes, {} buckets x {} ns, {} resizes",
            self.queue.pushes, self.queue.buckets, self.queue.width_ns, self.queue.resizes
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_accumulates_per_class() {
        let mut t = ProfTally::new(ProfConfig::new(), &["a", "b"]);
        assert!(t.wall_time());
        t.record(0, 10);
        t.record(0, 5);
        t.record(1, 100);
        let p = t.finish(QueueStats { pushes: 3, buckets: 16, width_ns: 1024, resizes: 0 });
        assert_eq!(p.total_events(), 3);
        assert_eq!(p.total_wall_nanos(), 115);
        assert_eq!(p.classes[0].count, 2);
        assert_eq!(p.dominant().unwrap().name, "b");
        let table = p.to_table();
        assert!(table.contains("a") && table.contains("16 buckets"), "{table}");
    }

    #[test]
    fn counts_only_skips_wall_time() {
        let mut t = ProfTally::new(ProfConfig::counts_only(), &["x"]);
        assert!(!t.wall_time());
        t.record(0, 0);
        let p = t.finish(QueueStats { pushes: 1, buckets: 16, width_ns: 1, resizes: 2 });
        assert_eq!(p.total_events(), 1);
        assert_eq!(p.total_wall_nanos(), 0);
        assert_eq!(p.dominant().unwrap().name, "x");
        assert_eq!(p.queue.resizes, 2);
    }

    #[test]
    fn empty_profile_has_no_dominant_class() {
        let t = ProfTally::new(ProfConfig::default(), &["a"]);
        let p = t.finish(QueueStats { pushes: 0, buckets: 16, width_ns: 1024, resizes: 0 });
        assert_eq!(p.dominant(), None);
        assert_eq!(p.total_events(), 0);
    }
}
