//! # seqio-workload
//!
//! Workload generation for the `seqio` storage-node simulation: stream
//! specifications ([`StreamSpec`], [`Pattern`]), closed-loop client
//! emulation with bounded outstanding requests ([`ClientSet`]), placement
//! helpers ([`uniform_offsets`], [`interval_offsets`]) and an `xdd`-style
//! micro-benchmark builder ([`XddRun`]).
//!
//! # Examples
//!
//! ```
//! use seqio_simcore::SimRng;
//! use seqio_workload::{ClientSet, StreamSpec};
//!
//! // Ten sequential 64 KiB streams, one outstanding request each.
//! let specs: Vec<_> =
//!     (0..10).map(|i| StreamSpec::sequential(0, i * 1_000_000, 128, 100)).collect();
//! let mut rng = SimRng::seed_from(1);
//! let mut clients = ClientSet::new(specs, 1, &mut rng);
//! let burst = clients.initial_requests();
//! assert_eq!(burst.len(), 10);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod client;
mod placement;
mod stream;
mod xdd;

pub use client::{ClientRequest, ClientSet, StreamIdx};
pub use placement::{interval_offsets, uniform_offsets};
pub use stream::{Pattern, StreamSpec, StreamState};
pub use xdd::XddRun;
