//! Scheduler configuration: the paper's four tunables `D`, `R`, `N`, `M`
//! plus classifier and garbage-collection knobs.

use seqio_simcore::units::{format_bytes, GIB, KIB, MIB};
use seqio_simcore::{SeqioError, SimDuration};

/// How the scheduler picks the next stream to admit into the dispatch set
/// (paper §4.2: "involved policies are possible ... we currently use a
/// simple round-robin policy").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchPolicy {
    /// First-come first-served over waiting streams (the paper's choice).
    #[default]
    RoundRobin,
    /// Prefer the waiting stream whose next disk access is closest to the
    /// last admitted offset on that disk — the paper's sketched alternative
    /// that tries to keep nearby streams together to shorten seeks.
    OffsetOrdered,
    /// An ODSA-style optimized ordering (Bhoi et al., PAPERS.md): a
    /// one-directional elevator pass over the waiting streams. Admission
    /// prefers the eligible stream with the *lowest frontier at or beyond*
    /// the last admitted offset on its disk, wrapping to the lowest
    /// frontier overall once no stream lies ahead. Unlike the greedy
    /// nearest-offset pick of [`OffsetOrdered`](Self::OffsetOrdered), the
    /// scan never doubles back mid-pass, bounding total head travel per
    /// sweep.
    OdsaScan,
}

/// Configuration of the host-level stream scheduler.
///
/// The four headline parameters follow the paper's notation:
///
/// * `D` — [`dispatch_streams`](Self::dispatch_streams): streams allowed to
///   issue disk requests simultaneously;
/// * `R` — [`read_ahead_bytes`](Self::read_ahead_bytes): size of each disk
///   request issued on behalf of a stream (independent of client request
///   size);
/// * `N` — [`requests_per_residency`](Self::requests_per_residency): disk
///   requests a stream issues before round-robin replacement;
/// * `M` — [`memory_bytes`](Self::memory_bytes): host memory available for
///   staging, with the invariant `M >= D * R * N`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// `D`: maximum number of streams in the dispatch set.
    pub dispatch_streams: usize,
    /// `R`: read-ahead (disk request) size in bytes.
    pub read_ahead_bytes: u64,
    /// `N`: requests a stream issues per dispatch-set residency.
    pub requests_per_residency: u64,
    /// `M`: host memory devoted to I/O buffering, in bytes.
    pub memory_bytes: u64,
    /// How far ahead of the client's consumption point a stream may stage
    /// data, in bytes (`0` = auto: one residency, `R * N`). Without this
    /// bound a stream whose client went away would keep cycling through the
    /// dispatch set prefetching data nobody reads.
    pub prefetch_lead_bytes: u64,
    /// Classifier: how far around a request's block the detection bitmap
    /// extends, in blocks (the paper's `offset`; "a few tens" of requests).
    pub detect_offset_blocks: u64,
    /// Classifier: set-bit count within a region that flags a sequential
    /// stream.
    pub detect_threshold_blocks: u64,
    /// How far ahead of a stream's expected next block an arriving request
    /// may be and still match the stream (tolerates small skips).
    pub stream_match_slack_blocks: u64,
    /// Buffers idle longer than this are reclaimed by the garbage collector.
    pub buffer_timeout: SimDuration,
    /// Period of the garbage-collection sweep.
    pub gc_period: SimDuration,
    /// Paper §4.2: the completion path calls the classifier/issue path
    /// before completing client requests, keeping disks busy. Disabling
    /// reverses the order (ablation).
    pub issue_path_priority: bool,
    /// Dispatch-set admission order.
    pub dispatch_policy: DispatchPolicy,
    /// Graceful degradation (fault injection): a stream whose disk is
    /// reported degraded by at least this service-time factor is rotated
    /// out of the dispatch set after each fill instead of holding its slot
    /// for a full residency. Must be `> 1.0`; only takes effect when the
    /// embedding layer reports disk health via
    /// [`StorageServer::set_disk_degraded`](crate::StorageServer::set_disk_degraded).
    pub degraded_rotate_threshold: f64,
}

impl ServerConfig {
    /// A reasonable starting point: `D`=4, `R`=1 MiB, `N`=8, `M`=64 MiB.
    pub fn default_tuning() -> Self {
        ServerConfig {
            dispatch_streams: 4,
            read_ahead_bytes: MIB,
            requests_per_residency: 8,
            memory_bytes: 64 * MIB,
            prefetch_lead_bytes: 0,
            detect_offset_blocks: 4096,
            detect_threshold_blocks: 192,
            stream_match_slack_blocks: 128,
            buffer_timeout: SimDuration::from_secs(10),
            gc_period: SimDuration::from_secs(1),
            issue_path_priority: true,
            dispatch_policy: DispatchPolicy::RoundRobin,
            degraded_rotate_threshold: 2.0,
        }
    }

    /// Builds the paper's "adequate memory" configuration for Figures 10/12:
    /// all `streams` staged *and* dispatched (`D = S`, `N = 1`,
    /// `M = D * R * N`).
    pub fn all_dispatched(streams: usize, read_ahead_bytes: u64) -> Self {
        ServerConfig {
            dispatch_streams: streams,
            read_ahead_bytes,
            requests_per_residency: 1,
            memory_bytes: streams as u64 * read_ahead_bytes,
            ..Self::default_tuning()
        }
    }

    /// Builds the memory-limited configuration of Figure 11: `D` is derived
    /// from available memory as `D = M / (R * N)`.
    ///
    /// # Panics
    ///
    /// Panics if the memory cannot hold even one buffer.
    pub fn memory_limited(memory_bytes: u64, read_ahead_bytes: u64, n: u64) -> Self {
        let d = (memory_bytes / (read_ahead_bytes * n)) as usize;
        assert!(d >= 1, "memory holds no buffers: M={memory_bytes}, R={read_ahead_bytes}, N={n}");
        ServerConfig {
            dispatch_streams: d,
            read_ahead_bytes,
            requests_per_residency: n,
            memory_bytes,
            ..Self::default_tuning()
        }
    }

    /// The paper's conclusion configuration (Figures 13/14): a small
    /// dispatch set (typically one stream per disk), long residencies.
    pub fn small_dispatch(disks: usize, read_ahead_bytes: u64, n: u64) -> Self {
        ServerConfig {
            dispatch_streams: disks,
            read_ahead_bytes,
            requests_per_residency: n,
            memory_bytes: disks as u64 * read_ahead_bytes * n,
            ..Self::default_tuning()
        }
    }

    /// Static auto-tuning: derives `D`, `R`, `N` from the storage node's
    /// memory and disk count, the paper's "adjust (statically) to different
    /// storage node configurations". One dispatched stream per disk,
    /// 512 KiB read-ahead, and the longest residency that keeps
    /// `D * R * N` within half the node's memory.
    ///
    /// # Panics
    ///
    /// Panics if `disks == 0` or the memory cannot hold one buffer per disk.
    pub fn auto_tune(node_memory_bytes: u64, disks: usize) -> Self {
        assert!(disks > 0, "auto_tune needs at least one disk");
        let r = 512 * KIB;
        let d = disks;
        let budget = node_memory_bytes / 2;
        let n = (budget / (d as u64 * r)).clamp(1, 128);
        assert!(
            d as u64 * r <= budget.max(d as u64 * r),
            "node memory too small for one buffer per disk"
        );
        ServerConfig {
            dispatch_streams: d,
            read_ahead_bytes: r,
            requests_per_residency: n,
            memory_bytes: d as u64 * r * n,
            ..Self::default_tuning()
        }
    }

    /// The staging-memory lower bound `D * R * N`.
    pub fn working_set_bytes(&self) -> u64 {
        self.dispatch_streams as u64 * self.read_ahead_bytes * self.requests_per_residency
    }

    /// The per-stream staging lead actually in effect (resolves the `0 =
    /// auto` setting of [`prefetch_lead_bytes`](Self::prefetch_lead_bytes)).
    pub fn effective_lead_bytes(&self) -> u64 {
        if self.prefetch_lead_bytes > 0 {
            self.prefetch_lead_bytes
        } else {
            self.read_ahead_bytes * self.requests_per_residency
        }
    }

    /// Read-ahead size in 512-byte blocks.
    pub fn read_ahead_blocks(&self) -> u64 {
        self.read_ahead_bytes.div_ceil(512)
    }

    /// Validates the configuration, including the paper's memory invariant
    /// `M >= D * R * N`.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as a
    /// [`SeqioError::Server`].
    pub fn validate(&self) -> Result<(), SeqioError> {
        let fail = |reason: String| Err(SeqioError::Server(reason));
        if self.dispatch_streams == 0 {
            return fail("dispatch set must hold at least one stream (D >= 1)".into());
        }
        if self.read_ahead_bytes == 0 {
            return fail("read-ahead must be positive (R > 0)".into());
        }
        if self.requests_per_residency == 0 {
            return fail("residency must allow at least one request (N >= 1)".into());
        }
        if !self.degraded_rotate_threshold.is_finite() || self.degraded_rotate_threshold <= 1.0 {
            return fail("degraded-rotate threshold must be a finite factor > 1.0".into());
        }
        if self.memory_bytes < self.working_set_bytes() {
            return fail(format!(
                "memory invariant violated: M = {} but D*R*N = {}",
                format_bytes(self.memory_bytes),
                format_bytes(self.working_set_bytes())
            ));
        }
        if self.memory_bytes > 64 * GIB {
            return fail("memory above 64 GiB is surely a misconfiguration".into());
        }
        if self.detect_offset_blocks == 0 || self.detect_threshold_blocks == 0 {
            return fail("classifier window and threshold must be positive".into());
        }
        if self.detect_threshold_blocks > 2 * self.detect_offset_blocks {
            return fail("detection threshold exceeds the bitmap window".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tuning_valid() {
        assert!(ServerConfig::default_tuning().validate().is_ok());
    }

    #[test]
    fn memory_invariant_enforced() {
        let mut c = ServerConfig::default_tuning();
        c.memory_bytes = c.working_set_bytes() - 1;
        let err = c.validate().unwrap_err();
        assert!(matches!(err, SeqioError::Server(_)), "{err}");
        assert!(err.to_string().contains("memory invariant"), "{err}");
    }

    #[test]
    fn all_dispatched_matches_paper_setup() {
        // Fig. 10: 100 streams, R = 8 MiB => M = 800 MiB.
        let c = ServerConfig::all_dispatched(100, 8 * MIB);
        assert!(c.validate().is_ok());
        assert_eq!(c.dispatch_streams, 100);
        assert_eq!(c.requests_per_residency, 1);
        assert_eq!(c.memory_bytes, 800 * MIB);
    }

    #[test]
    fn memory_limited_derives_dispatch() {
        // Fig. 11: M = 16 MiB, R = 8 MiB => only 2 streams dispatch.
        let c = ServerConfig::memory_limited(16 * MIB, 8 * MIB, 1);
        assert_eq!(c.dispatch_streams, 2);
        assert!(c.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "no buffers")]
    fn memory_limited_too_small_panics() {
        let _ = ServerConfig::memory_limited(MIB, 8 * MIB, 1);
    }

    #[test]
    fn small_dispatch_matches_fig13() {
        let c = ServerConfig::small_dispatch(8, 512 * KIB, 128);
        assert!(c.validate().is_ok());
        assert_eq!(c.dispatch_streams, 8);
        assert_eq!(c.memory_bytes, 512 * MIB);
    }

    #[test]
    fn auto_tune_scales_with_memory() {
        let small = ServerConfig::auto_tune(64 * MIB, 1);
        let large = ServerConfig::auto_tune(GIB, 8);
        assert!(small.validate().is_ok());
        assert!(large.validate().is_ok());
        assert!(small.requests_per_residency < large.requests_per_residency * 8);
        assert_eq!(large.dispatch_streams, 8);
        assert!(large.memory_bytes <= GIB / 2);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        let mut c = ServerConfig::default_tuning();
        c.dispatch_streams = 0;
        assert!(c.validate().is_err());
        let mut c = ServerConfig::default_tuning();
        c.read_ahead_bytes = 0;
        assert!(c.validate().is_err());
        let mut c = ServerConfig::default_tuning();
        c.requests_per_residency = 0;
        assert!(c.validate().is_err());
        let mut c = ServerConfig::default_tuning();
        c.detect_threshold_blocks = c.detect_offset_blocks * 3;
        assert!(c.validate().is_err());
    }
}
