//! SLO burn-rate monitoring over session completions.
//!
//! An SLO of the form "at most a fraction `target` of sessions may
//! exceed `threshold`" defines an error budget; the **burn rate** is how
//! fast a window of traffic consumes it: `(bad/total) / target`. A burn
//! of 1 spends the budget exactly on schedule, 5 spends it five times
//! too fast. Following the SRE multi-window discipline, an alert needs
//! *both* a fast window (reacts quickly, noisy alone) and a slow window
//! (confirms the problem is sustained) over the factor — pages at
//! [`BurnRateConfig::page_factor`], warnings at
//! [`BurnRateConfig::warn_factor`].
//!
//! [`monitor`] replays a run's completion record on a fixed tick grid —
//! the same sample-interval discipline the
//! [`MetricsHub`](seqio_simcore::MetricsHub) uses — and returns the
//! per-tick burn series plus deterministic [`AlertEvent`]s at every
//! state transition. Everything is a pure function of the completions:
//! replaying a run reproduces its alerts bit-for-bit.

use seqio_cluster::SessionSlo;
use seqio_simcore::{MetricsHub, SeqioError, SimDuration, SimTime};

use crate::correlate::SessionTrace;

/// An SLO over session latency plus the alerting windows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRateConfig {
    /// Latency threshold: a session above it violates the SLO.
    pub threshold: SimDuration,
    /// Allowed violation fraction (the error budget), in `(0, 1)`.
    pub target: f64,
    /// Fast confirmation window.
    pub fast_window: SimDuration,
    /// Slow confirmation window.
    pub slow_window: SimDuration,
    /// Both-window burn at or above this pages.
    pub page_factor: f64,
    /// Both-window burn at or above this warns.
    pub warn_factor: f64,
}

impl BurnRateConfig {
    /// An SLO with the standard window pair: 5 s fast / 60 s slow,
    /// page at 5x burn, warn at 1x.
    pub fn new(threshold: SimDuration, target: f64) -> Self {
        BurnRateConfig {
            threshold,
            target,
            fast_window: SimDuration::from_secs(5),
            slow_window: SimDuration::from_secs(60),
            page_factor: 5.0,
            warn_factor: 1.0,
        }
    }

    /// Derives an SLO from a measured baseline: threshold at the
    /// baseline's p99 with a 1% error budget, so a run matching the
    /// baseline burns at exactly 1x.
    pub fn from_slo(slo: &SessionSlo) -> Self {
        BurnRateConfig::new(SimDuration::from_millis_f64(slo.p99_ms), 0.01)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), SeqioError> {
        if !(self.target > 0.0 && self.target < 1.0) {
            return Err(SeqioError::Experiment(format!(
                "SLO target must be in (0, 1), got {}",
                self.target
            )));
        }
        if self.fast_window == SimDuration::ZERO || self.slow_window < self.fast_window {
            return Err(SeqioError::Experiment(
                "burn-rate windows must satisfy 0 < fast <= slow".into(),
            ));
        }
        if !(self.page_factor >= self.warn_factor && self.warn_factor > 0.0) {
            return Err(SeqioError::Experiment(
                "burn-rate factors must satisfy 0 < warn <= page".into(),
            ));
        }
        Ok(())
    }
}

/// Alerting state at one tick, ordered by severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AlertSeverity {
    /// Both windows burn at or above the warn factor.
    Warn,
    /// Both windows burn at or above the page factor.
    Page,
}

/// One deterministic alert transition.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertEvent {
    /// The tick at which the state changed.
    pub at: SimTime,
    /// The new state; `None` clears a previous alert.
    pub severity: Option<AlertSeverity>,
    /// Fast-window burn at the tick.
    pub fast_burn: f64,
    /// Slow-window burn at the tick.
    pub slow_burn: f64,
}

/// The full monitoring record of one run.
#[derive(Debug, Clone)]
pub struct BurnRateReport {
    /// The SLO and windows monitored against.
    pub config: BurnRateConfig,
    /// Per-tick series: `slo.fast_burn`, `slo.slow_burn`, `slo.alert`
    /// (0 = clear, 1 = warn, 2 = page), `slo.completed` and
    /// `slo.violations` (cumulative counts).
    pub series: seqio_simcore::MetricSeries,
    /// Every state transition, in tick order.
    pub alerts: Vec<AlertEvent>,
    /// Sessions observed.
    pub completed: u64,
    /// Sessions over the threshold.
    pub violations: u64,
    /// The worst fast-window burn seen at any tick.
    pub peak_fast_burn: f64,
}

impl BurnRateReport {
    /// The highest severity reached, if any alert fired.
    pub fn peak_severity(&self) -> Option<AlertSeverity> {
        self.alerts.iter().filter_map(|a| a.severity).max()
    }
}

/// Monitors correlated traces: completed sessions enter the record at
/// their completion instant with their end-to-end latency.
///
/// # Errors
///
/// Returns the first configuration error.
pub fn monitor(
    traces: &[SessionTrace],
    cfg: &BurnRateConfig,
    tick: SimDuration,
) -> Result<BurnRateReport, SeqioError> {
    let mut samples: Vec<(SimTime, SimDuration)> =
        traces.iter().filter_map(|t| t.completed().zip(t.latency())).collect();
    samples.sort_unstable();
    monitor_samples(&samples, cfg, tick)
}

/// [`monitor`] over raw `(completion instant, latency)` samples sorted
/// by instant.
///
/// # Errors
///
/// Returns the first configuration error; `tick` must be positive.
pub fn monitor_samples(
    samples: &[(SimTime, SimDuration)],
    cfg: &BurnRateConfig,
    tick: SimDuration,
) -> Result<BurnRateReport, SeqioError> {
    cfg.validate()?;
    if tick == SimDuration::ZERO {
        return Err(SeqioError::Experiment("burn-rate tick must be positive".into()));
    }
    debug_assert!(samples.windows(2).all(|w| w[0].0 <= w[1].0), "samples sorted by instant");

    let mut hub = MetricsHub::new(tick);
    let fast_id = hub.gauge("slo.fast_burn", "x");
    let slow_id = hub.gauge("slo.slow_burn", "x");
    let alert_id = hub.gauge("slo.alert", "level");
    let done_id = hub.gauge("slo.completed", "sessions");
    let bad_id = hub.gauge("slo.violations", "sessions");

    let end = samples.last().map(|(t, _)| *t).unwrap_or(SimTime::ZERO);
    let mut alerts = Vec::new();
    let mut state: Option<AlertSeverity> = None;
    let mut peak_fast = 0.0f64;
    // Cumulative prefix counts let each window query run in O(1) via two
    // cursors per window over the time-sorted samples.
    let mut fast_lo = 0usize;
    let mut slow_lo = 0usize;
    let mut hi = 0usize;
    let mut bad_prefix: Vec<u64> = Vec::with_capacity(samples.len() + 1);
    bad_prefix.push(0);
    for (_, l) in samples {
        bad_prefix.push(bad_prefix.last().unwrap() + u64::from(*l > cfg.threshold));
    }

    let mut now = SimTime::ZERO;
    loop {
        now += tick;
        while hi < samples.len() && samples[hi].0 <= now {
            hi += 1;
        }
        let fast_from =
            now.saturating_duration_since(SimTime::ZERO).saturating_sub(cfg.fast_window);
        let slow_from =
            now.saturating_duration_since(SimTime::ZERO).saturating_sub(cfg.slow_window);
        let fast_start = SimTime::ZERO + fast_from;
        let slow_start = SimTime::ZERO + slow_from;
        while fast_lo < hi && samples[fast_lo].0 <= fast_start {
            fast_lo += 1;
        }
        while slow_lo < hi && samples[slow_lo].0 <= slow_start {
            slow_lo += 1;
        }
        let burn = |lo: usize| {
            let total = (hi - lo) as f64;
            if total == 0.0 {
                0.0
            } else {
                ((bad_prefix[hi] - bad_prefix[lo]) as f64 / total) / cfg.target
            }
        };
        let (fast_burn, slow_burn) = (burn(fast_lo), burn(slow_lo));
        peak_fast = peak_fast.max(fast_burn);
        let both = fast_burn.min(slow_burn);
        let next = if both >= cfg.page_factor {
            Some(AlertSeverity::Page)
        } else if both >= cfg.warn_factor {
            Some(AlertSeverity::Warn)
        } else {
            None
        };
        if next != state {
            alerts.push(AlertEvent { at: now, severity: next, fast_burn, slow_burn });
            state = next;
        }
        hub.set(fast_id, fast_burn);
        hub.set(slow_id, slow_burn);
        hub.set(
            alert_id,
            match state {
                None => 0.0,
                Some(AlertSeverity::Warn) => 1.0,
                Some(AlertSeverity::Page) => 2.0,
            },
        );
        hub.set(done_id, hi as f64);
        hub.set(bad_id, bad_prefix[hi] as f64);
        hub.sample(now);
        if now >= end {
            break;
        }
    }

    Ok(BurnRateReport {
        config: *cfg,
        series: hub.into_series(),
        alerts,
        completed: samples.len() as u64,
        violations: *bad_prefix.last().unwrap(),
        peak_fast_burn: peak_fast,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn at(v: u64) -> SimTime {
        SimTime::ZERO + ms(v)
    }

    /// `per_sec` completions each second for `secs` seconds, a fraction
    /// `bad` of them over the threshold.
    fn load(start_s: u64, secs: u64, per_sec: u64, bad_every: u64) -> Vec<(SimTime, SimDuration)> {
        let mut out = Vec::new();
        for s in 0..secs {
            for k in 0..per_sec {
                let t = at((start_s + s) * 1000 + k * 1000 / per_sec);
                let l = if bad_every > 0 && k % bad_every == 0 { ms(500) } else { ms(10) };
                out.push((t, l));
            }
        }
        out
    }

    fn cfg() -> BurnRateConfig {
        BurnRateConfig {
            threshold: ms(100),
            target: 0.01,
            fast_window: SimDuration::from_secs(5),
            slow_window: SimDuration::from_secs(30),
            page_factor: 5.0,
            warn_factor: 1.0,
        }
    }

    #[test]
    fn healthy_traffic_never_alerts() {
        let r = monitor_samples(&load(0, 60, 50, 0), &cfg(), ms(500)).unwrap();
        assert_eq!(r.violations, 0);
        assert!(r.alerts.is_empty());
        assert_eq!(r.peak_severity(), None);
        assert_eq!(r.peak_fast_burn, 0.0);
        assert_eq!(r.series.column_max("slo.alert"), 0.0);
        assert_eq!(r.completed, 60 * 50);
    }

    #[test]
    fn a_sustained_incident_pages_and_clears() {
        // 60 s healthy, then 60 s with one session in five violating
        // (20% bad = 20x burn at a 1% budget), then healthy again.
        let mut samples = load(0, 60, 50, 0);
        samples.extend(load(60, 60, 50, 5));
        samples.extend(load(120, 60, 50, 0));
        let r = monitor_samples(&samples, &cfg(), ms(500)).unwrap();
        assert!(r.violations > 0);
        assert_eq!(r.peak_severity(), Some(AlertSeverity::Page));
        // The page fires only after BOTH windows confirm — i.e. inside
        // the incident, not at its first bad tick, and never before 60 s.
        let first_page = r.alerts.iter().find(|a| a.severity == Some(AlertSeverity::Page)).unwrap();
        assert!(first_page.at > at(60_000), "paged before the incident began");
        assert!(first_page.at < at(125_000), "paged only after the incident ended");
        // The alert clears once the slow window drains.
        assert_eq!(r.alerts.last().unwrap().severity, None);
        assert!(r.series.column_max("slo.fast_burn") >= 5.0);
    }

    #[test]
    fn short_blips_warn_at_most() {
        // A 2 s spike inside otherwise healthy traffic: the fast window
        // sees it, the 30 s slow window dilutes it below the page factor.
        let mut samples = load(0, 40, 50, 0);
        samples.extend(load(40, 2, 50, 2));
        samples.extend(load(42, 40, 50, 0));
        let r = monitor_samples(&samples, &cfg(), ms(500)).unwrap();
        assert!(r.peak_fast_burn >= 5.0, "the fast window must see the spike");
        assert_ne!(r.peak_severity(), Some(AlertSeverity::Page), "slow window must gate the page");
    }

    #[test]
    fn the_report_is_deterministic_and_total() {
        let samples = load(0, 20, 30, 7);
        let a = monitor_samples(&samples, &cfg(), ms(250)).unwrap();
        let b = monitor_samples(&samples, &cfg(), ms(250)).unwrap();
        assert_eq!(a.alerts, b.alerts);
        assert_eq!(a.series.to_csv(), b.series.to_csv());
        // Empty input: one tick, no alerts.
        let empty = monitor_samples(&[], &cfg(), ms(250)).unwrap();
        assert_eq!(empty.completed, 0);
        assert!(empty.alerts.is_empty());
        // Invalid configs are rejected up front.
        assert!(monitor_samples(&[], &BurnRateConfig::new(ms(1), 0.0), ms(1)).is_err());
        assert!(monitor_samples(&[], &cfg(), SimDuration::ZERO).is_err());
        let mut bad = cfg();
        bad.slow_window = ms(1);
        assert!(monitor_samples(&[], &bad, ms(1)).is_err());
    }

    #[test]
    fn from_slo_matches_the_baseline_p99() {
        let lats: Vec<SimDuration> = (1..=100).map(ms).collect();
        let slo = SessionSlo::from_latencies(100, lats).unwrap();
        let cfg = BurnRateConfig::from_slo(&slo);
        assert_eq!(cfg.threshold, ms(99));
        assert_eq!(cfg.target, 0.01);
        assert!(cfg.validate().is_ok());
    }
}
