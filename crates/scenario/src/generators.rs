//! Named scenario generators.
//!
//! Each generator materializes its whole operation schedule up front from
//! one dedicated RNG stream — `derive_seed(seed, SCENARIO_SEED_INDEX)`,
//! forked once per scenario kind — so a generated trace is a pure
//! function of `(kind, params, seed)`: bit-identical at every
//! `SEQIO_JOBS` value, and independent of the node, rotational, fault and
//! session RNG streams (the determinism suite guards both properties).

use seqio_client::{generate_sessions, ArrivalConfig};
use seqio_node::sweep::derive_seed;
use seqio_node::Experiment;
use seqio_simcore::{FaultPlan, SeqioError, SimDuration, SimRng, SimTime};
use seqio_workload::Pattern;

use crate::trace::{ScenarioTrace, TraceOp, TraceOpKind};

/// [`derive_seed`] index reserved for the scenario-generation RNG stream.
/// Node seeds use indices `0..K` and the client session stream uses
/// `SESSION_SEED_INDEX`; this index collides with neither, so scenario
/// generation can never couple to any other stream.
pub const SCENARIO_SEED_INDEX: usize = 0x5ce7_a10d;

/// The named workload shapes the scenario engine can generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// All streams sequential from `t = 0`, round-robin over disks —
    /// the paper's closed-loop baseline expressed as a trace.
    Steady,
    /// Video-segment streaming: Poisson session arrivals over a Zipf
    /// catalogue, each session a finite sequential read of its title's
    /// extent.
    Video,
    /// Steady readers plus a whole-disk backup scan starting mid-run on
    /// every disk.
    Backup,
    /// Half sequential readers, half random-access interferers.
    Mixed,
    /// Stream churn: staggered arrivals with bounded lifetimes, so the
    /// live population rises and falls.
    Churn,
    /// Readers that are retired and re-injected at a new offset twice
    /// mid-run (seek/restart, e.g. a user scrubbing through a file).
    SeekRestart,
    /// The steady population over a node whose disk 0 turns into a mild
    /// (1.8x) straggler mid-run — below the default rotate threshold, so
    /// only an adaptive tuner reacts.
    Degraded,
}

impl ScenarioKind {
    /// Every kind, in matrix order.
    pub const ALL: [ScenarioKind; 7] = [
        ScenarioKind::Steady,
        ScenarioKind::Video,
        ScenarioKind::Backup,
        ScenarioKind::Mixed,
        ScenarioKind::Churn,
        ScenarioKind::SeekRestart,
        ScenarioKind::Degraded,
    ];

    /// The scenario's stable name (also its trace `meta:name`).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioKind::Steady => "steady",
            ScenarioKind::Video => "video",
            ScenarioKind::Backup => "backup",
            ScenarioKind::Mixed => "mixed",
            ScenarioKind::Churn => "churn",
            ScenarioKind::SeekRestart => "seek-restart",
            ScenarioKind::Degraded => "degraded",
        }
    }

    /// Looks a kind up by [`name`](Self::name).
    pub fn from_name(s: &str) -> Option<ScenarioKind> {
        ScenarioKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Fork salt for the kind's private RNG stream (1-based so no kind
    /// shares the root stream).
    fn salt(self) -> u64 {
        1 + ScenarioKind::ALL.iter().position(|k| k == &self).expect("kind is in ALL") as u64
    }
}

/// The dimensions a generator works against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioParams {
    /// Storage nodes addressed by the trace.
    pub nodes: usize,
    /// Disks per node.
    pub disks: usize,
    /// Request size in blocks.
    pub request_blocks: u64,
    /// One disk's capacity in blocks (bounds offsets and extents).
    pub usable_blocks: u64,
    /// Run horizon (warmup + measured window).
    pub horizon: SimDuration,
    /// Workload intensity: long-lived streams per disk (arrival-driven
    /// scenarios scale their populations from this).
    pub streams_per_disk: usize,
}

impl ScenarioParams {
    /// Reads the node dimensions off an experiment template.
    pub fn from_template(t: &Experiment, nodes: usize, streams_per_disk: usize) -> ScenarioParams {
        ScenarioParams {
            nodes,
            disks: t.shape.total_disks(),
            request_blocks: t.request_blocks(),
            usable_blocks: t.shape.disk.geometry.capacity_bytes / seqio_disk::BLOCK_SIZE,
            horizon: t.warmup + t.duration,
            streams_per_disk,
        }
    }
}

/// A generated scenario: the trace plus the fault plan (if any) the
/// template must carry to reproduce it.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Which generator produced it.
    pub kind: ScenarioKind,
    /// The materialized operation schedule.
    pub trace: ScenarioTrace,
    /// Per-node fault plan the scenario assumes (only
    /// [`Degraded`](ScenarioKind::Degraded) sets one).
    pub faults: Option<FaultPlan>,
}

/// Dense per-node stream-id allocator shared by every generator.
struct Ids {
    next: Vec<usize>,
}

impl Ids {
    fn new(nodes: usize) -> Ids {
        Ids { next: vec![0; nodes] }
    }
    fn alloc(&mut self, node: usize) -> usize {
        let id = self.next[node];
        self.next[node] += 1;
        id
    }
}

/// Materializes scenario `kind` against `params`, drawing every random
/// choice from the dedicated scenario RNG stream of `seed`.
///
/// # Errors
///
/// Rejects degenerate parameters (zero nodes/disks/streams, a zero
/// horizon) and propagates session-generation errors for
/// [`Video`](ScenarioKind::Video).
pub fn generate(
    kind: ScenarioKind,
    params: &ScenarioParams,
    seed: u64,
) -> Result<Scenario, SeqioError> {
    if params.nodes == 0 || params.disks == 0 || params.streams_per_disk == 0 {
        return Err(SeqioError::Experiment(
            "scenario needs at least one node, disk and stream per disk".into(),
        ));
    }
    if params.horizon == SimDuration::ZERO {
        return Err(SeqioError::Experiment("scenario horizon must be positive".into()));
    }
    if params.usable_blocks < 4 * params.request_blocks {
        return Err(SeqioError::Experiment(
            "disk too small for scenario offsets (need four requests of headroom)".into(),
        ));
    }
    let mut root = SimRng::seed_from(derive_seed(seed, SCENARIO_SEED_INDEX));
    // Each kind forks its own stream off the root at a kind-specific
    // salt; the root is advanced identically for every kind, so changing
    // one generator can never shift another's draws.
    let mut rng = root.fork(kind.salt());
    let mut trace = ScenarioTrace::new(kind.name(), params.nodes);
    let mut ids = Ids::new(params.nodes);
    let mut faults = None;
    match kind {
        ScenarioKind::Steady => steady(&mut trace, &mut ids, params, &mut rng),
        ScenarioKind::Video => video(&mut trace, &mut ids, params, &mut rng)?,
        ScenarioKind::Backup => backup(&mut trace, &mut ids, params, &mut rng),
        ScenarioKind::Mixed => mixed(&mut trace, &mut ids, params, &mut rng),
        ScenarioKind::Churn => churn(&mut trace, &mut ids, params, &mut rng),
        ScenarioKind::SeekRestart => seek_restart(&mut trace, &mut ids, params, &mut rng),
        ScenarioKind::Degraded => {
            steady(&mut trace, &mut ids, params, &mut rng);
            // A mild straggler on every node's disk 0 for the middle half
            // of the run: below the default rotate threshold (2.0), so a
            // static tune ignores it.
            faults = Some(FaultPlan::new().straggler(
                0,
                DEGRADED_FACTOR,
                params.horizon / 4,
                Some(params.horizon / 2),
            ));
        }
    }
    trace.sort();
    trace.validate()?;
    Ok(Scenario { kind, trace, faults })
}

/// The [`Degraded`](ScenarioKind::Degraded) scenario's straggler factor:
/// mild on purpose — below the default rotate threshold of 2.0.
pub const DEGRADED_FACTOR: f64 = 1.8;

/// A start offset with room for at least four requests before the disk
/// edge.
fn offset(params: &ScenarioParams, rng: &mut SimRng) -> u64 {
    rng.below(params.usable_blocks - 4 * params.request_blocks)
}

fn inject(trace: &mut ScenarioTrace, at: SimTime, node: usize, stream: usize, kind: TraceOpKind) {
    trace.ops.push(TraceOp { at, node, stream, kind });
}

fn steady(trace: &mut ScenarioTrace, ids: &mut Ids, p: &ScenarioParams, rng: &mut SimRng) {
    for node in 0..p.nodes {
        for disk in 0..p.disks {
            for _ in 0..p.streams_per_disk {
                let id = ids.alloc(node);
                inject(
                    trace,
                    SimTime::ZERO,
                    node,
                    id,
                    TraceOpKind::Inject {
                        disk,
                        start: offset(p, rng),
                        blocks: p.request_blocks,
                        requests: u64::MAX,
                        pattern: Pattern::Sequential,
                    },
                );
            }
        }
    }
}

fn video(
    trace: &mut ScenarioTrace,
    ids: &mut Ids,
    p: &ScenarioParams,
    rng: &mut SimRng,
) -> Result<(), SeqioError> {
    // Arrival rate sized so the expected concurrent population matches
    // the steady scenario's: sessions last requests/rate-ish, so aim for
    // ~3x streams_per_disk arrivals per disk over the horizon.
    let total = (3 * p.nodes * p.disks * p.streams_per_disk).max(1);
    let cfg = ArrivalConfig {
        rate_per_sec: total as f64 / p.horizon.as_secs_f64(),
        titles: (p.nodes * p.disks * 16).max(16),
        requests_per_session: 256,
        ..ArrivalConfig::default()
    };
    let sessions = generate_sessions(
        &cfg,
        p.nodes,
        p.disks,
        p.request_blocks,
        p.usable_blocks,
        p.horizon,
        rng.next_u64(),
    )?;
    for s in sessions {
        let id = ids.alloc(s.node);
        inject(
            trace,
            s.arrival,
            s.node,
            id,
            TraceOpKind::Inject {
                disk: s.disk,
                start: s.start,
                blocks: p.request_blocks,
                requests: s.requests,
                pattern: Pattern::Sequential,
            },
        );
    }
    Ok(())
}

fn backup(trace: &mut ScenarioTrace, ids: &mut Ids, p: &ScenarioParams, rng: &mut SimRng) {
    steady(trace, ids, p, rng);
    // One whole-disk scan per disk, entering an eighth of the way in so
    // the interference onset is visible against the steady baseline.
    let at = SimTime::ZERO + p.horizon / 8;
    for node in 0..p.nodes {
        for disk in 0..p.disks {
            let id = ids.alloc(node);
            inject(
                trace,
                at,
                node,
                id,
                TraceOpKind::Inject {
                    disk,
                    start: 0,
                    blocks: p.request_blocks,
                    requests: u64::MAX,
                    pattern: Pattern::Sequential,
                },
            );
        }
    }
}

fn mixed(trace: &mut ScenarioTrace, ids: &mut Ids, p: &ScenarioParams, rng: &mut SimRng) {
    let span = (p.usable_blocks / 4).max(p.request_blocks);
    for node in 0..p.nodes {
        for disk in 0..p.disks {
            for s in 0..p.streams_per_disk {
                let id = ids.alloc(node);
                let pattern = if s % 2 == 0 {
                    Pattern::Sequential
                } else {
                    Pattern::Random { span_blocks: span }
                };
                inject(
                    trace,
                    SimTime::ZERO,
                    node,
                    id,
                    TraceOpKind::Inject {
                        disk,
                        start: offset(p, rng).min(p.usable_blocks - span),
                        blocks: p.request_blocks,
                        requests: u64::MAX,
                        pattern,
                    },
                );
            }
        }
    }
}

fn churn(trace: &mut ScenarioTrace, ids: &mut Ids, p: &ScenarioParams, rng: &mut SimRng) {
    // Twice the steady population, arriving over the first three quarters
    // of the run with lifetimes between an eighth and a half of the
    // horizon: the live set rises and falls continuously.
    let total = 2 * p.nodes * p.disks * p.streams_per_disk;
    let h = p.horizon.as_nanos();
    for _ in 0..total {
        let node = rng.below(p.nodes as u64) as usize;
        let disk = rng.below(p.disks as u64) as usize;
        let arrival = SimTime::from_nanos(rng.below(3 * h / 4));
        let life = SimDuration::from_nanos(h / 8 + rng.below(3 * h / 8));
        let id = ids.alloc(node);
        inject(
            trace,
            arrival,
            node,
            id,
            TraceOpKind::Inject {
                disk,
                start: offset(p, rng),
                blocks: p.request_blocks,
                requests: u64::MAX,
                pattern: Pattern::Sequential,
            },
        );
        let cut = arrival + life;
        if cut < SimTime::ZERO + p.horizon {
            trace.ops.push(TraceOp { at: cut, node, stream: id, kind: TraceOpKind::Retire });
        }
    }
}

fn seek_restart(trace: &mut ScenarioTrace, ids: &mut Ids, p: &ScenarioParams, rng: &mut SimRng) {
    // Every reader scrubs twice: at each third of the horizon it is
    // retired and re-injected (as a fresh trace stream) at a new offset.
    let h = p.horizon.as_nanos();
    for node in 0..p.nodes {
        for disk in 0..p.disks {
            for _ in 0..p.streams_per_disk {
                let mut prev: Option<usize> = None;
                for seg in 0..3u64 {
                    let at = SimTime::from_nanos(seg * h / 3);
                    if let Some(old) = prev {
                        trace.ops.push(TraceOp {
                            at,
                            node,
                            stream: old,
                            kind: TraceOpKind::Retire,
                        });
                    }
                    let id = ids.alloc(node);
                    inject(
                        trace,
                        at,
                        node,
                        id,
                        TraceOpKind::Inject {
                            disk,
                            start: offset(p, rng),
                            blocks: p.request_blocks,
                            requests: u64::MAX,
                            pattern: Pattern::Sequential,
                        },
                    );
                    prev = Some(id);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ScenarioParams {
        ScenarioParams {
            nodes: 2,
            disks: 4,
            request_blocks: 128,
            usable_blocks: 1 << 24,
            horizon: SimDuration::from_secs(3),
            streams_per_disk: 3,
        }
    }

    #[test]
    fn every_kind_generates_a_valid_named_trace() {
        for kind in ScenarioKind::ALL {
            let s = generate(kind, &params(), 7).unwrap();
            assert_eq!(s.trace.name, kind.name());
            assert_eq!(s.trace.nodes, 2);
            assert!(!s.trace.ops.is_empty(), "{kind:?} generated no ops");
            s.trace.validate().unwrap();
            assert_eq!(s.faults.is_some(), kind == ScenarioKind::Degraded);
            assert_eq!(ScenarioKind::from_name(kind.name()), Some(kind));
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_kind_params_seed() {
        for kind in ScenarioKind::ALL {
            let a = generate(kind, &params(), 7).unwrap();
            let b = generate(kind, &params(), 7).unwrap();
            assert_eq!(a.trace, b.trace, "{kind:?} not deterministic");
            // Every generator draws offsets (at least) from its stream,
            // so a different seed draws a different trace.
            let c = generate(kind, &params(), 8).unwrap();
            assert_ne!(a.trace, c.trace, "{kind:?} ignores the seed");
        }
    }

    #[test]
    fn traces_round_trip_through_text() {
        for kind in ScenarioKind::ALL {
            let s = generate(kind, &params(), 11).unwrap();
            let text = s.trace.to_text();
            let back = ScenarioTrace::from_text(&text).unwrap();
            assert_eq!(back, s.trace, "{kind:?} text round-trip");
        }
    }

    #[test]
    fn degenerate_parameters_are_rejected() {
        let mut p = params();
        p.streams_per_disk = 0;
        assert!(generate(ScenarioKind::Steady, &p, 1).is_err());
        let mut p = params();
        p.horizon = SimDuration::ZERO;
        assert!(generate(ScenarioKind::Steady, &p, 1).is_err());
        let mut p = params();
        p.usable_blocks = 100;
        assert!(generate(ScenarioKind::Steady, &p, 1).is_err());
    }
}
