//! Offline stub of `crossbeam`: the `thread::scope` API backed by
//! `std::thread::scope` (stable since Rust 1.63). Vendored because the
//! build environment has no crates.io access.
//!
//! Divergence from upstream: if a spawned thread panics and its handle is
//! never joined, `std::thread::scope` re-raises the panic when the scope
//! closes instead of reporting it through `scope`'s `Err` value.

pub mod channel {
    //! MPMC channels (subset of `crossbeam-channel`): `bounded`/`unbounded`
    //! with cloneable senders *and* receivers, `recv`, and `recv_timeout`,
    //! built on a mutex-protected queue and a condvar.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        // Signals receivers on send/disconnect and senders on pop.
        signal: Condvar,
        capacity: Option<usize>,
    }

    fn chan<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Chan {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            signal: Condvar::new(),
            capacity,
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    /// Creates a channel of unlimited capacity.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        chan(None)
    }

    /// Creates a channel holding at most `cap` in-flight messages; `send`
    /// blocks while full.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        chan(Some(cap.max(1)))
    }

    /// Error returned when sending into a channel with no receivers left;
    /// carries the unsent message.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned when receiving from an empty channel with no senders.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// Every sender disconnected and the queue is drained.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Chan<T>>,
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// Returns the message if all receivers are gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                match self.inner.capacity {
                    Some(cap) if st.queue.len() >= cap => {
                        st = self.inner.signal.wait(st).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            st.queue.push_back(value);
            drop(st);
            self.inner.signal.notify_all();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders += 1;
            drop(st);
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            let disconnected = st.senders == 0;
            drop(st);
            if disconnected {
                self.inner.signal.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender(..)")
        }
    }

    /// The receiving half; cloneable (messages go to exactly one receiver).
    pub struct Receiver<T> {
        inner: Arc<Chan<T>>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Returns an error once the channel is empty and all senders are
        /// gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.inner.signal.notify_all();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.signal.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Blocks until a message arrives or `timeout` elapses.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] on deadline,
        /// [`RecvTimeoutError::Disconnected`] when drained with no senders.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.queue.pop_front() {
                    drop(st);
                    self.inner.signal.notify_all();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .inner
                    .signal
                    .wait_timeout(st, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                st = guard;
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers += 1;
            drop(st);
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
            let disconnected = st.receivers == 0;
            drop(st);
            if disconnected {
                self.inner.signal.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver(..)")
        }
    }
}

pub mod thread {
    use std::thread as std_thread;

    /// Error type carried by a failed [`join`](ScopedJoinHandle::join).
    pub type ScopeError = Box<dyn std::any::Any + Send + 'static>;

    /// A scope handle passed to [`scope`] and to every spawned closure.
    #[derive(Debug)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope again so
        /// it can spawn further siblings, mirroring `crossbeam`'s API.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle to a scoped thread.
    #[derive(Debug)]
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its value or the
        /// panic payload.
        pub fn join(self) -> Result<T, ScopeError> {
            self.inner.join()
        }
    }

    /// Creates a scope in which threads borrowing from the environment can
    /// be spawned; all unjoined threads are joined before `scope` returns.
    pub fn scope<'env, F, R>(f: F) -> Result<R, ScopeError>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::Duration;

    #[test]
    fn mpmc_channel_distributes_work() {
        let (tx, rx) = super::channel::unbounded::<u32>();
        let total = super::thread::scope(|s| {
            let workers: Vec<_> = (0..3)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| {
                        let mut sum = 0u32;
                        while let Ok(v) = rx.recv() {
                            sum += v;
                        }
                        sum
                    })
                })
                .collect();
            for v in 1..=100 {
                tx.send(v).unwrap();
            }
            drop(tx);
            drop(rx);
            workers.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
        })
        .unwrap();
        assert_eq!(total, 5050);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = super::channel::bounded::<u8>(1);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(super::channel::RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(super::channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = super::channel::unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = super::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    s.spawn(move |_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                        i * 2
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<usize>()
        })
        .unwrap();
        assert_eq!(out, 0 + 2 + 4 + 6);
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let v = super::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 7).join().unwrap()).join().unwrap()
        })
        .unwrap();
        assert_eq!(v, 7);
    }
}
