//! Regression guard for the committed figure data: recomputes a small
//! subset of the committed `bench_results/*.csv` cells from the current
//! build and fails if the full-mode numbers drift from what the code now
//! produces. Cheap on purpose — a handful of cells per figure, chosen
//! from low-throughput corners so the simulated event count stays small.
//!
//! Covered figures: fig01 (direct-path collapse, 60 disks), fig12 (8-disk
//! D = S configuration), fig13 (small dispatch set vs D = S), fig_slo
//! (open-loop session latency vs offered load) and scenario_matrix (named
//! scenarios: direct vs static tunes vs adaptive).
//!
//! The last two tests re-derive one cell of each figure through the wider
//! drivers — the shared-clock cluster driver (a 1-node identity
//! [`Scenario`]) and the client front end's closed-loop identity mode —
//! the committed figure data must be reachable through those paths too,
//! bit for bit, pinning the layer-equivalence guarantees to the same
//! goldens the figures use.

use seqio_client::{ArrivalConfig, ClientExperiment, LinkConfig};
use seqio_cluster::Scenario;
use seqio_node::{Experiment, Frontend, NodeShape};
use seqio_scenario::{run_row, MatrixScale, ScenarioKind};
use seqio_simcore::units::{KIB, MIB};
use seqio_simcore::SimDuration;

/// Loads a cell of a committed CSV by row label and column header.
fn committed_cell(slug: &str, row: &str, column: &str) -> String {
    let path = seqio_bench::results_dir().join(format!("{slug}.csv"));
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut lines = text.lines();
    let header: Vec<&str> = lines.next().expect("csv header").split(',').collect();
    let col = header.iter().position(|h| *h == column).unwrap_or_else(|| {
        panic!(
            "no column {column:?} in {header:?} — if a quick-mode `cargo bench` \
             overwrote {}, restore it with git or regenerate with \
             `SEQIO_BENCH_FULL=1 cargo bench`",
            path.display()
        )
    });
    for line in lines {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.first() == Some(&row) {
            return cells[col].to_string();
        }
    }
    panic!("no row {row:?} in {}", path.display());
}

/// `Figure::report` writes y values with `{:.4}` — the committed format.
fn cell(mbs: f64) -> String {
    format!("{mbs:.4}")
}

/// Recomputes one full-figure fig01 cell with the exact spec the bench
/// uses in full mode (`SEQIO_BENCH_FULL=1`): 60 disks, seed 11, 4 s
/// warmup, 8 s measured window.
fn fig01_cell(streams_per_disk: usize, request_size: u64) -> String {
    let r = Experiment::builder()
        .shape(NodeShape::sixty_disk())
        .streams_per_disk(streams_per_disk)
        .request_size(request_size)
        .warmup(SimDuration::from_secs(4))
        .duration(SimDuration::from_secs(8))
        .seed(11)
        .run();
    cell(r.total_throughput_mbs())
}

#[test]
fn fig01_committed_csv_matches_current_build() {
    // 256K row: the collapsed stream counts deliver under 1 GB/s, so these
    // are the cheapest cells of the figure to re-simulate.
    for (column, per_disk) in [("120 Streams", 2), ("300 Streams", 5)] {
        let committed = committed_cell("fig01_collapse", "256K", column);
        let current = fig01_cell(per_disk, 256 * KIB);
        assert_eq!(
            current, committed,
            "bench_results/fig01_collapse.csv cell (256K, {column}) drifted from the \
             current build; regenerate the figure CSVs with \
             `SEQIO_BENCH_FULL=1 cargo bench` and commit the result"
        );
    }
}

#[test]
fn fig12_committed_csv_matches_current_build() {
    // The collapsed "No Readahead" corner of the 8-disk figure: full mode
    // runs 10 s warmup + 10 s window at seed 1212 on the direct path, and
    // the 60/100-stream rows are its lowest-throughput (cheapest) cells.
    for streams_per_disk in [60usize, 100] {
        let committed =
            committed_cell("fig12_eight_disks", &streams_per_disk.to_string(), "No Readahead");
        let r = Experiment::builder()
            .shape(NodeShape::eight_disk())
            .streams_per_disk(streams_per_disk)
            .warmup(SimDuration::from_secs(10))
            .duration(SimDuration::from_secs(10))
            .seed(1212)
            .run();
        assert_eq!(
            cell(r.total_throughput_mbs()),
            committed,
            "bench_results/fig12_eight_disks.csv cell ({streams_per_disk}, No Readahead) \
             drifted from the current build; regenerate with \
             `SEQIO_BENCH_FULL=1 cargo bench` and commit the result"
        );
    }
}

#[test]
fn fig13_committed_csv_matches_current_build() {
    // The D = S comparison curve at its cheapest point (10 streams/disk):
    // full mode runs 12 s warmup + 12 s window at seed 1313 with the
    // stream scheduler at R = 512K.
    let committed = committed_cell("fig13_dispatch_staged", "10", "D = S (from Fig. 12)");
    let r = Experiment::builder()
        .shape(NodeShape::eight_disk())
        .streams_per_disk(10)
        .frontend(Frontend::stream_scheduler_with_readahead(512 * KIB))
        .warmup(SimDuration::from_secs(12))
        .duration(SimDuration::from_secs(12))
        .seed(1313)
        .run();
    assert_eq!(
        cell(r.total_throughput_mbs()),
        committed,
        "bench_results/fig13_dispatch_staged.csv cell (10, D = S) drifted from the \
         current build; regenerate with `SEQIO_BENCH_FULL=1 cargo bench` and \
         commit the result"
    );
}

#[test]
fn fig_slo_committed_csv_matches_current_build() {
    // The lightest point of the open-loop SLO figure: 50 sessions/s over
    // 30 s against 2 nodes behind a 40 MiB/s link (about 1500 sessions,
    // far below saturation, so the re-simulation is cheap).
    let template = Experiment::builder()
        .warmup(SimDuration::ZERO)
        .duration(SimDuration::from_secs(30))
        .build();
    let slo = ClientExperiment::builder()
        .template(template)
        .nodes(2)
        .base_seed(2026)
        .arrivals(ArrivalConfig {
            rate_per_sec: 50.0,
            requests_per_session: 2,
            titles: 512,
            ..ArrivalConfig::default()
        })
        .link(LinkConfig { capacity_bps: 40.0 * MIB as f64, ..LinkConfig::default() })
        .run()
        .expect("slo figure point")
        .slo
        .expect("sessions completed");
    for (column, value) in
        [("p50", slo.p50_ms), ("p95", slo.p95_ms), ("p99", slo.p99_ms), ("p99.9", slo.p999_ms)]
    {
        assert_eq!(
            cell(value),
            committed_cell("fig_slo", "50", column),
            "bench_results/fig_slo.csv cell (50, {column}) drifted from the current \
             build; regenerate with `SEQIO_BENCH_FULL=1 cargo bench` and commit the result"
        );
    }
}

#[test]
fn scenario_matrix_committed_csv_matches_current_build() {
    // Two rows of the scenario matrix recomputed at the bench's full
    // scale: `mixed` (the lowest-throughput, cheapest row) and `video`
    // (the row where the adaptive tuner's widening retune is the whole
    // story — its Adaptive cell pins the retune behaviour, not just the
    // static panel).
    for kind in [ScenarioKind::Mixed, ScenarioKind::Video] {
        let r = run_row(kind, &MatrixScale::full(), 11).expect("the matrix row runs");
        for (column, value) in [
            ("Direct", r.direct_mbs),
            ("Best static", r.best_static().mbs),
            ("Wide reference", r.wide_mbs),
            ("Adaptive", r.adaptive_mbs),
        ] {
            assert_eq!(
                cell(value),
                committed_cell("scenario_matrix", r.scenario, column),
                "bench_results/scenario_matrix.csv cell ({}, {column}) drifted from the \
                 current build; regenerate with `SEQIO_BENCH_FULL=1 cargo bench` and \
                 commit the result",
                r.scenario
            );
        }
    }
}

/// Runs a figure template through the shared-clock cluster driver as a
/// 1-node identity scenario and renders the aggregate the way
/// `Figure::report` does.
fn cluster_cell(template: Experiment) -> String {
    let c = Scenario::builder()
        .template(template)
        .build()
        .expect("figure templates are valid scenarios")
        .run()
        .expect("1-node scenario runs");
    cell(c.total_throughput_mbs())
}

#[test]
fn cluster_path_reproduces_committed_figure_cells() {
    // One representative cell per covered figure, each recomputed through
    // the co-simulation driver instead of `Experiment::run`. Equality with
    // the committed CSV is exact: the 1-node cluster is bit-identical to
    // the plain experiment, so any drift here means the cluster layer
    // perturbed the node simulation.
    let fig01 = Experiment::builder()
        .shape(NodeShape::sixty_disk())
        .streams_per_disk(2)
        .request_size(256 * KIB)
        .warmup(SimDuration::from_secs(4))
        .duration(SimDuration::from_secs(8))
        .seed(11)
        .build();
    assert_eq!(
        cluster_cell(fig01),
        committed_cell("fig01_collapse", "256K", "120 Streams"),
        "the cluster path no longer reproduces fig01 (256K, 120 Streams)"
    );

    let fig12 = Experiment::builder()
        .shape(NodeShape::eight_disk())
        .streams_per_disk(60)
        .warmup(SimDuration::from_secs(10))
        .duration(SimDuration::from_secs(10))
        .seed(1212)
        .build();
    assert_eq!(
        cluster_cell(fig12),
        committed_cell("fig12_eight_disks", "60", "No Readahead"),
        "the cluster path no longer reproduces fig12 (60, No Readahead)"
    );

    let fig13 = Experiment::builder()
        .shape(NodeShape::eight_disk())
        .streams_per_disk(10)
        .frontend(Frontend::stream_scheduler_with_readahead(512 * KIB))
        .warmup(SimDuration::from_secs(12))
        .duration(SimDuration::from_secs(12))
        .seed(1313)
        .build();
    assert_eq!(
        cluster_cell(fig13),
        committed_cell("fig13_dispatch_staged", "10", "D = S (from Fig. 12)"),
        "the cluster path no longer reproduces fig13 (10, D = S)"
    );
}

#[test]
fn client_identity_path_reproduces_committed_figure_cells() {
    // The client front end's identity configuration — closed loop, the
    // default unconstrained link — must reduce bit-identically to the
    // plain run, pinned to the same committed fig01 golden the other
    // equivalence tests use. Any drift here means the client tier
    // perturbed the storage simulation it claims to only observe.
    let fig01 = Experiment::builder()
        .shape(NodeShape::sixty_disk())
        .streams_per_disk(2)
        .request_size(256 * KIB)
        .warmup(SimDuration::from_secs(4))
        .duration(SimDuration::from_secs(8))
        .seed(11)
        .build();
    let c =
        ClientExperiment::builder().template(fig01).run().expect("1-node closed-loop identity run");
    assert_eq!(
        cell(c.total_throughput_mbs()),
        committed_cell("fig01_collapse", "256K", "120 Streams"),
        "the client identity path no longer reproduces fig01 (256K, 120 Streams)"
    );
    // The one permitted difference: the identity run carries the SLO the
    // plain path cannot compute (open-ended streams never complete, so it
    // stays None here — the field exists, the reduction just has nothing
    // to fill it with on an open-ended figure template).
    assert!(c.slo.is_none(), "open-ended streams have no session completions");
}
