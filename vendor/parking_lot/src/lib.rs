//! Offline stub of `parking_lot`: `Mutex`/`RwLock` with the non-poisoning
//! `lock()`/`read()`/`write()` API, backed by `std::sync`. Vendored because
//! the build environment has no crates.io access.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error: a
/// panic while holding the lock simply hands the data to the next locker,
/// matching `parking_lot` semantics.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Mutex").field(&&self.0).finish()
    }
}

/// A reader-writer lock with the non-poisoning `parking_lot` API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&self.0).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
