//! Whole-disk configuration and presets.

use seqio_simcore::units::{KIB, MIB};
use seqio_simcore::SimDuration;

use crate::cache::CacheConfig;
use crate::geometry::GeometryConfig;
use crate::queue::QueuePolicy;
use crate::seek::SeekConfig;

/// Complete description of one disk drive.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskConfig {
    /// Platter/zone layout.
    pub geometry: GeometryConfig,
    /// Seek-time characteristics.
    pub seek: SeekConfig,
    /// On-disk segmented cache.
    pub cache: CacheConfig,
    /// Command-queue ordering.
    pub queue_policy: QueuePolicy,
    /// How many commands the drive itself holds (TCQ/NCQ depth). Only
    /// commands that have reached the drive can be served from its cache or
    /// attach to the in-flight operation; anything deeper waits in the host
    /// FIFO and is (re-)checked when it reaches the mechanism. Commodity
    /// SATA drives of the paper's era hold only a handful.
    pub device_queue_depth: usize,
    /// Fixed electronics/command-processing overhead charged per operation
    /// (both cache hits and media operations).
    pub command_overhead: SimDuration,
    /// Head-settle time when streaming crosses a track boundary.
    pub track_switch: SimDuration,
    /// Idle-gap length the drive's speed-matching buffer absorbs: if a
    /// contiguous read arrives within this long of the previous media
    /// operation finishing, no rotational re-alignment is charged.
    pub sequential_gap_tolerance: SimDuration,
    /// Interface (SATA link) rate in bytes/second. The disk model itself is
    /// media-only; the controller uses this figure to charge link transfers.
    pub interface_rate: u64,
}

impl DiskConfig {
    /// Western Digital Caviar SE WD800JD-alike — the drive used in the
    /// paper's testbed: 80 GB, 7200 rpm, 8.9 ms average seek, 8 MB cache,
    /// SATA-150. Application-level sustained throughput lands in the
    /// 55–60 MB/s range the paper reports.
    pub fn wd800jd() -> Self {
        DiskConfig {
            geometry: GeometryConfig {
                capacity_bytes: 80_000_000_000,
                heads: 2,
                rpm: 7200,
                zones: 16,
                outer_rate: 66 * MIB,
                inner_rate: 38 * MIB,
            },
            seek: SeekConfig {
                track_to_track: SimDuration::from_millis(2),
                average: SimDuration::from_millis_f64(8.9),
                full_stroke: SimDuration::from_millis(21),
            },
            cache: CacheConfig {
                segment_count: 32,
                segment_bytes: 256 * KIB,
                read_ahead_bytes: 256 * KIB,
            },
            queue_policy: QueuePolicy::Fifo,
            device_queue_depth: 4,
            command_overhead: SimDuration::from_micros(150),
            track_switch: SimDuration::from_micros(500),
            // A strictly sequential reader with one outstanding command
            // still streams at media rate on real drives because firmware
            // read-ahead bridges the host round-trip; approximate that by
            // absorbing idle gaps up to roughly one revolution plus a host
            // round-trip before charging rotational re-alignment.
            sequential_gap_tolerance: SimDuration::from_millis(10),
            interface_rate: 150_000_000,
        }
    }

    /// Replaces the cache configuration (builder-style convenience used all
    /// over the figure sweeps).
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = cache;
        self
    }

    /// Replaces the queue policy.
    pub fn with_queue_policy(mut self, policy: QueuePolicy) -> Self {
        self.queue_policy = policy;
        self
    }

    /// Validates every sub-configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.geometry.validate()?;
        self.seek.validate()?;
        self.cache.validate()?;
        if self.interface_rate == 0 {
            return Err("interface rate must be positive".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preset_is_valid() {
        assert!(DiskConfig::wd800jd().validate().is_ok());
    }

    #[test]
    fn preset_matches_datasheet() {
        let c = DiskConfig::wd800jd();
        assert_eq!(c.geometry.rpm, 7200);
        assert_eq!(c.cache.total_bytes(), 8 * MIB);
        assert_eq!(c.seek.average, SimDuration::from_millis_f64(8.9));
        assert_eq!(c.interface_rate, 150_000_000);
    }

    #[test]
    fn builder_helpers_replace_fields() {
        let c = DiskConfig::wd800jd()
            .with_cache(CacheConfig::disabled())
            .with_queue_policy(QueuePolicy::Elevator);
        assert_eq!(c.cache.segment_count, 0);
        assert_eq!(c.queue_policy, QueuePolicy::Elevator);
    }

    #[test]
    fn invalid_interface_rate_rejected() {
        let mut c = DiskConfig::wd800jd();
        c.interface_rate = 0;
        assert!(c.validate().is_err());
    }
}
