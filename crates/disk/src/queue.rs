//! Disk command queue.
//!
//! Holds requests waiting for the mechanism. Three policies are provided:
//! plain FIFO (how a commodity disk treats a shallow queue), a C-LOOK
//! elevator (one-directional sweep by block address — what the kernel-side
//! "noop"/elevator layer effectively provides), and greedy shortest-seek
//! first (an NCQ-style what-if).

use std::collections::VecDeque;

use crate::request::{DiskRequest, Lba};

/// Ordering policy for queued commands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// First-come first-served.
    #[default]
    Fifo,
    /// C-LOOK elevator: service the nearest request at or above the current
    /// head position; wrap to the lowest address when the sweep runs out.
    Elevator,
    /// Shortest seek first: always the request nearest the head, in either
    /// direction (NCQ-style greedy; can starve distant requests).
    Sstf,
}

/// A command queue with a selectable ordering policy.
#[derive(Debug, Clone)]
pub struct CommandQueue {
    policy: QueuePolicy,
    entries: VecDeque<DiskRequest>,
    peak: usize,
}

impl CommandQueue {
    /// Creates an empty queue.
    pub fn new(policy: QueuePolicy) -> Self {
        CommandQueue { policy, entries: VecDeque::new(), peak: 0 }
    }

    /// The ordering policy in effect.
    pub fn policy(&self) -> QueuePolicy {
        self.policy
    }

    /// Number of queued commands.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Highest occupancy ever observed (for reporting).
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Appends a command.
    pub fn push(&mut self, req: DiskRequest) {
        self.entries.push_back(req);
        self.peak = self.peak.max(self.entries.len());
    }

    /// Removes and returns the next command to service, given the current
    /// head block position.
    pub fn pop_next(&mut self, head: Lba) -> Option<DiskRequest> {
        if self.entries.is_empty() {
            return None;
        }
        match self.policy {
            QueuePolicy::Fifo => self.entries.pop_front(),
            QueuePolicy::Elevator => {
                // Nearest at-or-above head; else wrap to the lowest LBA.
                let mut best: Option<(usize, Lba)> = None;
                for (i, r) in self.entries.iter().enumerate() {
                    if r.lba >= head {
                        match best {
                            Some((_, lba)) if r.lba >= lba => {}
                            _ => best = Some((i, r.lba)),
                        }
                    }
                }
                let idx = match best {
                    Some((i, _)) => i,
                    None => {
                        // Wrap: take the smallest LBA.
                        self.entries
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, r)| r.lba)
                            .map(|(i, _)| i)
                            .expect("queue not empty")
                    }
                };
                self.entries.remove(idx)
            }
            QueuePolicy::Sstf => {
                let idx = self
                    .entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, r)| r.lba.abs_diff(head))
                    .map(|(i, _)| i)
                    .expect("queue not empty");
                self.entries.remove(idx)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;

    fn req(id: u64, lba: Lba) -> DiskRequest {
        DiskRequest::read(RequestId(id), lba, 8)
    }

    #[test]
    fn fifo_preserves_arrival_order() {
        let mut q = CommandQueue::new(QueuePolicy::Fifo);
        q.push(req(1, 500));
        q.push(req(2, 100));
        q.push(req(3, 900));
        assert_eq!(q.pop_next(0).unwrap().id, RequestId(1));
        assert_eq!(q.pop_next(0).unwrap().id, RequestId(2));
        assert_eq!(q.pop_next(0).unwrap().id, RequestId(3));
        assert!(q.pop_next(0).is_none());
    }

    #[test]
    fn elevator_sweeps_upward() {
        let mut q = CommandQueue::new(QueuePolicy::Elevator);
        q.push(req(1, 500));
        q.push(req(2, 100));
        q.push(req(3, 900));
        // Head at 200: nearest upward is 500, then 900, then wrap to 100.
        assert_eq!(q.pop_next(200).unwrap().lba, 500);
        assert_eq!(q.pop_next(500).unwrap().lba, 900);
        assert_eq!(q.pop_next(900).unwrap().lba, 100);
    }

    #[test]
    fn elevator_wraps_to_lowest() {
        let mut q = CommandQueue::new(QueuePolicy::Elevator);
        q.push(req(1, 10));
        q.push(req(2, 20));
        assert_eq!(q.pop_next(1000).unwrap().lba, 10);
        assert_eq!(q.pop_next(1000).unwrap().lba, 20);
    }

    #[test]
    fn sstf_picks_nearest_in_either_direction() {
        let mut q = CommandQueue::new(QueuePolicy::Sstf);
        q.push(req(1, 100));
        q.push(req(2, 480));
        q.push(req(3, 900));
        // Head at 500: nearest is 480 (behind), then 100 vs 900 from 480.
        assert_eq!(q.pop_next(500).unwrap().lba, 480);
        assert_eq!(q.pop_next(480).unwrap().lba, 100);
        assert_eq!(q.pop_next(100).unwrap().lba, 900);
    }

    #[test]
    fn sstf_total_head_travel_not_worse_than_fifo() {
        let lbas = [900u64, 50, 875, 60, 850, 70, 825];
        let travel = |policy: QueuePolicy| {
            let mut q = CommandQueue::new(policy);
            for (i, &l) in lbas.iter().enumerate() {
                q.push(req(i as u64, l));
            }
            let mut head = 0u64;
            let mut total = 0u64;
            while let Some(r) = q.pop_next(head) {
                total += r.lba.abs_diff(head);
                head = r.lba;
            }
            total
        };
        assert!(travel(QueuePolicy::Sstf) <= travel(QueuePolicy::Fifo));
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut q = CommandQueue::new(QueuePolicy::Fifo);
        assert!(q.is_empty());
        for i in 0..5 {
            q.push(req(i, i * 100));
        }
        q.pop_next(0);
        q.push(req(9, 0));
        assert_eq!(q.peak(), 5);
        assert_eq!(q.len(), 5);
    }

    #[test]
    fn elevator_full_drain_visits_everything_once() {
        let mut q = CommandQueue::new(QueuePolicy::Elevator);
        let lbas = [44u64, 3, 77, 12, 99, 51, 3];
        for (i, &l) in lbas.iter().enumerate() {
            q.push(req(i as u64, l));
        }
        let mut head = 50;
        let mut seen = Vec::new();
        while let Some(r) = q.pop_next(head) {
            head = r.lba;
            seen.push(r.id.0);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5, 6]);
    }
}
