//! Stream placement on disks.
//!
//! The paper distributes streams uniformly: each stream starts
//! `disksize/#streams` blocks after the previous one, so more streams cover
//! the same surface more densely (and inter-stream seeks shrink while the
//! covered span stays the whole disk).

use seqio_disk::Lba;

/// Uniform placement: `n` starting offsets spaced `total_blocks / n` apart.
///
/// # Panics
///
/// Panics if `n == 0` or `n > total_blocks`.
///
/// # Examples
///
/// ```
/// use seqio_workload::uniform_offsets;
///
/// let offs = uniform_offsets(1000, 4);
/// assert_eq!(offs, vec![0, 250, 500, 750]);
/// ```
pub fn uniform_offsets(total_blocks: u64, n: usize) -> Vec<Lba> {
    assert!(n > 0, "need at least one stream");
    assert!(n as u64 <= total_blocks, "more streams than blocks");
    let spacing = total_blocks / n as u64;
    (0..n as u64).map(|i| i * spacing).collect()
}

/// Fixed-interval placement (the paper's Figure 5 xdd setup accesses the
/// disk "at 1 GByte intervals"): offsets `i * interval_blocks`, clipped so
/// every stream has at least `min_run_blocks` of room before the next.
///
/// # Panics
///
/// Panics if the placement does not fit on the disk.
pub fn interval_offsets(
    total_blocks: u64,
    n: usize,
    interval_blocks: u64,
    min_run_blocks: u64,
) -> Vec<Lba> {
    assert!(n > 0, "need at least one stream");
    let last_start = (n as u64 - 1) * interval_blocks;
    assert!(
        last_start + min_run_blocks <= total_blocks,
        "{n} streams at interval {interval_blocks} overflow {total_blocks} blocks"
    );
    (0..n as u64).map(|i| i * interval_blocks).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_spacing_is_even() {
        let offs = uniform_offsets(100_000, 7);
        assert_eq!(offs.len(), 7);
        let spacing = offs[1] - offs[0];
        for w in offs.windows(2) {
            assert_eq!(w[1] - w[0], spacing);
        }
        assert!(offs.last().unwrap() + spacing <= 100_000 + spacing);
    }

    #[test]
    fn uniform_single_stream_at_zero() {
        assert_eq!(uniform_offsets(500, 1), vec![0]);
    }

    #[test]
    #[should_panic(expected = "at least one stream")]
    fn uniform_zero_streams_panics() {
        let _ = uniform_offsets(100, 0);
    }

    #[test]
    fn interval_layout() {
        // 1 GiB interval = 2_097_152 blocks.
        let offs = interval_offsets(200_000_000, 3, 2_097_152, 4096);
        assert_eq!(offs, vec![0, 2_097_152, 4_194_304]);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn interval_overflow_panics() {
        let _ = interval_offsets(1_000, 3, 900, 200);
    }
}
