//! The controller state machine.
//!
//! A [`Controller`] owns its attached [`Disk`]s and mediates every transfer
//! between them and the host. Three shared resources shape performance:
//!
//! 1. the per-port link (SATA, 150 MB/s) moving data off each disk;
//! 2. the aggregate controller/host bus (450 MB/s on the paper's BC4810);
//! 3. the controller's single firmware processor, whose per-request cost
//!    grows with the number of resident request buffers — the
//!    *buffer-management* effect behind the paper's Figure 12.
//!
//! Optionally the controller prefetches ahead of sequential reads into its
//! own extent cache (Figure 8).

use seqio_disk::{
    bytes_to_blocks, Direction, Disk, DiskOutput, DiskRequest, Lba, RequestId, BLOCK_SIZE,
};
use seqio_simcore::{SimDuration, SimTime};

use crate::cache::{ExtentCache, ExtentHit};
use crate::config::ControllerConfig;

/// A host-side request addressed to one port of the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostRequest {
    /// Caller-chosen identifier echoed back on completion.
    pub id: RequestId,
    /// Which attached disk the request targets.
    pub port: usize,
    /// First block.
    pub lba: Lba,
    /// Length in blocks.
    pub blocks: u64,
    /// Read or write.
    pub direction: Direction,
}

impl HostRequest {
    /// Convenience constructor for a read.
    pub fn read(id: RequestId, port: usize, lba: Lba, blocks: u64) -> Self {
        HostRequest { id, port, lba, blocks, direction: Direction::Read }
    }

    /// Convenience constructor for a write.
    pub fn write(id: RequestId, port: usize, lba: Lba, blocks: u64) -> Self {
        HostRequest { id, port, lba, blocks, direction: Direction::Write }
    }

    /// Transfer size in bytes.
    pub fn bytes(&self) -> u64 {
        self.blocks * BLOCK_SIZE
    }

    /// One past the last block.
    pub fn end(&self) -> Lba {
        self.lba + self.blocks
    }
}

/// Opaque token the caller must hand back via [`Controller::on_event`] at
/// the indicated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlEvent {
    /// A disk's mechanical operation finished.
    DiskOpFinished {
        /// Port whose disk finished.
        port: usize,
    },
    /// A disk-level request's data is ready at the drive.
    DiskComplete {
        /// Port whose disk completed a request.
        port: usize,
        /// The internal disk-request id.
        disk_req: RequestId,
        /// Whether the drive reported a transient read error (fault
        /// injection); the controller retries with backoff.
        error: bool,
    },
    /// A previously scheduled retry of an errored fetch is due.
    RetryFetch {
        /// Port whose fetch is retried.
        port: usize,
        /// The internal disk-request id (its in-flight slot is still held).
        disk_req: RequestId,
    },
}

/// Output of [`Controller::submit`] / [`Controller::on_event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlOutput {
    /// Host request `id` is complete at `at`.
    Complete {
        /// The host request identifier.
        id: RequestId,
        /// Payload bytes delivered.
        bytes: u64,
        /// Completion instant.
        at: SimTime,
        /// Retry attempts the serving fetch went through (fault path).
        retries: u32,
        /// Whether the serving fetch overran the per-request deadline.
        timed_out: bool,
    },
    /// Call [`Controller::on_event`] with `event` at `at`.
    Event {
        /// When to deliver the event.
        at: SimTime,
        /// The event token.
        event: CtrlEvent,
    },
}

/// Behaviour counters for one controller.
#[derive(Debug, Clone, Copy, Default)]
pub struct ControllerMetrics {
    /// Host requests accepted.
    pub host_requests: u64,
    /// Reads served from the controller's extent cache.
    pub cache_hits: u64,
    /// Reads that attached to an in-flight prefetch.
    pub inflight_hits: u64,
    /// Disk-level fetch operations issued.
    pub disk_fetches: u64,
    /// Bytes delivered to the host.
    pub bytes_to_host: u64,
    /// Bytes pulled over the per-port links.
    pub bytes_from_disks: u64,
    /// Highest number of simultaneously resident host requests.
    pub peak_outstanding: usize,
    /// Speculative (asynchronous) controller prefetches issued.
    pub async_prefetches: u64,
}

/// Per-port fault-handling counters (all zero without fault injection).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortFaultCounters {
    /// Errored disk completions observed on this port.
    pub errors: u64,
    /// Retries issued for errored fetches.
    pub retries: u64,
    /// Fetches whose total service time exceeded the per-request deadline.
    pub timeouts: u64,
}

#[derive(Debug)]
struct InflightFetch {
    port: usize,
    lba: Lba,
    blocks: u64,
    direction: Direction,
    /// When the fetch was first issued (drives the per-request deadline).
    started: SimTime,
    /// Error retries performed so far.
    attempts: u32,
    /// Host requests served by this fetch (empty for speculative
    /// controller prefetches).
    waiters: Vec<HostRequest>,
}

/// A disk controller with its attached disks.
#[derive(Debug)]
pub struct Controller {
    cfg: ControllerConfig,
    disks: Vec<Disk>,
    cache: ExtentCache,
    link_free: Vec<SimTime>,
    bus_free: SimTime,
    cpu_free: SimTime,
    outstanding: usize,
    /// Bytes of host-request buffers currently resident (drives the
    /// buffer-management pressure term).
    resident_bytes: u64,
    /// Slab of in-flight disk fetches, indexed by the disk-level
    /// `RequestId` (slot indices are reused via `inflight_free`, which is
    /// safe because a disk id is only ever visible while its fetch is in
    /// flight). A `Vec` keeps the in-flight attach scan in deterministic
    /// slot order and off the hash path entirely.
    inflight: Vec<Option<InflightFetch>>,
    inflight_free: Vec<usize>,
    /// Recycled waiter vectors, so steady-state fetches allocate nothing.
    waiter_pool: Vec<Vec<HostRequest>>,
    /// Scratch for collecting disk outputs inside one call.
    disk_scratch: Vec<DiskOutput>,
    /// Per-port error/retry/timeout counters (fault injection).
    port_faults: Vec<PortFaultCounters>,
    metrics: ControllerMetrics,
}

impl Controller {
    /// Builds a controller owning `disks` (one per port, in port order).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or the disk count does not
    /// match `cfg.ports`.
    pub fn new(cfg: ControllerConfig, disks: Vec<Disk>) -> Self {
        cfg.validate().expect("invalid controller config");
        assert_eq!(disks.len(), cfg.ports, "one disk per configured port");
        let cache = ExtentCache::new(cfg.cache_bytes);
        let ports = cfg.ports;
        Controller {
            cfg,
            disks,
            cache,
            link_free: vec![SimTime::ZERO; ports],
            bus_free: SimTime::ZERO,
            cpu_free: SimTime::ZERO,
            outstanding: 0,
            resident_bytes: 0,
            inflight: Vec::new(),
            inflight_free: Vec::new(),
            waiter_pool: Vec::new(),
            disk_scratch: Vec::new(),
            port_faults: vec![PortFaultCounters::default(); ports],
            metrics: ControllerMetrics::default(),
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Immutable access to an attached disk (for placement / capacity).
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn disk(&self, port: usize) -> &Disk {
        &self.disks[port]
    }

    /// Behaviour counters.
    pub fn metrics(&self) -> ControllerMetrics {
        self.metrics
    }

    /// Mutable access to an attached disk — used by the node layer to
    /// install per-disk fault schedules before the run starts.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn disk_mut(&mut self, port: usize) -> &mut Disk {
        &mut self.disks[port]
    }

    /// Per-port error/retry/timeout counters (all zero without fault
    /// injection).
    pub fn fault_counters(&self) -> &[PortFaultCounters] {
        &self.port_faults
    }

    /// Prefetch-cache counters (evictions, wasted bytes).
    pub fn cache_evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Prefetched bytes reclaimed before any request consumed them.
    pub fn cache_wasted_bytes(&self) -> u64 {
        self.cache.wasted_bytes()
    }

    /// Requests currently resident in the controller.
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Submits a host request.
    ///
    /// Convenience wrapper over [`submit_into`](Controller::submit_into)
    /// that allocates a fresh output vector per call; the simulation hot
    /// paths use the `_into` variant with a reusable scratch buffer.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range or the request is invalid for the
    /// target disk.
    pub fn submit(&mut self, now: SimTime, req: HostRequest) -> Vec<CtrlOutput> {
        let mut out = Vec::new();
        self.submit_into(now, req, &mut out);
        out
    }

    /// Submits a host request, appending outputs to `out` instead of
    /// allocating.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range or the request is invalid for the
    /// target disk.
    pub fn submit_into(&mut self, now: SimTime, req: HostRequest, out: &mut Vec<CtrlOutput>) {
        assert!(req.port < self.cfg.ports, "port {} out of range", req.port);
        self.metrics.host_requests += 1;
        self.outstanding += 1;
        self.resident_bytes += req.bytes();
        self.metrics.peak_outstanding = self.metrics.peak_outstanding.max(self.outstanding);
        match req.direction {
            Direction::Write => {
                self.cache.invalidate(req.port, req.lba, req.blocks);
                self.start_fetch(now, req.port, req.lba, req.blocks, req.direction, Some(req), out);
            }
            Direction::Read => {
                if let Some(hit) = self.cache.lookup_extent(req.port, req.lba, req.blocks, now) {
                    self.metrics.cache_hits += 1;
                    let at = self.charge_completion(now, req.bytes());
                    let port = req.port;
                    self.finish(req, at, 0, false, out);
                    self.maybe_async_prefetch(now, port, hit, out);
                } else if let Some(f) = self.inflight.iter_mut().flatten().find(|f| {
                    f.port == req.port && f.lba <= req.lba && req.end() <= f.lba + f.blocks
                }) {
                    self.metrics.inflight_hits += 1;
                    f.waiters.push(req);
                } else {
                    let extent = self.plan_extent(&req);
                    let port = req.port;
                    let lba = req.lba;
                    self.start_fetch(now, port, lba, extent, req.direction, Some(req), out);
                    // Prefetch the extent after the missed one as well: a
                    // sequential reader is about to want it. Under memory
                    // pressure these speculative fetches are exactly the
                    // wasted work that collapses Figure 8's large-prefetch
                    // configurations.
                    self.maybe_async_prefetch(
                        now,
                        port,
                        ExtentHit { start: lba, blocks: extent, touched: extent },
                        out,
                    );
                }
            }
        }
    }

    /// Speculative read-ahead: once a stream has consumed half of its
    /// cached extent, fetch the next extent in the background so a steady
    /// reader never stalls (and so, under memory pressure, the wasted
    /// prefetches are what collapse throughput — the paper's Figure 8).
    fn maybe_async_prefetch(
        &mut self,
        now: SimTime,
        port: usize,
        hit: ExtentHit,
        out: &mut Vec<CtrlOutput>,
    ) {
        // Trigger once a quarter of the extent is consumed, so the next
        // fetch overlaps the remaining consumption.
        if self.cfg.prefetch_bytes == 0 || hit.touched * 4 < hit.blocks {
            return;
        }
        let next = hit.start + hit.blocks;
        let disk_end = self.disks[port].geometry().total_blocks();
        if next >= disk_end || self.cache.contains(port, next) {
            return;
        }
        if self
            .inflight
            .iter()
            .flatten()
            .any(|f| f.port == port && f.lba <= next && next < f.lba + f.blocks)
        {
            return;
        }
        let blocks = bytes_to_blocks(self.cfg.prefetch_bytes).max(1).min(disk_end - next);
        self.metrics.async_prefetches += 1;
        self.start_fetch(now, port, next, blocks, Direction::Read, None, out);
    }

    /// Delivers a previously scheduled [`CtrlEvent`].
    ///
    /// Convenience wrapper over [`on_event_into`](Controller::on_event_into).
    pub fn on_event(&mut self, now: SimTime, ev: CtrlEvent) -> Vec<CtrlOutput> {
        let mut out = Vec::new();
        self.on_event_into(now, ev, &mut out);
        out
    }

    /// Delivers a previously scheduled [`CtrlEvent`], appending outputs to
    /// `out` instead of allocating.
    pub fn on_event_into(&mut self, now: SimTime, ev: CtrlEvent, out: &mut Vec<CtrlOutput>) {
        match ev {
            CtrlEvent::DiskOpFinished { port } => {
                let mut scratch = std::mem::take(&mut self.disk_scratch);
                self.disks[port].on_op_finished_into(now, &mut scratch);
                self.map_disk_outputs(port, &mut scratch, out);
                self.disk_scratch = scratch;
            }
            CtrlEvent::DiskComplete { port, disk_req, error } => {
                let slot = disk_req.0 as usize;
                if error {
                    // Transient read error: retry with exponential backoff
                    // while attempts and the per-request deadline allow;
                    // otherwise fall through and let the drive's internal
                    // recovery complete the request (its data is staged).
                    let fetch = self.inflight[slot]
                        .as_mut()
                        .expect("errored completion for unknown disk request");
                    assert_eq!(fetch.port, port, "completion port mismatch");
                    self.port_faults[port].errors += 1;
                    let within_deadline = self.cfg.request_timeout == SimDuration::ZERO
                        || now.duration_since(fetch.started) < self.cfg.request_timeout;
                    if fetch.attempts < self.cfg.max_retries && within_deadline {
                        fetch.attempts += 1;
                        self.port_faults[port].retries += 1;
                        let shift = (fetch.attempts - 1).min(20);
                        let backoff = SimDuration::from_nanos(
                            self.cfg.retry_backoff.as_nanos().saturating_mul(1 << shift),
                        );
                        out.push(CtrlOutput::Event {
                            at: now + backoff,
                            event: CtrlEvent::RetryFetch { port, disk_req },
                        });
                        return;
                    }
                }
                let mut fetch =
                    self.inflight[slot].take().expect("completion for unknown disk request");
                self.inflight_free.push(slot);
                assert_eq!(fetch.port, port, "completion port mismatch");
                let timed_out = self.cfg.request_timeout > SimDuration::ZERO
                    && now.duration_since(fetch.started) > self.cfg.request_timeout;
                if timed_out {
                    self.port_faults[port].timeouts += 1;
                }
                let retries = fetch.attempts;
                self.metrics.bytes_from_disks += fetch.blocks * BLOCK_SIZE;
                // Move the extent over the port link before anything is
                // visible to the host.
                let link_time = self.transfer_time(fetch.blocks * BLOCK_SIZE, self.cfg.link_rate);
                let link_end = self.link_free[port].max(now) + link_time;
                self.link_free[port] = link_end;
                // Reads land in the controller cache when prefetching.
                if fetch.direction == Direction::Read && self.cfg.cache_bytes > 0 {
                    self.cache.insert(port, fetch.lba, fetch.blocks, now);
                }
                for w in fetch.waiters.drain(..) {
                    let at = self.charge_completion(link_end, w.bytes());
                    self.finish(w, at, retries, timed_out, out);
                }
                self.waiter_pool.push(fetch.waiters);
            }
            CtrlEvent::RetryFetch { port, disk_req } => {
                let slot = disk_req.0 as usize;
                let f = self.inflight[slot].as_ref().expect("retry for unknown disk request");
                assert_eq!(f.port, port, "retry port mismatch");
                let retry = DiskRequest {
                    id: disk_req,
                    lba: f.lba,
                    blocks: f.blocks,
                    direction: f.direction,
                };
                let mut scratch = std::mem::take(&mut self.disk_scratch);
                self.disks[port].submit_into(now, retry, &mut scratch);
                self.map_disk_outputs(port, &mut scratch, out);
                self.disk_scratch = scratch;
            }
        }
    }

    /// Extent size (blocks) to fetch for a read miss: the request itself,
    /// extended to the controller's prefetch size and clipped to the disk.
    fn plan_extent(&self, req: &HostRequest) -> u64 {
        let want = bytes_to_blocks(self.cfg.prefetch_bytes).max(req.blocks);
        let disk_end = self.disks[req.port].geometry().total_blocks();
        // Out-of-range requests are rejected by the disk's own validation;
        // saturate here so the error message comes from there.
        want.min(disk_end.saturating_sub(req.lba)).max(req.blocks)
    }

    #[allow(clippy::too_many_arguments)]
    fn start_fetch(
        &mut self,
        now: SimTime,
        port: usize,
        lba: Lba,
        extent_blocks: u64,
        direction: Direction,
        waiter: Option<HostRequest>,
        out: &mut Vec<CtrlOutput>,
    ) {
        let mut waiters = self.waiter_pool.pop().unwrap_or_default();
        waiters.extend(waiter);
        let slot = match self.inflight_free.pop() {
            Some(s) => s,
            None => {
                self.inflight.push(None);
                self.inflight.len() - 1
            }
        };
        let disk_id = RequestId(slot as u64);
        self.metrics.disk_fetches += 1;
        let disk_req = DiskRequest { id: disk_id, lba, blocks: extent_blocks, direction };
        self.inflight[slot] = Some(InflightFetch {
            port,
            lba,
            blocks: extent_blocks,
            direction,
            started: now,
            attempts: 0,
            waiters,
        });
        let mut scratch = std::mem::take(&mut self.disk_scratch);
        self.disks[port].submit_into(now, disk_req, &mut scratch);
        self.map_disk_outputs(port, &mut scratch, out);
        self.disk_scratch = scratch;
    }

    fn map_disk_outputs(
        &mut self,
        port: usize,
        disk_outs: &mut Vec<DiskOutput>,
        out: &mut Vec<CtrlOutput>,
    ) {
        for o in disk_outs.drain(..) {
            match o {
                DiskOutput::Complete { id, at, error, .. } => {
                    out.push(CtrlOutput::Event {
                        at,
                        event: CtrlEvent::DiskComplete { port, disk_req: id, error },
                    });
                }
                DiskOutput::OpFinished { at } => {
                    out.push(CtrlOutput::Event { at, event: CtrlEvent::DiskOpFinished { port } });
                }
            }
        }
    }

    /// Charges firmware CPU and the shared host bus for delivering `bytes`
    /// of one host request, starting no earlier than `ready`; returns the
    /// completion instant.
    fn charge_completion(&mut self, ready: SimTime, bytes: u64) -> SimTime {
        let cpu_time = self.cfg.cpu_fixed
            + self.cfg.cpu_per_mib.mul_f64(bytes as f64 / (1024.0 * 1024.0))
            + self.cfg.cpu_per_resident_mib.mul_f64(self.resident_bytes as f64 / (1024.0 * 1024.0));
        let cpu_end = self.cpu_free.max(ready) + cpu_time;
        self.cpu_free = cpu_end;
        let bus_end =
            self.bus_free.max(cpu_end) + self.transfer_time(bytes, self.cfg.aggregate_rate);
        self.bus_free = bus_end;
        bus_end
    }

    fn finish(
        &mut self,
        req: HostRequest,
        at: SimTime,
        retries: u32,
        timed_out: bool,
        out: &mut Vec<CtrlOutput>,
    ) {
        self.outstanding -= 1;
        self.resident_bytes -= req.bytes();
        self.metrics.bytes_to_host += req.bytes();
        out.push(CtrlOutput::Complete { id: req.id, bytes: req.bytes(), at, retries, timed_out });
    }

    fn transfer_time(&self, bytes: u64, rate: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / rate as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio_disk::{CacheConfig, DiskConfig};
    use seqio_simcore::units::{KIB, MIB};
    use seqio_simcore::EventQueue;

    fn make(cfg: ControllerConfig, disk_cfg: DiskConfig) -> Controller {
        let disks = (0..cfg.ports).map(|p| Disk::new(disk_cfg.clone(), 42 + p as u64)).collect();
        Controller::new(cfg, disks)
    }

    /// Runs requests through a controller with a real event loop.
    /// `schedule` holds (submit time, request); returns completions
    /// (id -> completion time) in completion order.
    fn run(
        ctrl: &mut Controller,
        schedule: Vec<(SimTime, HostRequest)>,
    ) -> Vec<(RequestId, SimTime)> {
        #[derive(Debug)]
        enum Ev {
            Submit(HostRequest),
            Ctrl(CtrlEvent),
        }
        let mut q = EventQueue::new();
        for (at, r) in schedule {
            q.push(at, Ev::Submit(r));
        }
        let mut done = Vec::new();
        while let Some((now, ev)) = q.pop() {
            let outs = match ev {
                Ev::Submit(r) => ctrl.submit(now, r),
                Ev::Ctrl(e) => ctrl.on_event(now, e),
            };
            for o in outs {
                match o {
                    CtrlOutput::Complete { id, at, .. } => done.push((id, at)),
                    CtrlOutput::Event { at, event } => q.push(at, Ev::Ctrl(event)),
                }
            }
        }
        done.sort_by_key(|&(_, at)| at);
        done
    }

    #[test]
    fn single_read_completes() {
        let mut c = make(ControllerConfig::single_port(), DiskConfig::wd800jd());
        let done = run(&mut c, vec![(SimTime::ZERO, HostRequest::read(RequestId(1), 0, 0, 128))]);
        assert_eq!(done.len(), 1);
        let (id, at) = done[0];
        assert_eq!(id, RequestId(1));
        let ms = at.as_millis_f64();
        assert!(ms > 0.3 && ms < 40.0, "64K read took {ms}ms");
        assert_eq!(c.outstanding(), 0);
        assert_eq!(c.metrics().bytes_to_host, 64 * KIB);
    }

    #[test]
    fn link_serializes_per_port() {
        // Two large cache-hit-free reads on one port: the second completes
        // strictly after the first's link transfer.
        let mut c = make(ControllerConfig::single_port(), DiskConfig::wd800jd());
        let done = run(
            &mut c,
            vec![
                (SimTime::ZERO, HostRequest::read(RequestId(1), 0, 0, 2048)),
                (SimTime::ZERO, HostRequest::read(RequestId(2), 0, 10_000_000, 2048)),
            ],
        );
        assert_eq!(done.len(), 2);
        assert!(done[1].1 > done[0].1);
    }

    #[test]
    fn ports_run_in_parallel_but_share_bus() {
        let cfg = ControllerConfig { ports: 2, ..ControllerConfig::bc4810() };
        let mut c = make(cfg, DiskConfig::wd800jd());
        let done = run(
            &mut c,
            vec![
                (SimTime::ZERO, HostRequest::read(RequestId(1), 0, 0, 2048)),
                (SimTime::ZERO, HostRequest::read(RequestId(2), 1, 0, 2048)),
            ],
        );
        assert_eq!(done.len(), 2);
        // Both finish within a small window of each other (parallel disks),
        // but not at the identical instant (shared bus serializes delivery).
        let gap = done[1].1.duration_since(done[0].1);
        assert!(gap < SimDuration::from_millis(30), "gap {gap}");
        assert!(gap > SimDuration::ZERO);
    }

    #[test]
    fn controller_prefetch_serves_sequential_follow_ups() {
        let cfg = ControllerConfig::single_port().with_prefetch(128 * MIB, MIB);
        let mut c = make(cfg, DiskConfig::wd800jd());
        // First 64K read triggers a 1 MiB fetch; the next sequential read
        // must be a controller cache hit (no second disk fetch).
        let done = run(
            &mut c,
            vec![
                (SimTime::ZERO, HostRequest::read(RequestId(1), 0, 0, 128)),
                (
                    SimTime::ZERO + SimDuration::from_millis(100),
                    HostRequest::read(RequestId(2), 0, 128, 128),
                ),
            ],
        );
        assert_eq!(done.len(), 2);
        // One demand fetch plus speculative prefetches of later extents.
        assert!(c.metrics().disk_fetches >= 1);
        assert!(c.metrics().async_prefetches >= 1, "miss should trigger speculative prefetch");
        assert_eq!(c.metrics().cache_hits, 1);
        // The hit is fast: well under a mechanical latency.
        let hit_latency = done[1].1.duration_since(SimTime::ZERO + SimDuration::from_millis(100));
        assert!(hit_latency < SimDuration::from_millis(2), "hit took {hit_latency}");
    }

    #[test]
    fn inflight_prefetch_attaches_waiters() {
        let cfg = ControllerConfig::single_port().with_prefetch(128 * MIB, 4 * MIB);
        let mut c = make(cfg, DiskConfig::wd800jd());
        // Second request arrives while the 4 MiB fetch is still in flight.
        let done = run(
            &mut c,
            vec![
                (SimTime::ZERO, HostRequest::read(RequestId(1), 0, 0, 128)),
                (
                    SimTime::ZERO + SimDuration::from_micros(200),
                    HostRequest::read(RequestId(2), 0, 128, 128),
                ),
            ],
        );
        assert_eq!(done.len(), 2);
        // One demand fetch (plus any speculative ones); the second request
        // attached to the in-flight demand fetch.
        assert_eq!(c.metrics().inflight_hits, 1);
    }

    #[test]
    fn prefetch_thrash_with_many_streams() {
        // 8 streams x 2 MiB prefetch: with an 8 MiB controller cache extents
        // are mostly reclaimed before reuse; with a 64 MiB cache (all streams
        // fit) nearly every follow-up request hits. This is the Figure 8
        // crossover.
        let run_case = |cache_mib: u64| {
            let cfg = ControllerConfig::single_port().with_prefetch(cache_mib * MIB, 2 * MIB);
            let mut c = make(cfg, DiskConfig::wd800jd());
            let spacing = c.disk(0).geometry().total_blocks() / 8;
            let mut sched = Vec::new();
            let mut t = SimTime::ZERO;
            for round in 0..4u64 {
                for s in 0..8u64 {
                    sched.push((
                        t,
                        HostRequest::read(
                            RequestId(round * 8 + s),
                            0,
                            s * spacing + round * 128,
                            128,
                        ),
                    ));
                    t += SimDuration::from_millis(40);
                }
            }
            let done = run(&mut c, sched);
            assert_eq!(done.len(), 32);
            (c.metrics().cache_hits, c.cache_evictions())
        };
        let (thrash_hits, thrash_evictions) = run_case(8);
        let (ample_hits, _) = run_case(64);
        assert!(thrash_evictions > 0);
        assert!(
            ample_hits >= 20,
            "ample cache should hit on nearly all 24 follow-ups, got {ample_hits}"
        );
        assert!(
            thrash_hits < ample_hits / 2,
            "thrashing cache ({thrash_hits}) should hit far less than ample ({ample_hits})"
        );
    }

    #[test]
    fn cpu_pressure_grows_with_outstanding() {
        // Complete one request with nothing else resident, then another with
        // many requests resident; the second pays more CPU time.
        let mut quiet = make(ControllerConfig::single_port(), DiskConfig::wd800jd());
        let d1 = run(&mut quiet, vec![(SimTime::ZERO, HostRequest::read(RequestId(1), 0, 0, 128))]);

        let mut busy = make(ControllerConfig::single_port(), DiskConfig::wd800jd());
        let mut sched = vec![(SimTime::ZERO, HostRequest::read(RequestId(1), 0, 0, 128))];
        for i in 0..64u64 {
            sched.push((
                SimTime::ZERO,
                HostRequest::read(RequestId(100 + i), 0, 10_000_000 + i * 2_000_000, 128),
            ));
        }
        let d2 = run(&mut busy, sched);
        let quiet_first = d1[0].1;
        let busy_first = d2[0].1;
        assert!(busy_first > quiet_first, "pressure must delay completion");
    }

    #[test]
    fn write_then_read_misses_controller_cache() {
        let cfg = ControllerConfig::single_port().with_prefetch(128 * MIB, MIB);
        let mut c = make(cfg, DiskConfig::wd800jd());
        let done = run(
            &mut c,
            vec![
                (SimTime::ZERO, HostRequest::read(RequestId(1), 0, 0, 128)),
                (
                    SimTime::ZERO + SimDuration::from_millis(100),
                    HostRequest::write(RequestId(2), 0, 0, 128),
                ),
                (
                    SimTime::ZERO + SimDuration::from_millis(200),
                    HostRequest::read(RequestId(3), 0, 128, 128),
                ),
            ],
        );
        assert_eq!(done.len(), 3);
        // The post-write read must not be served from the (invalidated)
        // cache region the write touched.
        assert!(c.metrics().disk_fetches >= 3);
    }

    #[test]
    fn transient_errors_are_retried_until_exhausted() {
        use seqio_simcore::FaultPlan;
        let disk_cfg = DiskConfig::wd800jd().with_cache(CacheConfig::disabled());
        let mut c = make(ControllerConfig::single_port(), disk_cfg);
        // Every media read errors; with no deadline the controller burns
        // all `max_retries` before completing via drive-internal recovery.
        let plan = FaultPlan::new().read_errors(0, 1.0);
        c.disk_mut(0).install_faults(plan.disk(0).unwrap().clone(), 5);
        let done = run(&mut c, vec![(SimTime::ZERO, HostRequest::read(RequestId(1), 0, 0, 128))]);
        assert_eq!(done.len(), 1, "request must still complete");
        let f = c.fault_counters()[0];
        let max = c.config().max_retries as u64;
        assert_eq!(f.retries, max);
        assert_eq!(f.errors, max + 1, "initial attempt plus every retry errors");
        assert_eq!(f.timeouts, 0, "deadline disabled");
        assert_eq!(c.outstanding(), 0);
    }

    #[test]
    fn deadline_stops_retries_and_counts_timeout() {
        use seqio_simcore::FaultPlan;
        let disk_cfg = DiskConfig::wd800jd().with_cache(CacheConfig::disabled());
        let mut cfg = ControllerConfig::single_port();
        cfg.request_timeout = SimDuration::from_millis(1);
        let mut c = make(cfg, disk_cfg);
        let plan = FaultPlan::new().read_errors(0, 1.0);
        c.disk_mut(0).install_faults(plan.disk(0).unwrap().clone(), 5);
        let done = run(&mut c, vec![(SimTime::ZERO, HostRequest::read(RequestId(1), 0, 0, 128))]);
        assert_eq!(done.len(), 1);
        let f = c.fault_counters()[0];
        // A cold read takes several ms, so the first errored completion is
        // already past the 1ms deadline: no retries, one timeout.
        assert_eq!(f.errors, 1);
        assert_eq!(f.retries, 0);
        assert_eq!(f.timeouts, 1);
    }

    #[test]
    #[should_panic(expected = "port")]
    fn bad_port_panics() {
        let mut c = make(ControllerConfig::single_port(), DiskConfig::wd800jd());
        let _ = c.submit(SimTime::ZERO, HostRequest::read(RequestId(1), 5, 0, 8));
    }

    #[test]
    fn disabled_disk_cache_still_works_end_to_end() {
        let disk_cfg = DiskConfig::wd800jd().with_cache(CacheConfig::disabled());
        let mut c = make(ControllerConfig::single_port(), disk_cfg);
        let done = run(&mut c, vec![(SimTime::ZERO, HostRequest::read(RequestId(1), 0, 0, 128))]);
        assert_eq!(done.len(), 1);
    }
}
