//! Offline stub of `criterion`.
//!
//! Exposes the macro/entry-point surface used by `seqio-bench`'s micro
//! benchmarks (`criterion_group!`/`criterion_main!`, `Criterion`,
//! `bench_function`, `benchmark_group`, `iter`, `iter_batched`,
//! `BatchSize`). Instead of statistical sampling it times a fixed wall
//! budget per benchmark and reports mean ns/iter — enough to spot an
//! order-of-magnitude regression in CI without crates.io access.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measuring time per benchmark (after a short warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(120);
const WARMUP_BUDGET: Duration = Duration::from_millis(30);

/// Benchmark driver handed to `criterion_group!` targets.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(name, &mut f);
        self
    }

    /// Starts a named group; the stub only namespaces the output.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.to_string() }
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_named(&full, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// How `iter_batched` amortizes setup; the stub treats all sizes alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine output; setup per small batch.
    SmallInput,
    /// Large routine output.
    LargeInput,
    /// Fresh setup every iteration.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` repeatedly until the measuring budget is consumed.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let warm_until = Instant::now() + WARMUP_BUDGET;
        while Instant::now() < warm_until {
            black_box(routine());
        }
        let start = Instant::now();
        let stop = start + MEASURE_BUDGET;
        let mut iters = 0u64;
        while Instant::now() < stop {
            black_box(routine());
            iters += 1;
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Times `routine` over inputs produced by `setup`, excluding setup
    /// cost from the per-iteration estimate only approximately (the stub
    /// subtracts nothing; setup here is cheap relative to routines).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warm_until = Instant::now() + WARMUP_BUDGET;
        while Instant::now() < warm_until {
            let input = setup();
            black_box(routine(input));
        }
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        while measured < MEASURE_BUDGET {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            measured += t0.elapsed();
            iters += 1;
        }
        self.elapsed = measured;
        self.iters = iters;
    }
}

fn run_named<F: FnMut(&mut Bencher)>(name: &str, f: &mut F) {
    let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<40} (no iterations recorded)");
        return;
    }
    let ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    println!("{name:<40} {ns:>14.0} ns/iter ({} iters)", b.iters);
}

/// Bundles benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running every listed group (ignores harness CLI flags).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_progress() {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert!(b.iters > 0);
        assert!(b.elapsed >= MEASURE_BUDGET);
    }

    #[test]
    fn iter_batched_consumes_setup_values() {
        let mut b = Bencher { iters: 0, elapsed: Duration::ZERO };
        b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters > 0);
    }
}
