//! Request classification (paper §4.1).
//!
//! Requests that do not match an already-tracked stream land here. The
//! classifier allocates a small bitmap around the request's block and counts
//! distinct blocks touched in that region; once the count crosses the
//! threshold, the region is promoted to a sequential stream. Everything else
//! is forwarded directly to the disk.

use std::collections::{BTreeMap, HashMap};

use seqio_simcore::SimTime;

use crate::bitmap::{Lba, RegionBitmap};

/// Verdict for one observed request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Classification {
    /// The region just crossed the threshold: promote to a stream.
    Detected,
    /// Not (yet) sequential: forward directly to the disk.
    Pending,
}

#[derive(Debug)]
struct Region {
    bitmap: RegionBitmap,
    last_set: SimTime,
}

/// Bitmap-based sequential-stream detector.
#[derive(Debug)]
pub struct Classifier {
    offset_blocks: u64,
    threshold_blocks: u64,
    /// Per disk, regions keyed by their base block.
    regions: HashMap<usize, BTreeMap<Lba, Region>>,
    region_count: usize,
    detections: u64,
    memory_bytes: usize,
}

impl Classifier {
    /// Creates a classifier with the given detection window (each side of
    /// the first request) and distinct-block threshold.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(offset_blocks: u64, threshold_blocks: u64) -> Self {
        assert!(offset_blocks > 0, "detection window must be positive");
        assert!(threshold_blocks > 0, "detection threshold must be positive");
        Classifier {
            offset_blocks,
            threshold_blocks,
            regions: HashMap::new(),
            region_count: 0,
            detections: 0,
            memory_bytes: 0,
        }
    }

    /// Streams detected so far.
    pub fn detections(&self) -> u64 {
        self.detections
    }

    /// Live detection regions.
    pub fn region_count(&self) -> usize {
        self.region_count
    }

    /// Approximate memory held by detection bitmaps — the quantity the
    /// paper bounds by allocating small per-region bitmaps on demand.
    pub fn memory_bytes(&self) -> usize {
        self.memory_bytes
    }

    /// Observes a request that matched no stream. On `Detected` the region
    /// is consumed (the caller creates the stream).
    pub fn observe(&mut self, disk: usize, lba: Lba, blocks: u64, now: SimTime) -> Classification {
        let disk_regions = self.regions.entry(disk).or_default();
        // Find the region with the greatest base <= lba and check coverage.
        if let Some((&base, region)) = disk_regions.range_mut(..=lba).next_back() {
            if region.bitmap.covers(lba) {
                region.bitmap.set_range(lba, blocks);
                region.last_set = now;
                if region.bitmap.set_count() >= self.threshold_blocks {
                    let r = disk_regions.remove(&base).expect("region present");
                    self.region_count -= 1;
                    self.memory_bytes -= r.bitmap.memory_bytes();
                    self.detections += 1;
                    return Classification::Detected;
                }
                return Classification::Pending;
            }
        }
        // Allocate a fresh region around the request.
        let base = lba.saturating_sub(self.offset_blocks);
        let len = (lba - base) + blocks + self.offset_blocks;
        let mut bitmap = RegionBitmap::new(base, len);
        bitmap.set_range(lba, blocks);
        let detected = bitmap.set_count() >= self.threshold_blocks;
        if detected {
            // A single huge request can qualify on its own.
            self.detections += 1;
            return Classification::Detected;
        }
        self.memory_bytes += bitmap.memory_bytes();
        self.region_count += 1;
        disk_regions.insert(base, Region { bitmap, last_set: now });
        Classification::Pending
    }

    /// Drops regions that have not been touched since `cutoff` (the paper's
    /// periodic reclamation of hash entries for never-promoted regions).
    /// Returns how many were reclaimed.
    pub fn gc(&mut self, cutoff: SimTime) -> usize {
        let mut reclaimed = 0;
        let (memory_bytes, region_count) = (&mut self.memory_bytes, &mut self.region_count);
        for regions in self.regions.values_mut() {
            regions.retain(|_, r| {
                let keep = r.last_set >= cutoff;
                if !keep {
                    *memory_bytes -= r.bitmap.memory_bytes();
                    *region_count -= 1;
                    reclaimed += 1;
                }
                keep
            });
        }
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_nanos(ms * 1_000_000)
    }

    /// 64 KiB requests (128 blocks), threshold under two requests' worth.
    fn clf() -> Classifier {
        Classifier::new(4096, 192)
    }

    #[test]
    fn sequential_requests_detected_on_second() {
        let mut c = clf();
        assert_eq!(c.observe(0, 0, 128, t(0)), Classification::Pending);
        assert_eq!(c.observe(0, 128, 128, t(1)), Classification::Detected);
        assert_eq!(c.detections(), 1);
        assert_eq!(c.region_count(), 0, "detected region consumed");
    }

    #[test]
    fn scattered_requests_stay_pending() {
        let mut c = clf();
        for i in 0..20u64 {
            // Far apart: each allocates its own region, none crosses threshold.
            assert_eq!(c.observe(0, i * 1_000_000, 128, t(i)), Classification::Pending);
        }
        assert_eq!(c.detections(), 0);
        assert_eq!(c.region_count(), 20);
    }

    #[test]
    fn duplicate_blocks_do_not_accumulate() {
        let mut c = clf();
        for i in 0..10 {
            assert_eq!(
                c.observe(0, 0, 128, t(i)),
                Classification::Pending,
                "re-reading the same 64K must never trip detection"
            );
        }
    }

    #[test]
    fn disks_are_independent() {
        let mut c = clf();
        assert_eq!(c.observe(0, 0, 128, t(0)), Classification::Pending);
        assert_eq!(c.observe(1, 128, 128, t(1)), Classification::Pending);
        assert_eq!(c.observe(1, 256, 128, t(2)), Classification::Detected);
    }

    #[test]
    fn near_sequential_with_gap_still_detected() {
        let mut c = clf();
        assert_eq!(c.observe(0, 0, 128, t(0)), Classification::Pending);
        // Skip 64 blocks: still inside the region, enough distinct blocks.
        assert_eq!(c.observe(0, 192, 128, t(1)), Classification::Detected);
    }

    #[test]
    fn gc_reclaims_stale_regions() {
        let mut c = clf();
        let _ = c.observe(0, 0, 128, t(0));
        let _ = c.observe(0, 10_000_000, 128, t(100));
        let before = c.memory_bytes();
        assert!(before > 0);
        assert_eq!(c.gc(t(50)), 1);
        assert_eq!(c.region_count(), 1);
        assert!(c.memory_bytes() < before);
        // The surviving region still works.
        assert_eq!(c.observe(0, 10_000_128, 128, t(101)), Classification::Detected);
    }

    #[test]
    fn giant_request_detects_immediately() {
        let mut c = clf();
        assert_eq!(c.observe(0, 0, 4096, t(0)), Classification::Detected);
    }

    #[test]
    fn gc_accounting_balances_across_partial_reclaims() {
        let mut c = clf();
        // Interleave ages across two disks so every gc pass reclaims a
        // strict subset and the in-loop accounting has to stay balanced.
        for i in 0..200u64 {
            let _ = c.observe((i % 2) as usize, i * 1_000_000, 8, t(i * 10));
        }
        let mut per_region = Vec::new();
        for i in 0..200u64 {
            // Recompute each region's footprint independently of the
            // classifier's counter: a twin classifier holding only region i.
            let mut solo = clf();
            let _ = solo.observe(0, i * 1_000_000, 8, t(0));
            per_region.push(solo.memory_bytes());
        }
        let mut live: usize = per_region.iter().sum();
        assert_eq!(c.memory_bytes(), live);
        let mut remaining = 200usize;
        for step in 1..=4u64 {
            let reclaimed = c.gc(t(step * 500));
            // Regions with last_set < cutoff: i*10 < step*500 → 50 per pass.
            assert_eq!(reclaimed, 50, "pass {step}");
            remaining -= reclaimed;
            live -= per_region[(step as usize - 1) * 50..step as usize * 50].iter().sum::<usize>();
            assert_eq!(c.region_count(), remaining, "region count after pass {step}");
            assert_eq!(c.memory_bytes(), live, "memory after pass {step}");
        }
        assert_eq!(c.region_count(), 0);
        assert_eq!(c.memory_bytes(), 0);
        assert_eq!(c.gc(t(1_000_000)), 0, "nothing left to reclaim");
    }

    #[test]
    fn memory_stays_bounded_by_gc() {
        let mut c = clf();
        for i in 0..1000u64 {
            let _ = c.observe(0, i * 1_000_000, 8, t(i));
        }
        let big = c.memory_bytes();
        c.gc(t(2_000));
        assert_eq!(c.region_count(), 0);
        assert_eq!(c.memory_bytes(), 0);
        assert!(big > 0);
    }
}
