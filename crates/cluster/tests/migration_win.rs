//! The headline claim of mid-run rebalancing: when a node starts
//! straggling *mid-run*, migrating its live streams beats every static
//! routing decision — including the straggler-aware router that knows
//! about the fault ahead of time but can only choose a placement once.

use seqio_cluster::{ClusterExperiment, ClusterResult, RebalanceConfig, ShardPolicy};
use seqio_node::Experiment;
use seqio_simcore::units::KIB;
use seqio_simcore::{FaultPlan, SeqioError, SimDuration};

const STREAMS_PER_NODE: usize = 16;
const REQUESTS: u64 = 16;

fn template() -> Experiment {
    Experiment::builder()
        .streams_per_disk(STREAMS_PER_NODE)
        .request_size(64 * KIB)
        .requests_per_stream(REQUESTS)
        .warmup(SimDuration::ZERO)
        .duration(SimDuration::from_secs(300))
        .build()
}

fn run(
    policy: ShardPolicy,
    fault: Option<FaultPlan>,
    rebalance: Option<RebalanceConfig>,
) -> Result<ClusterResult, SeqioError> {
    let mut b = ClusterExperiment::builder()
        .template(template())
        .nodes(2)
        .policy(policy)
        .base_seed(19)
        .jobs(2);
    if let Some(f) = fault {
        b = b.node_fault(1, f);
    }
    if let Some(r) = rebalance {
        b = b.rebalance(r);
    }
    b.run()
}

#[test]
fn migration_beats_the_best_static_routing_under_a_mid_run_straggler() {
    // Calibrate the straggler onset off the healthy makespan, so the
    // fault genuinely lands mid-run: both nodes are past half their
    // batch when node 1's only disk slows down 8x for good.
    let healthy = run(ShardPolicy::HashByStream, None, None).unwrap();
    let onset = SimDuration::from_millis((healthy.window.as_millis_f64() * 0.6) as u64);
    let fault = FaultPlan::new().straggler(0, 8.0, onset, None);
    let epoch = SimDuration::from_millis(((healthy.window.as_millis_f64() / 25.0) as u64).max(1));

    // Static candidate 1: the hash deal, ridden to the bitter end.
    let static_hash = run(ShardPolicy::HashByStream, Some(fault.clone()), None).unwrap();
    // Static candidate 2: the straggler-aware router, which knows about
    // the fault up front and steers every stream onto the healthy node
    // from time zero — the best decision available without migration.
    let static_aware = run(ShardPolicy::StragglerAware, Some(fault.clone()), None).unwrap();
    // Mid-run migration: start from the same hash deal, notice the
    // degradation when it happens, move the live streams.
    let migrated =
        run(ShardPolicy::HashByStream, Some(fault), Some(RebalanceConfig::new(epoch))).unwrap();

    // Identical total work everywhere: throughput differences are purely
    // makespan differences.
    let total_bytes = 2 * STREAMS_PER_NODE as u64 * REQUESTS * 64 * KIB;
    for (name, r) in [("hash", &static_hash), ("aware", &static_aware), ("migrated", &migrated)] {
        assert_eq!(r.bytes_delivered, total_bytes, "{name} run lost work");
    }
    assert!(!migrated.migrations.is_empty(), "the straggler must trigger migrations");

    let tp_hash = static_hash.total_throughput_mbs();
    let tp_aware = static_aware.total_throughput_mbs();
    let tp_migrated = migrated.total_throughput_mbs();
    let best_static = tp_hash.max(tp_aware);
    assert!(
        tp_migrated >= 1.3 * best_static,
        "migration must beat the best static routing by >= 1.3x: \
         migrated {tp_migrated:.1} MB/s vs hash {tp_hash:.1} / aware {tp_aware:.1}"
    );
    // Sanity on the physics: a run pinned to the straggling node is far
    // worse than one that avoided it, and migration beats both.
    assert!(tp_aware > tp_hash, "avoiding the straggler should beat riding it out");
}
