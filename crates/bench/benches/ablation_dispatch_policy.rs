//! Ablation — dispatch-set admission policy (paper §4.2).
//!
//! The paper uses simple round-robin admission and speculates that
//! offset-based placement ("keep streams that access nearby areas of the
//! disk in the dispatch set") might help, while noting that large request
//! sizes make the benefit unclear. This ablation measures both policies at
//! small and large read-ahead.

use seqio_bench::{window_secs, Figure, Grid};
use seqio_core::{DispatchPolicy, ServerConfig};
use seqio_node::{Experiment, Frontend};
use seqio_simcore::units::{format_bytes, KIB, MIB};

fn main() {
    let (warmup, duration) = window_secs((4, 4), (8, 8));

    let mut grid = Grid::new();
    for policy in [DispatchPolicy::RoundRobin, DispatchPolicy::OffsetOrdered] {
        let label = format!("{policy:?}");
        for ra in [128 * KIB, 512 * KIB, 2 * MIB] {
            let cfg = ServerConfig {
                dispatch_streams: 4,
                read_ahead_bytes: ra,
                requests_per_residency: 4,
                memory_bytes: 4 * ra * 4,
                dispatch_policy: policy,
                ..ServerConfig::default_tuning()
            };
            grid = grid.point(
                &label,
                format_bytes(ra),
                Experiment::builder()
                    .streams_per_disk(100)
                    .frontend(Frontend::StreamScheduler(cfg))
                    .warmup(warmup)
                    .duration(duration)
                    .seed(2424)
                    .build(),
            );
        }
    }

    let mut fig = Figure::new(
        "Ablation",
        "Dispatch policy: round-robin vs offset-ordered (100 streams, D=4, N=4)",
        "Read-ahead",
        "Throughput (MBytes/s)",
    );
    grid.run().fill(&mut fig, |r| r.total_throughput_mbs());
    fig.report("ablation_dispatch_policy");
    let rr = fig.series[0].ys();
    let off = fig.series[1].ys();
    println!(
        "offset-ordered vs round-robin: {:+.1}% at 128K RA, {:+.1}% at 2M RA \
         (paper: benefit unclear at large request sizes)",
        (off[0] / rr[0] - 1.0) * 100.0,
        (off[2] / rr[2] - 1.0) * 100.0
    );
}
