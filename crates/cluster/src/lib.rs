//! # seqio-cluster
//!
//! Multi-node scale-out for the `seqio` storage-node simulation: `K`
//! full node simulations behind a deterministic front-end router, run in
//! parallel and merged onto one cluster clock.
//!
//! The paper's stream scheduler is a per-node building block; this crate
//! models the layer above it. A [`ClusterExperiment`] takes a per-node
//! [`Experiment`](seqio_node::Experiment) template, shards the global
//! client streams across nodes with a [`ShardPolicy`] (hash, range, or
//! straggler-aware steering driven by per-node [`NodeHealth`] derived
//! from fault plans), fans the node simulations over the existing sweep
//! worker pool, and merges the per-node results into a [`ClusterResult`]
//! whose throughput is summed over the cluster **makespan** — the window
//! of the slowest node.
//!
//! Everything stays bit-deterministic at any worker count, faults are
//! opt-in per node, and observability is opt-in via the template.
//!
//! # Examples
//!
//! ```
//! use seqio_cluster::{ClusterExperiment, ShardPolicy};
//! use seqio_node::Experiment;
//! use seqio_simcore::SimDuration;
//!
//! let template = Experiment::builder()
//!     .streams_per_disk(4)
//!     .requests_per_stream(8)
//!     .warmup(SimDuration::ZERO)
//!     .duration(SimDuration::from_secs(30))
//!     .build();
//! let result = ClusterExperiment::builder()
//!     .template(template)
//!     .nodes(2)
//!     .policy(ShardPolicy::HashByStream)
//!     .base_seed(42)
//!     .run()
//!     .unwrap();
//! assert_eq!(result.per_stream_mbs.len(), 8);
//! assert!(result.total_throughput_mbs() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cluster;
mod router;

pub use cluster::{ClusterExperiment, ClusterExperimentBuilder, ClusterResult, NodeOutcome};
pub use router::{NodeHealth, Router, ShardPolicy};
