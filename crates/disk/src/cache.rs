//! Segmented on-disk cache.
//!
//! A disk cache is divided into a fixed number of *segments*, each holding a
//! contiguous run of blocks (the hardware analogue of a cache line). The
//! paper's Figures 4–7 sweep exactly the knobs modeled here: segment count,
//! segment size and read-ahead. When more streams than segments are active,
//! LRU reclaim evicts prefetched data before its stream returns for it —
//! the throughput-collapse mechanism this crate must reproduce.

use seqio_simcore::units::format_bytes;
use seqio_simcore::SimTime;

use crate::request::{bytes_to_blocks, Lba, BLOCK_SIZE};

/// Disk-cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Number of cache segments (0 disables the cache entirely).
    pub segment_count: usize,
    /// Capacity of each segment in bytes.
    pub segment_bytes: u64,
    /// How far beyond a request the disk fills the segment (bytes). The
    /// effective read-ahead is additionally capped by the free space left in
    /// the segment, so `read_ahead_bytes == request size` or
    /// `segment_bytes == request size` both yield "no prefetch".
    pub read_ahead_bytes: u64,
}

impl CacheConfig {
    /// A disabled cache.
    pub const fn disabled() -> Self {
        CacheConfig { segment_count: 0, segment_bytes: 0, read_ahead_bytes: 0 }
    }

    /// Total cache capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.segment_count as u64 * self.segment_bytes
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.segment_count == 0 {
            return Ok(()); // disabled
        }
        if self.segment_bytes == 0 || !self.segment_bytes.is_multiple_of(BLOCK_SIZE) {
            return Err(format!(
                "segment size {} must be a positive multiple of {BLOCK_SIZE}",
                format_bytes(self.segment_bytes)
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy)]
struct Segment {
    start: Lba,
    /// Valid blocks from `start`.
    filled: u64,
    /// Highest offset (blocks from `start`) ever served to a host request.
    touched: u64,
    last_touch: SimTime,
    /// `true` once the segment has held data (so empty slots are preferred
    /// for allocation before any eviction happens).
    used: bool,
}

impl Segment {
    const EMPTY: Segment =
        Segment { start: 0, filled: 0, touched: 0, last_touch: SimTime::ZERO, used: false };
}

/// Handle for a fill-in-progress returned by [`SegmentedCache::begin_fill`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillTicket {
    index: usize,
}

/// Counters describing cache behaviour. Hit/miss classification lives in
/// [`DiskMetrics`](crate::DiskMetrics) (counted once per host request by the
/// disk model); the cache tracks reclaim behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheMetrics {
    /// Segments reclaimed (evicted or slid) to make room.
    pub evictions: u64,
    /// Prefetched blocks discarded before any request consumed them.
    pub wasted_blocks: u64,
}

/// The segmented cache itself.
#[derive(Debug, Clone)]
pub struct SegmentedCache {
    cfg: CacheConfig,
    segments: Vec<Segment>,
    metrics: CacheMetrics,
}

impl SegmentedCache {
    /// Creates a cache from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see [`CacheConfig::validate`]).
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate().expect("invalid cache config");
        SegmentedCache {
            cfg,
            segments: vec![Segment::EMPTY; cfg.segment_count],
            metrics: CacheMetrics::default(),
        }
    }

    /// The configuration this cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Behaviour counters.
    pub fn metrics(&self) -> CacheMetrics {
        self.metrics
    }

    fn capacity_blocks(&self) -> u64 {
        bytes_to_blocks(self.cfg.segment_bytes)
    }

    /// Attempts to serve `[lba, lba+blocks)` from the cache. On a hit the
    /// owning segment's LRU position and consumption watermark are updated.
    pub fn lookup(&mut self, lba: Lba, blocks: u64, now: SimTime) -> bool {
        for seg in &mut self.segments {
            if seg.used && seg.start <= lba && lba + blocks <= seg.start + seg.filled {
                seg.touched = seg.touched.max(lba + blocks - seg.start);
                seg.last_touch = now;
                return true;
            }
        }
        false
    }

    /// Non-mutating containment check (no LRU touch, no watermark update).
    pub fn contains(&self, lba: Lba, blocks: u64) -> bool {
        self.segments
            .iter()
            .any(|seg| seg.used && seg.start <= lba && lba + blocks <= seg.start + seg.filled)
    }

    /// If `lba` falls inside a segment's valid data, returns one past the
    /// last contiguous cached block from `lba` (and records the consumption
    /// up to that point). Used to trim a partially-cached read down to the
    /// blocks that actually need the media.
    pub fn coverage_end(&mut self, lba: Lba, now: SimTime) -> Option<Lba> {
        for seg in &mut self.segments {
            if seg.used && seg.start <= lba && lba < seg.start + seg.filled {
                let end = seg.start + seg.filled;
                seg.touched = seg.filled;
                seg.last_touch = now;
                return Some(end);
            }
        }
        None
    }

    /// Plans segment space for a media read of `[lba, lba+total_blocks)`.
    ///
    /// Returns `None` when the cache is disabled or the transfer exceeds one
    /// segment (the data then bypasses the cache). Otherwise reuses a
    /// contiguous segment (extending or sliding it) or evicts the LRU
    /// segment, and returns a ticket to pass to [`commit_fill`] when the
    /// media operation finishes.
    ///
    /// [`commit_fill`]: SegmentedCache::commit_fill
    pub fn begin_fill(&mut self, lba: Lba, total_blocks: u64, now: SimTime) -> Option<FillTicket> {
        if self.cfg.segment_count == 0 {
            return None;
        }
        let cap = self.capacity_blocks();
        if total_blocks > cap {
            return None; // larger than a segment: bypass
        }
        // 1. A segment we can extend: op range is contiguous with (or starts
        //    inside) its valid data and the union still fits.
        for (i, seg) in self.segments.iter_mut().enumerate() {
            if seg.used
                && lba >= seg.start
                && lba <= seg.start + seg.filled
                && (lba + total_blocks - seg.start) <= cap
            {
                seg.last_touch = now;
                return Some(FillTicket { index: i });
            }
        }
        // 2. A contiguous segment that is full: slide it forward (the stream
        //    has consumed it; keep one segment per stream).
        for (i, seg) in self.segments.iter_mut().enumerate() {
            if seg.used && lba >= seg.start && lba <= seg.start + seg.filled {
                self.metrics.wasted_blocks += seg.filled.saturating_sub(seg.touched);
                self.metrics.evictions += 1;
                *seg = Segment { start: lba, filled: 0, touched: 0, last_touch: now, used: true };
                return Some(FillTicket { index: i });
            }
        }
        // 3. Allocate: prefer a never-used slot, else evict the LRU segment.
        let idx = if let Some(i) = self.segments.iter().position(|s| !s.used) {
            i
        } else {
            let i = self
                .segments
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.last_touch)
                .map(|(i, _)| i)
                .expect("segment_count > 0");
            let victim = &self.segments[i];
            self.metrics.wasted_blocks += victim.filled.saturating_sub(victim.touched);
            self.metrics.evictions += 1;
            i
        };
        self.segments[idx] =
            Segment { start: lba, filled: 0, touched: 0, last_touch: now, used: true };
        Some(FillTicket { index: idx })
    }

    /// Records that the media read `[lba, lba+total_blocks)` planned by
    /// [`begin_fill`](SegmentedCache::begin_fill) has landed in its segment.
    pub fn commit_fill(&mut self, ticket: FillTicket, lba: Lba, total_blocks: u64, now: SimTime) {
        let seg = &mut self.segments[ticket.index];
        debug_assert!(seg.used);
        if lba >= seg.start && lba <= seg.start + seg.filled {
            seg.filled = seg.filled.max(lba + total_blocks - seg.start);
        } else {
            // The segment was re-planned in an unexpected way; restart it.
            seg.start = lba;
            seg.filled = total_blocks;
            seg.touched = 0;
        }
        seg.last_touch = now;
    }

    /// Drops any cached data overlapping `[lba, lba+blocks)` (used on writes).
    pub fn invalidate(&mut self, lba: Lba, blocks: u64) {
        for seg in &mut self.segments {
            if seg.used && lba < seg.start + seg.filled && seg.start < lba + blocks {
                *seg = Segment::EMPTY;
            }
        }
    }

    /// How many blocks of read-ahead to plan beyond a request of
    /// `request_blocks` at the current configuration: limited both by the
    /// configured read-ahead and by segment capacity.
    pub fn plan_read_ahead(&self, request_blocks: u64) -> u64 {
        if self.cfg.segment_count == 0 {
            return 0;
        }
        let cap = self.capacity_blocks();
        if request_blocks >= cap {
            return 0;
        }
        let ra = bytes_to_blocks(self.cfg.read_ahead_bytes);
        ra.saturating_sub(request_blocks).min(cap - request_blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio_simcore::units::{KIB, MIB};

    fn cache(segments: usize, seg_kib: u64, ra_kib: u64) -> SegmentedCache {
        SegmentedCache::new(CacheConfig {
            segment_count: segments,
            segment_bytes: seg_kib * KIB,
            read_ahead_bytes: ra_kib * KIB,
        })
    }

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = cache(4, 256, 256);
        assert!(!c.lookup(0, 128, t(1)));
        let ticket = c.begin_fill(0, 512, t(1)).unwrap();
        c.commit_fill(ticket, 0, 512, t(2));
        assert!(c.lookup(0, 128, t(3)));
        assert!(c.lookup(384, 128, t(4)));
        assert!(!c.lookup(512, 1, t(5)));
        assert!(c.contains(0, 512));
        assert!(!c.contains(0, 513));
    }

    #[test]
    fn coverage_end_trims_partial_hits() {
        let mut c = cache(4, 256, 256);
        let ticket = c.begin_fill(100, 200, t(1)).unwrap();
        c.commit_fill(ticket, 100, 200, t(1));
        assert_eq!(c.coverage_end(150, t(2)), Some(300));
        assert_eq!(c.coverage_end(300, t(2)), None);
        assert_eq!(c.coverage_end(99, t(2)), None);
    }

    #[test]
    fn read_ahead_planning_respects_caps() {
        let c = cache(4, 256, 128);
        // request 64K = 128 blocks, RA config 128K => 128 blocks beyond.
        assert_eq!(c.plan_read_ahead(128), 128);
        // request as big as read-ahead => none.
        assert_eq!(c.plan_read_ahead(256), 0);
        // request fills the segment => none.
        assert_eq!(c.plan_read_ahead(512), 0);
        // segment capacity caps RA.
        let c2 = cache(4, 256, 10_000);
        assert_eq!(c2.plan_read_ahead(128), 512 - 128);
        // disabled cache plans nothing.
        let c3 = SegmentedCache::new(CacheConfig::disabled());
        assert_eq!(c3.plan_read_ahead(128), 0);
    }

    #[test]
    fn transfers_larger_than_segment_bypass() {
        let mut c = cache(4, 64, 64);
        assert!(c.begin_fill(0, 256, t(1)).is_none());
    }

    #[test]
    fn extend_keeps_one_segment_per_stream() {
        let mut c = cache(2, 256, 256);
        let ti = c.begin_fill(0, 256, t(1)).unwrap();
        c.commit_fill(ti, 0, 256, t(1));
        // Contiguous follow-up extends the same segment.
        let ti2 = c.begin_fill(256, 256, t(2)).unwrap();
        assert_eq!(ti, ti2);
        c.commit_fill(ti2, 256, 256, t(2));
        assert!(c.lookup(0, 512, t(3)));
        assert_eq!(c.metrics().evictions, 0);
    }

    #[test]
    fn slide_recycles_full_segment() {
        let mut c = cache(1, 256, 256); // capacity 512 blocks
        let ti = c.begin_fill(0, 512, t(1)).unwrap();
        c.commit_fill(ti, 0, 512, t(1));
        assert!(c.lookup(0, 512, t(2))); // consume everything
                                         // Next contiguous fill no longer fits -> slide, no waste (all touched).
        let ti2 = c.begin_fill(512, 512, t(3)).unwrap();
        c.commit_fill(ti2, 512, 512, t(3));
        assert!(c.lookup(512, 512, t(4)));
        assert!(!c.lookup(0, 1, t(5))); // old data gone
        let m = c.metrics();
        assert_eq!(m.evictions, 1);
        assert_eq!(m.wasted_blocks, 0);
    }

    #[test]
    fn lru_eviction_counts_waste() {
        let mut c = cache(2, 256, 256);
        let a = c.begin_fill(0, 512, t(1)).unwrap();
        c.commit_fill(a, 0, 512, t(1));
        let b = c.begin_fill(10_000, 512, t(2)).unwrap();
        c.commit_fill(b, 10_000, 512, t(2));
        // Touch segment A so B becomes LRU.
        assert!(c.lookup(0, 64, t(3)));
        // Third stream forces eviction of B, whose 512 blocks were never used.
        let d = c.begin_fill(20_000, 512, t(4)).unwrap();
        c.commit_fill(d, 20_000, 512, t(4));
        let m = c.metrics();
        assert_eq!(m.evictions, 1);
        assert_eq!(m.wasted_blocks, 512);
        assert!(c.lookup(0, 64, t(5)), "A survived");
        assert!(!c.lookup(10_000, 64, t(6)), "B evicted");
    }

    #[test]
    fn thrash_when_streams_exceed_segments() {
        let mut c = cache(2, 256, 256);
        // Three interleaved "streams" over a two-segment cache: nothing
        // survives long enough to be reused.
        let mut hits = 0;
        for round in 0u64..10 {
            for s in 0u64..3 {
                let lba = s * 1_000_000 + round * 128;
                if c.lookup(lba, 128, t(round * 10 + s)) {
                    hits += 1;
                } else if let Some(ti) = c.begin_fill(lba, 512, t(round * 10 + s)) {
                    c.commit_fill(ti, lba, 512, t(round * 10 + s));
                }
            }
        }
        assert_eq!(hits, 0, "LRU must thrash with 3 streams over 2 segments");
        assert!(c.metrics().wasted_blocks > 0);
    }

    #[test]
    fn reuse_when_streams_fit_segments() {
        let mut c = cache(4, 256, 256);
        let mut hits = 0;
        let mut misses = 0;
        for round in 0u64..8 {
            for s in 0u64..3 {
                let lba = s * 1_000_000 + round * 128;
                if c.lookup(lba, 128, t(round * 10 + s)) {
                    hits += 1;
                } else {
                    misses += 1;
                    if let Some(ti) = c.begin_fill(lba, 512, t(round * 10 + s)) {
                        c.commit_fill(ti, lba, 512, t(round * 10 + s));
                    }
                }
            }
        }
        // Each 512-block fill serves 4 x 128-block requests: 1 miss, 3 hits.
        assert!(hits > misses, "hits {hits} misses {misses}");
    }

    #[test]
    fn invalidate_drops_overlaps() {
        let mut c = cache(2, 256, 256);
        let a = c.begin_fill(0, 512, t(1)).unwrap();
        c.commit_fill(a, 0, 512, t(1));
        c.invalidate(100, 10);
        assert!(!c.lookup(0, 64, t(2)));
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut c = SegmentedCache::new(CacheConfig::disabled());
        assert!(!c.lookup(0, 1, t(1)));
        assert!(c.begin_fill(0, 8, t(1)).is_none());
    }

    #[test]
    fn config_validation() {
        assert!(CacheConfig { segment_count: 1, segment_bytes: 511, read_ahead_bytes: 0 }
            .validate()
            .is_err());
        assert!(CacheConfig::disabled().validate().is_ok());
        assert_eq!(
            CacheConfig { segment_count: 32, segment_bytes: 256 * KIB, read_ahead_bytes: 0 }
                .total_bytes(),
            8 * MIB
        );
    }
}
