//! The storage server (paper Figure 9).
//!
//! [`StorageServer`] is the host-level scheduler: it classifies incoming
//! requests, detects sequential streams, admits up to `D` of them into the
//! dispatch set, issues `R`-sized read-ahead requests on their behalf
//! (`N` per residency, round-robin replacement), stages the prefetched data
//! in an `M`-bounded buffered set, and serves client requests from memory.
//!
//! The server is a pure state machine: callers feed it client requests and
//! disk completions and relay the returned [`ServerOutput`]s. It is used
//! both by the simulated storage node (`seqio-node`) and by the real-file
//! backend runner ([`crate::runner`]).

use std::collections::VecDeque;

use seqio_simcore::{SeqioError, SimDuration, SimTime};

use crate::buffer::{BufferId, BufferPool, Coverage, Lba, StreamId};
use crate::classifier::{Classification, Classifier};
use crate::config::{DispatchPolicy, ServerConfig};
use crate::stream::{PendingRequest, StreamTable};

/// A request arriving from a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientRequest {
    /// Caller-side identifier, echoed in [`ServerOutput::CompleteClient`].
    pub id: u64,
    /// Destination disk (index at this storage node).
    pub disk: usize,
    /// First block.
    pub lba: Lba,
    /// Length in blocks.
    pub blocks: u64,
    /// `true` for writes (always passed through directly).
    pub write: bool,
}

impl ClientRequest {
    /// Convenience constructor for a read.
    pub fn read(id: u64, disk: usize, lba: Lba, blocks: u64) -> Self {
        ClientRequest { id, disk, lba, blocks, write: false }
    }

    /// One past the last requested block.
    pub fn end(&self) -> Lba {
        self.lba + self.blocks
    }
}

/// A disk request the server wants its backend to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackendRequest {
    /// Server-assigned identifier, echoed via
    /// [`StorageServer::on_disk_complete`].
    pub id: u64,
    /// Destination disk.
    pub disk: usize,
    /// First block.
    pub lba: Lba,
    /// Length in blocks.
    pub blocks: u64,
    /// `true` for writes.
    pub write: bool,
    /// `true` when this request swapped a stream into the dispatch set
    /// (lets callers charge the buffer-allocation cost to admissions).
    pub admitted: bool,
}

/// Output of the server state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServerOutput {
    /// Execute this request on the backing store.
    SubmitDisk(BackendRequest),
    /// Client request `client` is complete. `from_memory` is `true` when it
    /// was served from the buffered set without (new) disk I/O.
    CompleteClient {
        /// The client request identifier.
        client: u64,
        /// Whether the buffered set satisfied it.
        from_memory: bool,
    },
}

/// Behaviour counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServerMetrics {
    /// Client requests received.
    pub client_requests: u64,
    /// Requests passed straight to a disk (unclassified or writes).
    pub direct_requests: u64,
    /// Requests served from the buffered set.
    pub memory_hits: u64,
    /// Requests parked on a stream queue (data in flight or not yet fetched).
    pub queued_requests: u64,
    /// Streams promoted by the classifier.
    pub streams_detected: u64,
    /// Dispatch-set admissions (stream swap-ins).
    pub admissions: u64,
    /// Read-ahead disk requests issued.
    pub fills_issued: u64,
    /// Client completions emitted.
    pub completions: u64,
    /// Streams torn down by the garbage collector.
    pub streams_gced: u64,
    /// Fill attempts rejected because `M` was exhausted.
    pub issue_no_memory: u64,
    /// Fill attempts skipped because the stream had no demand.
    pub issue_no_demand: u64,
    /// Dispatched streams rotated out early because their disk was
    /// reported degraded (fault injection).
    pub degraded_rotations: u64,
}

#[derive(Debug, Clone, Copy)]
enum PendingDisk {
    Direct { client: u64 },
    Fill { stream: StreamId, buffer: BufferId },
}

/// A lifecycle annotation emitted while the span log is enabled
/// (see [`StorageServer::enable_span_log`]). Strictly observational:
/// recording these never changes scheduling decisions or outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanEvent {
    /// The request matched (or triggered detection of) a stream.
    Classified {
        /// Client request id.
        client: u64,
        /// When the classification happened.
        at: SimTime,
    },
    /// The request's stream held a dispatch-set slot.
    Admitted {
        /// Client request id.
        client: u64,
        /// When the slot was (already) held.
        at: SimTime,
    },
    /// A disk I/O covering the request was issued.
    DiskIssued {
        /// Client request id.
        client: u64,
        /// Issue time.
        at: SimTime,
    },
    /// The disk I/O serving the request went through the controller's
    /// fault path (retries and/or a deadline overrun).
    Faulted {
        /// Client request id.
        client: u64,
        /// Retry attempts beyond the first issue.
        retries: u32,
        /// Whether the per-request deadline was exceeded.
        timed_out: bool,
    },
}

/// Why a read-ahead could (not) be issued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum IssueOutcome {
    /// A fill was submitted.
    Issued,
    /// `M` is exhausted: retry when memory frees (round-robin head waits).
    NoMemory,
    /// The stream has staged enough ahead of its client (or hit the end of
    /// the disk): nothing to do for it right now.
    NoDemand,
}

/// The host-level stream scheduler.
#[derive(Debug)]
pub struct StorageServer {
    cfg: ServerConfig,
    read_ahead_blocks: u64,
    disk_capacity: Vec<u64>,
    classifier: Classifier,
    streams: StreamTable,
    pool: BufferPool,
    /// Round-robin admission queue (stream ids with `waiting == true`).
    rr: VecDeque<StreamId>,
    dispatched_count: usize,
    /// Dispatched streams per disk; admission balances across spindles so a
    /// small dispatch set (e.g. `D = #disks`) keeps every disk busy.
    disk_dispatched: Vec<usize>,
    /// Per-disk dispatch bound: `ceil(D / #disks)`.
    disk_quota: usize,
    /// Last admitted frontier per disk (for the offset-ordered policy).
    last_admit_frontier: Vec<Lba>,
    /// In-flight backend operations, slot-indexed by backend id. Ids are
    /// reused from `pending_free`, so the table stays as small as the
    /// in-flight window and lookups skip hashing entirely.
    pending_disk: Vec<Option<PendingDisk>>,
    pending_free: Vec<u64>,
    pending_count: usize,
    /// Reusable issue-/completion-path buffers for `on_disk_complete_into`.
    scratch_issue: Vec<ServerOutput>,
    scratch_complete: Vec<ServerOutput>,
    /// Per-disk degradation flags reported by the embedding layer (fault
    /// injection); degraded disks rotate their streams out early.
    degraded: Vec<bool>,
    /// Lifecycle annotations accumulated since the last drain; `None`
    /// (the default) disables all span bookkeeping.
    span_log: Option<Vec<SpanEvent>>,
    metrics: ServerMetrics,
}

impl StorageServer {
    /// Creates a server for a node whose disks have the given capacities
    /// (in blocks).
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid or `disk_capacity` is empty.
    pub fn new(cfg: ServerConfig, disk_capacity: Vec<u64>) -> Self {
        cfg.validate().expect("invalid server config");
        assert!(!disk_capacity.is_empty(), "server needs at least one disk");
        let classifier = Classifier::new(cfg.detect_offset_blocks, cfg.detect_threshold_blocks);
        let pool = BufferPool::new(cfg.memory_bytes);
        let read_ahead_blocks = cfg.read_ahead_blocks();
        let n_disks = disk_capacity.len();
        let disk_quota = cfg.dispatch_streams.div_ceil(n_disks);
        StorageServer {
            cfg,
            read_ahead_blocks,
            disk_capacity,
            classifier,
            streams: StreamTable::new(),
            pool,
            rr: VecDeque::new(),
            dispatched_count: 0,
            disk_dispatched: vec![0; n_disks],
            disk_quota,
            last_admit_frontier: vec![0; n_disks],
            pending_disk: Vec::new(),
            pending_free: Vec::new(),
            pending_count: 0,
            scratch_issue: Vec::new(),
            scratch_complete: Vec::new(),
            degraded: vec![false; n_disks],
            span_log: None,
            metrics: ServerMetrics::default(),
        }
    }

    /// Turns on lifecycle-span annotations. The embedding layer collects
    /// them via [`drain_span_log`](Self::drain_span_log) after each call
    /// into the server. Off by default; enabling it records strictly more
    /// information without changing any scheduling decision or output.
    pub fn enable_span_log(&mut self) {
        if self.span_log.is_none() {
            self.span_log = Some(Vec::new());
        }
    }

    /// Moves all span annotations accumulated since the last drain into
    /// `into`. No-op while the span log is disabled.
    pub fn drain_span_log(&mut self, into: &mut Vec<SpanEvent>) {
        if let Some(log) = self.span_log.as_mut() {
            into.append(log);
        }
    }

    /// Annotates the client request(s) riding on backend operation
    /// `backend_id` with the controller's fault-path outcome (retries /
    /// deadline overrun). Must be called *before* the matching
    /// [`on_disk_complete`](Self::on_disk_complete). For a read-ahead
    /// fill, every request currently parked on the owning stream is
    /// annotated. No-op while the span log is disabled.
    pub fn annotate_backend_fault(&mut self, backend_id: u64, retries: u32, timed_out: bool) {
        let Some(log) = self.span_log.as_mut() else { return };
        match self.pending_disk.get(backend_id as usize).copied().flatten() {
            Some(PendingDisk::Direct { client }) => {
                log.push(SpanEvent::Faulted { client, retries, timed_out });
            }
            Some(PendingDisk::Fill { stream, .. }) => {
                if let Some(s) = self.streams.get(stream) {
                    for p in s.pending.iter() {
                        log.push(SpanEvent::Faulted { client: p.client, retries, timed_out });
                    }
                }
            }
            None => {}
        }
    }

    /// Reports disk health (fault injection): while `degraded` is set, any
    /// dispatched stream on `disk` is rotated out of the dispatch set
    /// after each completed fill instead of holding its slot for a full
    /// residency. The embedding layer decides when a disk counts as
    /// degraded — typically when its straggler factor reaches
    /// [`degraded_rotate_threshold`](ServerConfig::degraded_rotate_threshold).
    ///
    /// # Panics
    ///
    /// Panics if `disk` is out of range.
    pub fn set_disk_degraded(&mut self, disk: usize, degraded: bool) {
        self.degraded[disk] = degraded;
    }

    /// The configuration in effect.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Applies a mid-run retune of the dynamic knobs: `D`, `R`, `N` and
    /// the degraded-rotate threshold. The staging memory `M` stays fixed —
    /// the buffer pool was sized at construction — so the new working set
    /// must still satisfy `D * R * N <= M`.
    ///
    /// Taking effect is gradual by design: a larger `D` admits more
    /// streams on the next issue path, a smaller one self-corrects as
    /// dispatched streams rotate out (`try_admit` re-checks the bound on
    /// every admission), and a new `R` applies from the next fill. Staged
    /// buffers bought under the old tune remain valid — retuning never
    /// invalidates data, only future scheduling decisions.
    ///
    /// # Errors
    ///
    /// Rejects tunes violating [`ServerConfig::validate`] (including the
    /// memory invariant against the *existing* `M`); the configuration is
    /// left untouched on error.
    pub fn retune(
        &mut self,
        dispatch_streams: usize,
        read_ahead_bytes: u64,
        requests_per_residency: u64,
        degraded_rotate_threshold: f64,
    ) -> Result<(), SeqioError> {
        let mut cfg = self.cfg.clone();
        cfg.dispatch_streams = dispatch_streams;
        cfg.read_ahead_bytes = read_ahead_bytes;
        cfg.requests_per_residency = requests_per_residency;
        cfg.degraded_rotate_threshold = degraded_rotate_threshold;
        cfg.validate()?;
        self.read_ahead_blocks = cfg.read_ahead_blocks();
        self.disk_quota = cfg.dispatch_streams.div_ceil(self.disk_dispatched.len());
        self.cfg = cfg;
        Ok(())
    }

    /// Behaviour counters.
    pub fn metrics(&self) -> ServerMetrics {
        self.metrics
    }

    /// Bytes of staging memory in use.
    pub fn memory_used(&self) -> u64 {
        self.pool.used_bytes()
    }

    /// Highest staging-memory usage observed.
    pub fn memory_peak(&self) -> u64 {
        self.pool.peak_bytes()
    }

    /// Streams currently occupying dispatch-set slots.
    pub fn dispatched_streams(&self) -> usize {
        self.dispatched_count
    }

    /// Live detected streams (dispatched, waiting or staged).
    pub fn live_streams(&self) -> usize {
        self.streams.len()
    }

    /// The garbage-collection period the host loop should honour.
    pub fn gc_period(&self) -> SimDuration {
        self.cfg.gc_period
    }

    /// One-line-per-stream diagnostic dump (for debugging hangs).
    pub fn debug_dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "mem={}/{} dispatched={} rr_len={} pending_disk={}",
            self.pool.used_bytes(),
            self.cfg.memory_bytes,
            self.dispatched_count,
            self.rr.len(),
            self.pending_count
        );
        for s in self.streams.iter() {
            let _ = writeln!(
                out,
                "  stream {:?} disk={} next={} frontier={} pending={} dispatched={} waiting={} inflight={} issued={}",
                s.id, s.disk, s.client_next, s.frontier, s.pending.len(), s.dispatched, s.waiting,
                s.inflight, s.issued_in_residency
            );
        }
        out
    }

    /// Handles an arriving client request.
    ///
    /// # Panics
    ///
    /// Panics if the request is empty, overruns its disk, or names an
    /// unknown disk.
    pub fn on_client_request(&mut self, now: SimTime, req: ClientRequest) -> Vec<ServerOutput> {
        let mut out = Vec::new();
        self.on_client_request_into(now, req, &mut out);
        out
    }

    /// Handles an arriving client request, appending outputs to `out`
    /// instead of allocating.
    ///
    /// # Panics
    ///
    /// Panics if the request is empty, overruns its disk, or names an
    /// unknown disk.
    pub fn on_client_request_into(
        &mut self,
        now: SimTime,
        req: ClientRequest,
        out: &mut Vec<ServerOutput>,
    ) {
        assert!(req.disk < self.disk_capacity.len(), "unknown disk {}", req.disk);
        assert!(req.blocks > 0, "empty request");
        assert!(req.end() <= self.disk_capacity[req.disk], "request past disk end");
        self.metrics.client_requests += 1;

        if req.write {
            self.submit_direct(now, req, out);
            return;
        }

        if let Some(sid) =
            self.streams.match_request(req.disk, req.lba, self.cfg.stream_match_slack_blocks)
        {
            if let Some(log) = self.span_log.as_mut() {
                log.push(SpanEvent::Classified { client: req.id, at: now });
            }
            self.streams.advance_client_next(sid, req.end());
            if let Some(s) = self.streams.get_mut(sid) {
                s.last_active = now;
            }
            match self.pool.coverage(sid, req.lba, req.blocks) {
                Coverage::Ready => {
                    let freed = self.pool.consume(sid, req.lba, req.blocks, now);
                    self.metrics.memory_hits += 1;
                    self.metrics.completions += 1;
                    out.push(ServerOutput::CompleteClient { client: req.id, from_memory: true });
                    // Consumption shrank the stream's staging lead: keep its
                    // prefetch pipeline primed by re-queueing it.
                    self.requeue_if_demand(sid);
                    if freed > 0 || !self.rr.is_empty() {
                        self.try_admit(now, out);
                    }
                }
                Coverage::InFlight => {
                    self.metrics.queued_requests += 1;
                    let s = self.streams.get_mut(sid).expect("stream exists");
                    s.pending.push_back(PendingRequest {
                        client: req.id,
                        lba: req.lba,
                        blocks: req.blocks,
                    });
                    if let Some(log) = self.span_log.as_mut() {
                        // The covering fill is already on the wire: the
                        // request was admitted and issued before it arrived.
                        if self.streams.get(sid).is_some_and(|s| s.dispatched) {
                            log.push(SpanEvent::Admitted { client: req.id, at: now });
                        }
                        log.push(SpanEvent::DiskIssued { client: req.id, at: now });
                    }
                }
                Coverage::Missing => {
                    self.metrics.queued_requests += 1;
                    let s = self.streams.get_mut(sid).expect("stream exists");
                    s.pending.push_back(PendingRequest {
                        client: req.id,
                        lba: req.lba,
                        blocks: req.blocks,
                    });
                    if let Some(log) = self.span_log.as_mut() {
                        if self.streams.get(sid).is_some_and(|s| s.dispatched) {
                            log.push(SpanEvent::Admitted { client: req.id, at: now });
                        }
                    }
                    let s = self.streams.get_mut(sid).expect("stream exists");
                    if !s.dispatched && !s.waiting {
                        s.waiting = true;
                        self.rr.push_back(sid);
                    }
                    self.try_admit(now, out);
                }
            }
        } else {
            match self.classifier.observe(req.disk, req.lba, req.blocks, now) {
                Classification::Detected => {
                    self.metrics.streams_detected += 1;
                    if let Some(log) = self.span_log.as_mut() {
                        log.push(SpanEvent::Classified { client: req.id, at: now });
                    }
                    let sid = self.streams.create(req.disk, req.end(), req.end(), now);
                    let s = self.streams.get_mut(sid).expect("just created");
                    s.waiting = true;
                    self.rr.push_back(sid);
                    // The triggering request itself still goes directly to
                    // the disk; read-ahead starts behind it.
                    self.submit_direct(now, req, out);
                    self.try_admit(now, out);
                }
                Classification::Pending => {
                    self.submit_direct(now, req, out);
                }
            }
        }
    }

    /// Handles a backend completion for request `backend_id`.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown (double completion).
    pub fn on_disk_complete(&mut self, now: SimTime, backend_id: u64) -> Vec<ServerOutput> {
        let mut out = Vec::new();
        self.on_disk_complete_into(now, backend_id, &mut out);
        out
    }

    /// Handles a backend completion, appending outputs to `out` instead of
    /// allocating.
    ///
    /// # Panics
    ///
    /// Panics if the id is unknown (double completion).
    pub fn on_disk_complete_into(
        &mut self,
        now: SimTime,
        backend_id: u64,
        out: &mut Vec<ServerOutput>,
    ) {
        let pending = self.pending_disk[backend_id as usize]
            .take()
            .expect("completion for unknown backend request");
        self.pending_free.push(backend_id);
        self.pending_count -= 1;
        match pending {
            PendingDisk::Direct { client } => {
                self.metrics.completions += 1;
                out.push(ServerOutput::CompleteClient { client, from_memory: false });
            }
            PendingDisk::Fill { stream, buffer } => {
                self.pool.mark_filled(buffer, now);
                let state = self.streams.get_mut(stream).map(|s| {
                    s.inflight = false;
                    s.last_active = now;
                    (s.dispatched, s.issued_in_residency)
                });
                // Reusable scratch: issue- and completion-path outputs are
                // collected separately so their relative order can follow
                // `issue_path_priority`, without allocating per completion.
                let mut issue = std::mem::take(&mut self.scratch_issue);
                let mut complete = std::mem::take(&mut self.scratch_complete);
                if let Some((dispatched, issued)) = state {
                    // Issue path (paper §4.2: runs before completing clients).
                    if dispatched {
                        // Graceful degradation: a stream on a disk reported
                        // degraded is rotated out after every fill rather
                        // than holding its slot for a full residency while
                        // the slow spindle crawls through N requests.
                        let degraded =
                            self.streams.get(stream).is_some_and(|s| self.degraded[s.disk]);
                        let keep = !degraded
                            && issued < self.cfg.requests_per_residency
                            && self.issue_fill(now, stream, false, &mut issue)
                                == IssueOutcome::Issued;
                        if !keep {
                            if degraded && issued < self.cfg.requests_per_residency {
                                self.metrics.degraded_rotations += 1;
                            }
                            self.retire(stream);
                        }
                    }
                    self.try_admit(now, &mut issue);
                    // Completion path: drain every pending request now covered.
                    self.serve_pending(now, stream, &mut complete);
                    self.requeue_if_demand(stream);
                }
                if self.cfg.issue_path_priority {
                    out.append(&mut issue);
                    out.append(&mut complete);
                } else {
                    out.append(&mut complete);
                    out.append(&mut issue);
                }
                self.scratch_issue = issue;
                self.scratch_complete = complete;
                // Serving may have freed memory: admissions may now succeed.
                self.try_admit(now, out);
            }
        }
    }

    /// Periodic garbage collection (paper §4.3): reclaims buffers idle past
    /// the timeout, streams with nothing left to do, and stale classifier
    /// regions. Call every [`gc_period`](Self::gc_period).
    pub fn on_gc(&mut self, now: SimTime) -> Vec<ServerOutput> {
        let mut out = Vec::new();
        self.on_gc_into(now, &mut out);
        out
    }

    /// Periodic garbage collection, appending outputs to `out` instead of
    /// allocating.
    pub fn on_gc_into(&mut self, now: SimTime, out: &mut Vec<ServerOutput>) {
        let cutoff =
            SimTime::from_nanos(now.as_nanos().saturating_sub(self.cfg.buffer_timeout.as_nanos()));
        let (_streams, _freed) = self.pool.gc(cutoff);
        for sid in self.streams.idle_streams(cutoff) {
            self.pool.free_stream(sid, false);
            self.streams.remove(sid);
            self.metrics.streams_gced += 1;
            // If the stream sat in the round-robin queue, try_admit skips it
            // lazily when it finds the id no longer resolves.
        }
        self.classifier.gc(cutoff);
        self.try_admit(now, out);
    }

    /// Sends a request straight to the disk, bypassing staging.
    fn submit_direct(&mut self, now: SimTime, req: ClientRequest, out: &mut Vec<ServerOutput>) {
        let id = self.alloc_backend(PendingDisk::Direct { client: req.id });
        self.metrics.direct_requests += 1;
        if let Some(log) = self.span_log.as_mut() {
            log.push(SpanEvent::DiskIssued { client: req.id, at: now });
        }
        out.push(ServerOutput::SubmitDisk(BackendRequest {
            id,
            disk: req.disk,
            lba: req.lba,
            blocks: req.blocks,
            write: req.write,
            admitted: false,
        }));
    }

    /// `true` while the stream should keep prefetching: it has unserved
    /// requests, or its staging lead over the client is below the bound.
    fn has_demand(&self, stream: StreamId) -> bool {
        let Some(s) = self.streams.get(stream) else { return false };
        if !s.pending.is_empty() {
            return true;
        }
        if s.frontier >= self.disk_capacity[s.disk] {
            return false;
        }
        let lead_blocks = s.frontier.saturating_sub(s.client_next);
        lead_blocks * 512 < self.cfg.effective_lead_bytes()
    }

    /// Puts a stream back on the round-robin queue if it still has demand.
    fn requeue_if_demand(&mut self, stream: StreamId) {
        if !self.has_demand(stream) {
            return;
        }
        let Some(s) = self.streams.get_mut(stream) else { return };
        if !s.dispatched && !s.waiting {
            s.waiting = true;
            self.rr.push_back(stream);
        }
    }

    /// Picks the queue index of the next stream to admit, per the
    /// configured [`DispatchPolicy`]: the first eligible entry (round
    /// robin), the eligible entry whose frontier is nearest the last
    /// admitted offset on its disk (offset ordered), or the lowest
    /// frontier at-or-beyond that offset with wrap-around (the ODSA-style
    /// elevator scan). Drops stale entries as it scans.
    fn pick_admission(&mut self) -> Option<usize> {
        let mut chosen: Option<usize> = None;
        // Lexicographic preference key; ties keep the earliest queue entry.
        let mut best_key = (u64::MAX, u64::MAX);
        let mut i = 0;
        while i < self.rr.len() {
            let sid = self.rr[i];
            match self.streams.get(sid) {
                None => {
                    self.rr.remove(i);
                }
                Some(s) if !s.waiting => {
                    self.rr.remove(i);
                }
                Some(s) => {
                    if self.disk_dispatched[s.disk] < self.disk_quota {
                        let last = self.last_admit_frontier[s.disk];
                        match self.cfg.dispatch_policy {
                            DispatchPolicy::RoundRobin => return Some(i),
                            DispatchPolicy::OffsetOrdered => {
                                let key = (0, s.frontier.abs_diff(last));
                                if key < best_key {
                                    best_key = key;
                                    chosen = Some(i);
                                }
                            }
                            DispatchPolicy::OdsaScan => {
                                // Ahead of the head: ascending pass. Behind
                                // it: wrap to the lowest frontier.
                                let key = if s.frontier >= last {
                                    (0, s.frontier - last)
                                } else {
                                    (1, s.frontier)
                                };
                                if key < best_key {
                                    best_key = key;
                                    chosen = Some(i);
                                }
                            }
                        }
                    }
                    i += 1;
                }
            }
        }
        chosen
    }

    /// Admits waiting streams while slots and memory allow, balanced across
    /// disks by the per-disk quota.
    fn try_admit(&mut self, now: SimTime, out: &mut Vec<ServerOutput>) {
        while self.dispatched_count < self.cfg.dispatch_streams {
            let Some(i) = self.pick_admission() else { break };
            let sid = self.rr[i];
            // Tentatively admit: the fill only happens if memory allows.
            let mut probe = Vec::new();
            match self.issue_fill(now, sid, true, &mut probe) {
                IssueOutcome::NoMemory => break, // round-robin head waits for memory
                IssueOutcome::NoDemand => {
                    self.rr.remove(i);
                    if let Some(s) = self.streams.get_mut(sid) {
                        s.waiting = false;
                    }
                    continue;
                }
                IssueOutcome::Issued => {}
            }
            self.rr.remove(i);
            let s = self.streams.get_mut(sid).expect("stream exists");
            s.waiting = false;
            s.dispatched = true;
            s.issued_in_residency = 1; // issue_fill counted the first request
            let disk = s.disk;
            let frontier = s.frontier;
            self.dispatched_count += 1;
            self.disk_dispatched[disk] += 1;
            self.last_admit_frontier[disk] = frontier;
            self.metrics.admissions += 1;
            if let Some(log) = self.span_log.as_mut() {
                // Every request parked on the stream rode this admission.
                if let Some(s) = self.streams.get(sid) {
                    for p in s.pending.iter() {
                        log.push(SpanEvent::Admitted { client: p.client, at: now });
                    }
                }
            }
            out.extend(probe);
        }
    }

    /// Issues one `R`-sized read-ahead for `stream` at its frontier.
    fn issue_fill(
        &mut self,
        now: SimTime,
        stream: StreamId,
        admitted: bool,
        out: &mut Vec<ServerOutput>,
    ) -> IssueOutcome {
        if !self.has_demand(stream) {
            self.metrics.issue_no_demand += 1;
            return IssueOutcome::NoDemand;
        }
        let Some(s) = self.streams.get(stream) else { return IssueOutcome::NoDemand };
        let disk = s.disk;
        let mut frontier = s.frontier;
        let mut min_blocks = 0;
        // If the oldest unserved request is neither staged nor in flight
        // (e.g. its data was garbage-collected, or the client skipped
        // ahead), restart read-ahead at its first uncovered block — and make
        // sure the fill reaches the request's end even when the client's
        // requests are larger than `R`.
        if let Some(&front) = s.pending.front() {
            if self.pool.coverage(stream, front.lba, front.blocks) == Coverage::Missing {
                frontier = self.pool.covered_until(stream, front.lba, front.lba + front.blocks);
                min_blocks = (front.lba + front.blocks).saturating_sub(frontier);
            }
        }
        let cap = self.disk_capacity[disk];
        if frontier >= cap {
            return IssueOutcome::NoDemand;
        }
        let blocks = self.read_ahead_blocks.max(min_blocks).min(cap - frontier);
        if blocks * 512 > self.pool.capacity_bytes() {
            // The waiting request(s) can never be staged within `M`: pass
            // them straight to the disk instead of livelocking on refetches.
            while let Some(&front) = self.streams.get(stream).and_then(|s| s.pending.front()) {
                let needed = (front.lba + front.blocks).saturating_sub(self.pool.covered_until(
                    stream,
                    front.lba,
                    front.lba + front.blocks,
                ));
                if needed == 0
                    || needed.max(self.read_ahead_blocks) * 512 <= self.pool.capacity_bytes()
                {
                    break;
                }
                let s = self.streams.get_mut(stream).expect("stream exists");
                let front = s.pending.pop_front().expect("front exists");
                s.last_active = now;
                let req = ClientRequest {
                    id: front.client,
                    disk,
                    lba: front.lba,
                    blocks: front.blocks,
                    write: false,
                };
                self.submit_direct(now, req, out);
            }
            return IssueOutcome::NoDemand;
        }
        let Some(buffer) = self.pool.try_alloc(stream, disk, frontier, blocks, now) else {
            self.metrics.issue_no_memory += 1;
            return IssueOutcome::NoMemory;
        };
        let id = self.alloc_backend(PendingDisk::Fill { stream, buffer });
        let lba = frontier;
        let s = self.streams.get_mut(stream).expect("stream exists");
        s.frontier = frontier + blocks;
        s.inflight = true;
        if !admitted {
            s.issued_in_residency += 1;
        }
        self.metrics.fills_issued += 1;
        if let Some(log) = self.span_log.as_mut() {
            // Every parked request now fully inside the fetched frontier has
            // its covering disk I/O on the wire (first stamp wins downstream,
            // so re-announcing already-issued requests is harmless).
            if let Some(s) = self.streams.get(stream) {
                for p in s.pending.iter() {
                    if p.lba + p.blocks <= s.frontier {
                        log.push(SpanEvent::DiskIssued { client: p.client, at: now });
                    }
                }
            }
        }
        out.push(ServerOutput::SubmitDisk(BackendRequest {
            id,
            disk,
            lba,
            blocks,
            write: false,
            admitted,
        }));
        IssueOutcome::Issued
    }

    /// Removes `stream` from the dispatch set, re-queueing it round-robin
    /// while it still has demand.
    fn retire(&mut self, stream: StreamId) {
        let Some(s) = self.streams.get_mut(stream) else { return };
        if !s.dispatched {
            return;
        }
        s.dispatched = false;
        s.issued_in_residency = 0;
        let disk = s.disk;
        self.dispatched_count -= 1;
        self.disk_dispatched[disk] -= 1;
        self.requeue_if_demand(stream);
    }

    /// Completes every pending request of `stream` that is now staged.
    fn serve_pending(&mut self, now: SimTime, stream: StreamId, out: &mut Vec<ServerOutput>) {
        loop {
            let Some(s) = self.streams.get(stream) else { return };
            let Some(&front) = s.pending.front() else { return };
            match self.pool.coverage(stream, front.lba, front.blocks) {
                Coverage::Ready => {
                    self.pool.consume(stream, front.lba, front.blocks, now);
                    let s = self.streams.get_mut(stream).expect("stream exists");
                    s.pending.pop_front();
                    s.last_active = now;
                    self.metrics.memory_hits += 1;
                    self.metrics.completions += 1;
                    out.push(ServerOutput::CompleteClient {
                        client: front.client,
                        from_memory: true,
                    });
                }
                Coverage::InFlight | Coverage::Missing => return,
            }
        }
    }

    fn alloc_backend(&mut self, op: PendingDisk) -> u64 {
        self.pending_count += 1;
        match self.pending_free.pop() {
            Some(id) => {
                self.pending_disk[id as usize] = Some(op);
                id
            }
            None => {
                self.pending_disk.push(Some(op));
                self.pending_disk.len() as u64 - 1
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqio_simcore::units::KIB;

    const DISK_BLOCKS: u64 = 10_000_000;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    fn server(cfg: ServerConfig) -> StorageServer {
        StorageServer::new(cfg, vec![DISK_BLOCKS])
    }

    fn cfg(d: usize, r_kib: u64, n: u64) -> ServerConfig {
        ServerConfig {
            dispatch_streams: d,
            read_ahead_bytes: r_kib * KIB,
            requests_per_residency: n,
            memory_bytes: (d as u64) * r_kib * KIB * n,
            ..ServerConfig::default_tuning()
        }
    }

    /// Drives `streams` sequential 64 KiB readers (one outstanding request
    /// each) through the server with an instant in-order "disk": every
    /// SubmitDisk completes before the next client request is injected.
    /// Returns (completions, server).
    fn run_closed_loop(
        mut srv: StorageServer,
        streams: usize,
        reqs_per_stream: usize,
    ) -> (u64, StorageServer) {
        let spacing = DISK_BLOCKS / streams as u64;
        let mut next_req: Vec<u64> = (0..streams).map(|s| s as u64 * spacing).collect();
        let mut issued = vec![0usize; streams];
        let mut done = vec![0usize; streams];
        let mut completions = 0u64;
        let mut clock = 0u64;
        let mut client_of = std::collections::HashMap::new();
        let mut next_client_id = 0u64;

        // Round-robin client injection, completing all disk work eagerly.
        // When a pass makes no progress (e.g. finished streams pin
        // partially-consumed buffers), run the periodic GC the way the real
        // server loop does, then retry.
        let mut gc_retries = 0;
        let mut progress = true;
        while progress {
            progress = false;
            for s in 0..streams {
                if issued[s] - done[s] > 0 || issued[s] >= reqs_per_stream {
                    continue;
                }
                clock += 50;
                let id = next_client_id;
                next_client_id += 1;
                client_of.insert(id, s);
                let req = ClientRequest::read(id, 0, next_req[s], 128);
                next_req[s] += 128;
                issued[s] += 1;
                progress = true;
                let mut outs = srv.on_client_request(t(clock), req);
                // Drain the disk: complete backend requests FIFO until the
                // server stops producing them.
                let mut disk_q: Vec<BackendRequest> = Vec::new();
                loop {
                    for o in outs.drain(..) {
                        match o {
                            ServerOutput::SubmitDisk(b) => disk_q.push(b),
                            ServerOutput::CompleteClient { client, .. } => {
                                completions += 1;
                                done[client_of[&client]] += 1;
                            }
                        }
                    }
                    if disk_q.is_empty() {
                        break;
                    }
                    let b = disk_q.remove(0);
                    clock += 10;
                    outs = srv.on_disk_complete(t(clock), b.id);
                }
            }
            if !progress && completions < (streams * reqs_per_stream) as u64 && gc_retries < 50 {
                gc_retries += 1;
                // Jump past the buffer timeout and sweep, draining any disk
                // work the freed memory lets the server issue.
                clock += 20_000_000;
                let mut outs = srv.on_gc(t(clock));
                let mut disk_q: Vec<BackendRequest> = Vec::new();
                loop {
                    for o in outs.drain(..) {
                        match o {
                            ServerOutput::SubmitDisk(b) => disk_q.push(b),
                            ServerOutput::CompleteClient { client, .. } => {
                                completions += 1;
                                done[client_of[&client]] += 1;
                            }
                        }
                    }
                    if disk_q.is_empty() {
                        break;
                    }
                    let b = disk_q.remove(0);
                    clock += 10;
                    outs = srv.on_disk_complete(t(clock), b.id);
                }
                progress = true;
            }
        }
        if completions < (streams * reqs_per_stream) as u64 {
            eprintln!(
                "STALL: completions={} dispatched={} live={} mem={}/{} rr_nonempty_hint",
                completions,
                srv.dispatched_streams(),
                srv.live_streams(),
                srv.memory_used(),
                srv.config().memory_bytes
            );
            for s in 0..streams {
                if done[s] < reqs_per_stream {
                    eprintln!("  stream {s}: issued={} done={}", issued[s], done[s]);
                }
            }
        }
        (completions, srv)
    }

    #[test]
    fn single_stream_completes_every_request() {
        let (completions, srv) = run_closed_loop(server(cfg(2, 256, 4)), 1, 50);
        assert_eq!(completions, 50);
        let m = srv.metrics();
        assert_eq!(m.client_requests, 50);
        assert_eq!(m.completions, 50);
        assert!(m.streams_detected >= 1);
        // After detection, most requests come from memory.
        assert!(m.memory_hits > 40, "memory hits {}", m.memory_hits);
    }

    #[test]
    fn many_streams_complete_every_request() {
        let (completions, srv) = run_closed_loop(server(cfg(2, 256, 4)), 20, 20);
        assert_eq!(completions, 400, "every request completes exactly once");
        assert_eq!(srv.metrics().completions, 400);
        assert!(srv.metrics().streams_detected >= 20);
    }

    #[test]
    fn dispatch_set_bounded_by_d() {
        let srv = server(cfg(3, 256, 4));
        let (_, srv) = run_closed_loop(srv, 10, 10);
        // The bound holds at the end; the invariant is asserted throughout
        // by construction (dispatched_count guarded in try_admit).
        assert!(srv.dispatched_streams() <= 3);
    }

    #[test]
    fn memory_never_exceeds_m() {
        let c = cfg(4, 512, 2);
        let m = c.memory_bytes;
        let (_, srv) = run_closed_loop(server(c), 30, 10);
        assert!(srv.memory_peak() <= m, "peak {} > M {}", srv.memory_peak(), m);
        assert!(srv.memory_peak() > 0);
    }

    #[test]
    fn detection_takes_two_requests() {
        let mut srv = server(cfg(1, 256, 1));
        let o1 = srv.on_client_request(t(0), ClientRequest::read(0, 0, 0, 128));
        assert!(matches!(o1[0], ServerOutput::SubmitDisk(b) if !b.admitted && b.blocks == 128));
        assert_eq!(srv.live_streams(), 0);
        let o2 = srv.on_client_request(t(1), ClientRequest::read(1, 0, 128, 128));
        // Second request triggers detection: direct submit + read-ahead fill.
        assert_eq!(srv.live_streams(), 1);
        let fills: Vec<_> =
            o2.iter().filter(|o| matches!(o, ServerOutput::SubmitDisk(b) if b.admitted)).collect();
        assert_eq!(fills.len(), 1, "read-ahead starts on detection");
        assert_eq!(srv.metrics().streams_detected, 1);
    }

    #[test]
    fn writes_pass_through() {
        let mut srv = server(cfg(1, 256, 1));
        let outs = srv.on_client_request(
            t(0),
            ClientRequest { id: 9, disk: 0, lba: 0, blocks: 128, write: true },
        );
        assert_eq!(outs.len(), 1);
        assert!(matches!(outs[0], ServerOutput::SubmitDisk(b) if b.write));
        assert_eq!(srv.metrics().direct_requests, 1);
    }

    #[test]
    fn residency_limits_fills_per_admission() {
        // D=1, N=2: a stream issues exactly 2 fills per admission.
        let (_, srv) = run_closed_loop(server(cfg(1, 64, 2)), 1, 40);
        let m = srv.metrics();
        assert!(m.admissions >= 2, "stream must cycle through the dispatch set");
        // fills = admissions (first fill) + continuations; with N=2 the
        // continuation count equals the admission count (one extra each).
        assert!(
            m.fills_issued <= m.admissions * 2,
            "fills {} > admissions {} * N",
            m.fills_issued,
            m.admissions
        );
    }

    #[test]
    fn round_robin_is_fair() {
        // D=1 and many streams: admissions should spread across streams, so
        // every stream finishes (checked by run_closed_loop returning).
        let (completions, srv) = run_closed_loop(server(cfg(1, 128, 1)), 8, 10);
        assert_eq!(completions, 80);
        assert!(srv.metrics().admissions >= 8);
    }

    #[test]
    fn gc_reclaims_idle_streams_and_buffers() {
        let mut srv = server(cfg(2, 256, 2));
        // Detect a stream and stage data for it, draining all disk work
        // (fill completions may trigger follow-up fills).
        let mut backend = Vec::new();
        for (i, lba) in [(0u64, 0u64), (1, 128)] {
            for o in srv.on_client_request(t(i * 100), ClientRequest::read(i, 0, lba, 128)) {
                if let ServerOutput::SubmitDisk(b) = o {
                    backend.push(b.id);
                }
            }
        }
        let mut clock = 1_000;
        while let Some(id) = backend.pop() {
            clock += 1;
            for o in srv.on_disk_complete(t(clock), id) {
                if let ServerOutput::SubmitDisk(b) = o {
                    backend.push(b.id);
                }
            }
        }
        assert!(srv.memory_used() > 0);
        assert_eq!(srv.live_streams(), 1);
        // Long after the timeout, GC tears everything down.
        let far = SimTime::ZERO + SimDuration::from_secs(100);
        let _ = srv.on_gc(far);
        assert_eq!(srv.memory_used(), 0, "buffers reclaimed");
        assert_eq!(srv.live_streams(), 0, "idle stream reclaimed");
        assert_eq!(srv.metrics().streams_gced, 1);
    }

    #[test]
    fn issue_path_priority_orders_outputs() {
        // With priority on, SubmitDisk entries precede CompleteClient in the
        // fill-completion output; with it off, the reverse.
        for priority in [true, false] {
            let mut c = cfg(1, 64, 8);
            c.issue_path_priority = priority;
            let mut srv = server(c);
            let mut fills = Vec::new();
            // Detect.
            let _ = srv.on_client_request(t(0), ClientRequest::read(0, 0, 0, 128));
            for o in srv.on_client_request(t(1), ClientRequest::read(1, 0, 128, 128)) {
                if let ServerOutput::SubmitDisk(b) = o {
                    fills.push(b);
                }
            }
            // Queue a request for data the first fill will deliver, then
            // complete the fill. 64 KiB fill covers blocks [256, 384).
            let fill = fills.iter().find(|b| b.admitted).expect("fill issued");
            let _ = srv.on_client_request(t(2), ClientRequest::read(2, 0, 256, 128));
            let outs = srv.on_disk_complete(t(3), fill.id);
            let submit_pos = outs.iter().position(|o| matches!(o, ServerOutput::SubmitDisk(_)));
            let complete_pos =
                outs.iter().position(|o| matches!(o, ServerOutput::CompleteClient { .. }));
            let (Some(s), Some(c)) = (submit_pos, complete_pos) else {
                panic!("expected both a submit and a completion, got {outs:?}");
            };
            if priority {
                assert!(s < c, "issue path must come first: {outs:?}");
            } else {
                assert!(c < s, "completion path must come first: {outs:?}");
            }
        }
    }

    #[test]
    fn refetches_after_gc_dropped_data() {
        let mut c = cfg(1, 64, 1);
        c.buffer_timeout = SimDuration::from_millis(1);
        let mut srv = server(c);
        // Detect a stream; let its fill land.
        let _ = srv.on_client_request(t(0), ClientRequest::read(0, 0, 0, 128));
        let outs = srv.on_client_request(t(10), ClientRequest::read(1, 0, 128, 128));
        let fill = outs
            .iter()
            .find_map(|o| match o {
                ServerOutput::SubmitDisk(b) if b.admitted => Some(*b),
                _ => None,
            })
            .expect("fill issued");
        let _ = srv.on_disk_complete(t(20), fill.id);
        assert!(srv.memory_used() > 0);
        // GC sweeps the staged (never consumed) buffer away.
        let _ = srv.on_gc(SimTime::ZERO + SimDuration::from_secs(10));
        assert_eq!(srv.memory_used(), 0);
        // The client finally asks for the dropped range: the server must
        // fetch it again rather than stall.
        let outs = srv.on_client_request(
            SimTime::ZERO + SimDuration::from_secs(11),
            ClientRequest::read(2, 0, 256, 128),
        );
        let refetch: Vec<_> =
            outs.iter().filter(|o| matches!(o, ServerOutput::SubmitDisk(_))).collect();
        assert_eq!(refetch.len(), 1, "expected a refetch, got {outs:?}");
    }

    #[test]
    fn duplicate_or_backward_requests_go_direct() {
        let mut srv = server(cfg(1, 256, 1));
        let _ = srv.on_client_request(t(0), ClientRequest::read(0, 0, 1000, 128));
        let _ = srv.on_client_request(t(1), ClientRequest::read(1, 0, 1128, 128));
        assert_eq!(srv.live_streams(), 1);
        // Re-reading an old offset does not match the stream (expected next
        // is 1256) and must not corrupt it.
        let outs = srv.on_client_request(t(2), ClientRequest::read(2, 0, 0, 128));
        assert!(matches!(outs[0], ServerOutput::SubmitDisk(b) if b.lba == 0 && !b.admitted));
        assert_eq!(srv.live_streams(), 1);
    }

    #[test]
    #[should_panic(expected = "unknown disk")]
    fn unknown_disk_panics() {
        let mut srv = server(cfg(1, 64, 1));
        let _ = srv.on_client_request(t(0), ClientRequest::read(0, 7, 0, 128));
    }

    #[test]
    #[should_panic(expected = "unknown backend request")]
    fn double_completion_panics() {
        let mut srv = server(cfg(1, 64, 1));
        let outs = srv.on_client_request(t(0), ClientRequest::read(0, 0, 0, 128));
        let ServerOutput::SubmitDisk(b) = outs[0] else { panic!() };
        let _ = srv.on_disk_complete(t(1), b.id);
        let _ = srv.on_disk_complete(t(2), b.id);
    }

    #[test]
    fn span_log_records_lifecycle_without_changing_outputs() {
        // Identical request sequence with and without the span log: the
        // ServerOutputs must match exactly, and the log must carry the
        // expected annotations.
        let drive = |enable: bool| {
            let mut srv = server(cfg(2, 64, 2));
            if enable {
                srv.enable_span_log();
            }
            let mut all_outs = Vec::new();
            let mut spans = Vec::new();
            let mut backend = Vec::new();
            let mut clock = 0u64;
            for (id, lba) in [(0u64, 0u64), (1, 128), (2, 256)] {
                clock += 100;
                let outs = srv.on_client_request(t(clock), ClientRequest::read(id, 0, lba, 128));
                for o in &outs {
                    if let ServerOutput::SubmitDisk(b) = o {
                        backend.push(b.id);
                    }
                }
                all_outs.extend(outs);
                srv.drain_span_log(&mut spans);
            }
            while let Some(bid) = backend.pop() {
                clock += 10;
                let outs = srv.on_disk_complete(t(clock), bid);
                for o in &outs {
                    if let ServerOutput::SubmitDisk(b) = o {
                        backend.push(b.id);
                    }
                }
                all_outs.extend(outs);
                srv.drain_span_log(&mut spans);
            }
            (all_outs, spans)
        };
        let (outs_off, spans_off) = drive(false);
        let (outs_on, spans_on) = drive(true);
        assert_eq!(outs_off, outs_on, "span log must not perturb outputs");
        assert!(spans_off.is_empty(), "disabled log records nothing");
        // Request 1 triggers detection, request 2 matches the stream.
        assert!(spans_on.contains(&SpanEvent::Classified { client: 1, at: t(200) }));
        assert!(spans_on.contains(&SpanEvent::Classified { client: 2, at: t(300) }));
        // Every direct submit carries a DiskIssued stamp.
        assert!(spans_on.iter().any(|e| matches!(e, SpanEvent::DiskIssued { client: 0, .. })));
        assert!(spans_on.iter().any(|e| matches!(e, SpanEvent::DiskIssued { client: 1, .. })));
    }

    #[test]
    fn annotate_backend_fault_tags_direct_and_fill() {
        let mut srv = server(cfg(1, 64, 1));
        srv.enable_span_log();
        // Direct request: annotate before completion.
        let outs = srv.on_client_request(t(0), ClientRequest::read(7, 0, 0, 128));
        let ServerOutput::SubmitDisk(b) = outs[0] else { panic!() };
        srv.annotate_backend_fault(b.id, 2, true);
        let mut spans = Vec::new();
        srv.drain_span_log(&mut spans);
        assert!(spans.contains(&SpanEvent::Faulted { client: 7, retries: 2, timed_out: true }));
        let _ = srv.on_disk_complete(t(10), b.id);
        // Unknown backend id is a no-op, not a panic.
        srv.annotate_backend_fault(9999, 1, false);
    }

    #[test]
    fn degraded_disk_rotates_streams_after_each_fill() {
        // Healthy control: full residencies, no rotation counted.
        let (done, srv) = run_closed_loop(server(cfg(2, 64, 8)), 2, 40);
        assert_eq!(done, 80);
        assert_eq!(srv.metrics().degraded_rotations, 0);

        // Same workload on a degraded disk: every fill completion rotates
        // the stream out instead of finishing its N-request residency, and
        // all work still completes.
        let mut srv = server(cfg(2, 64, 8));
        srv.set_disk_degraded(0, true);
        let (done, srv) = run_closed_loop(srv, 2, 40);
        assert_eq!(done, 80, "degraded disk must not lose requests");
        assert!(
            srv.metrics().degraded_rotations > 0,
            "degraded disk must rotate dispatched streams early"
        );
    }
}

#[cfg(test)]
mod dispatch_policy_tests {
    use super::*;
    use crate::config::DispatchPolicy;

    fn t(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1_000)
    }

    fn detect_stream(srv: &mut StorageServer, base: u64, first_id: u64) -> Vec<BackendRequest> {
        let mut subs = Vec::new();
        for (k, lba) in [(0u64, base), (1, base + 128)] {
            for o in srv.on_client_request(
                t(first_id * 100 + k),
                ClientRequest::read(first_id * 10 + k, 0, lba, 128),
            ) {
                if let ServerOutput::SubmitDisk(b) = o {
                    subs.push(b);
                }
            }
        }
        subs
    }

    /// With D=1 and three waiting streams, the offset-ordered and
    /// ODSA-scan policies admit the stream nearest (ahead of) the
    /// previously admitted offset, while round robin follows detection
    /// order.
    #[test]
    fn offset_ordered_prefers_nearby_streams() {
        for policy in
            [DispatchPolicy::RoundRobin, DispatchPolicy::OffsetOrdered, DispatchPolicy::OdsaScan]
        {
            let cfg = ServerConfig {
                dispatch_streams: 1,
                read_ahead_bytes: 64 * 1024,
                requests_per_residency: 1,
                memory_bytes: 64 * 1024,
                dispatch_policy: policy,
                ..ServerConfig::default_tuning()
            };
            let mut srv = StorageServer::new(cfg, vec![10_000_000]);
            // Detect three streams: near (100_000), far (5_000_000),
            // middle (120_000) — in this arrival order. The first detected
            // stream is admitted immediately (slot free); the other two wait.
            let mut subs = Vec::new();
            subs.extend(detect_stream(&mut srv, 100_000, 1));
            subs.extend(detect_stream(&mut srv, 5_000_000, 2));
            subs.extend(detect_stream(&mut srv, 120_000, 3));
            // Complete all outstanding disk work; the first fill completion
            // frees the slot and the policy picks the next stream.
            let mut order = Vec::new();
            while let Some(b) = subs.pop() {
                for o in srv.on_disk_complete(t(10_000 + b.id), b.id) {
                    if let ServerOutput::SubmitDisk(nb) = o {
                        if nb.admitted {
                            order.push(nb.lba);
                        }
                        subs.push(nb);
                    }
                }
            }
            match policy {
                DispatchPolicy::RoundRobin => {
                    // Detection order: the far stream (5M) comes before the
                    // nearby one (120K).
                    let far_pos = order.iter().position(|&l| l >= 4_000_000);
                    let near_pos = order.iter().position(|&l| (110_000..1_000_000).contains(&l));
                    if let (Some(f), Some(n)) = (far_pos, near_pos) {
                        assert!(f < n, "round robin follows arrival order: {order:?}");
                    }
                }
                DispatchPolicy::OffsetOrdered | DispatchPolicy::OdsaScan => {
                    // Both streams wait ahead of the admitted offset, so
                    // the elevator pass and the nearest-offset greedy agree
                    // here: the 120K stream goes before the 5M one.
                    let far_pos = order.iter().position(|&l| l >= 4_000_000);
                    let near_pos = order.iter().position(|&l| (110_000..1_000_000).contains(&l));
                    if let (Some(f), Some(n)) = (far_pos, near_pos) {
                        assert!(n < f, "{policy:?} admits the nearby stream first: {order:?}");
                    }
                }
            }
        }
    }

    /// Every policy preserves the dispatch bound and completes all work.
    #[test]
    fn policies_respect_dispatch_bound() {
        for policy in
            [DispatchPolicy::RoundRobin, DispatchPolicy::OffsetOrdered, DispatchPolicy::OdsaScan]
        {
            let cfg = ServerConfig {
                dispatch_streams: 2,
                read_ahead_bytes: 64 * 1024,
                requests_per_residency: 2,
                memory_bytes: 2 * 2 * 64 * 1024,
                dispatch_policy: policy,
                ..ServerConfig::default_tuning()
            };
            let mut srv = StorageServer::new(cfg, vec![10_000_000]);
            let mut subs = Vec::new();
            for i in 0..6u64 {
                subs.extend(detect_stream(&mut srv, i * 1_000_000, i + 1));
                assert!(srv.dispatched_streams() <= 2);
            }
            while let Some(b) = subs.pop() {
                for o in srv.on_disk_complete(t(50_000 + b.id), b.id) {
                    if let ServerOutput::SubmitDisk(nb) = o {
                        subs.push(nb);
                    }
                }
                assert!(srv.dispatched_streams() <= 2, "{policy:?}");
            }
        }
    }

    /// A retune updates the cached derived values, keeps `M` fixed, and
    /// rejects working sets that no longer fit the existing pool.
    #[test]
    fn retune_updates_derived_values_and_enforces_memory() {
        let cfg = ServerConfig {
            dispatch_streams: 4,
            read_ahead_bytes: 64 * 1024,
            requests_per_residency: 2,
            memory_bytes: 8 * 64 * 1024,
            ..ServerConfig::default_tuning()
        };
        let mut srv = StorageServer::new(cfg, vec![10_000_000; 2]);
        srv.retune(2, 128 * 1024, 2, 3.0).unwrap();
        assert_eq!(srv.config().dispatch_streams, 2);
        assert_eq!(srv.config().read_ahead_bytes, 128 * 1024);
        assert_eq!(srv.config().degraded_rotate_threshold, 3.0);
        assert_eq!(srv.config().memory_bytes, 8 * 64 * 1024, "M never moves");
        assert_eq!(srv.read_ahead_blocks, 256);
        assert_eq!(srv.disk_quota, 1);

        // D*R*N > M: rejected, config untouched.
        let before = srv.config().clone();
        assert!(srv.retune(8, 128 * 1024, 4, 3.0).is_err());
        assert_eq!(*srv.config(), before);
        // Degenerate knobs are rejected through the same validation.
        assert!(srv.retune(0, 128 * 1024, 1, 3.0).is_err());
        assert!(srv.retune(1, 64 * 1024, 1, 1.0).is_err());
    }
}
