//! Optional per-request trace capture.
//!
//! When enabled on an [`Experiment`](crate::Experiment), the engine records
//! one [`TraceRecord`] per completed client request (within the measured
//! window), which downstream tooling can dump as CSV for latency analysis
//! or replay studies.

use std::fmt::Write as _;

use seqio_simcore::SimTime;

/// One completed client request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Stream index within the experiment.
    pub stream: usize,
    /// Target disk.
    pub disk: usize,
    /// First block.
    pub lba: u64,
    /// Length in blocks.
    pub blocks: u64,
    /// When the client sent the request.
    pub sent: SimTime,
    /// When the response reached the client.
    pub completed: SimTime,
    /// Whether the buffered set served it without new disk I/O.
    pub from_memory: bool,
}

impl TraceRecord {
    /// Client-observed latency.
    pub fn latency(&self) -> seqio_simcore::SimDuration {
        self.completed.duration_since(self.sent)
    }
}

/// Renders records as CSV (with header).
pub fn to_csv(records: &[TraceRecord]) -> String {
    let mut out =
        String::from("stream,disk,lba,blocks,sent_ns,completed_ns,latency_us,from_memory\n");
    for r in records {
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{:.1},{}",
            r.stream,
            r.disk,
            r.lba,
            r.blocks,
            r.sent.as_nanos(),
            r.completed.as_nanos(),
            r.latency().as_micros_f64(),
            r.from_memory
        );
    }
    out
}

/// Parses the CSV produced by [`to_csv`] back into records.
///
/// # Errors
///
/// Returns a message naming the first malformed line.
pub fn from_csv(csv: &str) -> Result<Vec<TraceRecord>, String> {
    let mut out = Vec::new();
    for (i, line) in csv.lines().enumerate() {
        if i == 0 && line.starts_with("stream,") {
            continue; // header
        }
        if line.trim().is_empty() {
            continue;
        }
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 8 {
            return Err(format!("line {}: expected 8 fields, got {}", i + 1, f.len()));
        }
        let parse_u64 = |s: &str, what: &str| -> Result<u64, String> {
            s.parse().map_err(|_| format!("line {}: bad {what} {s:?}", i + 1))
        };
        out.push(TraceRecord {
            stream: parse_u64(f[0], "stream")? as usize,
            disk: parse_u64(f[1], "disk")? as usize,
            lba: parse_u64(f[2], "lba")?,
            blocks: parse_u64(f[3], "blocks")?,
            sent: SimTime::from_nanos(parse_u64(f[4], "sent")?),
            completed: SimTime::from_nanos(parse_u64(f[5], "completed")?),
            from_memory: f[7].trim() == "true",
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(stream: usize, sent_us: u64, done_us: u64) -> TraceRecord {
        TraceRecord {
            stream,
            disk: 0,
            lba: stream as u64 * 1000,
            blocks: 128,
            sent: SimTime::from_nanos(sent_us * 1_000),
            completed: SimTime::from_nanos(done_us * 1_000),
            from_memory: stream.is_multiple_of(2),
        }
    }

    #[test]
    fn latency_is_completion_minus_send() {
        let r = rec(1, 100, 350);
        assert_eq!(r.latency().as_micros_f64(), 250.0);
    }

    #[test]
    fn csv_round_trips() {
        let records = vec![rec(0, 0, 100), rec(1, 50, 400), rec(2, 60, 90)];
        let parsed = from_csv(&to_csv(&records)).unwrap();
        assert_eq!(parsed.len(), 3);
        for (a, b) in records.iter().zip(&parsed) {
            assert_eq!(a.stream, b.stream);
            assert_eq!(a.lba, b.lba);
            assert_eq!(a.sent, b.sent);
            assert_eq!(a.from_memory, b.from_memory);
        }
    }

    #[test]
    fn from_csv_reports_bad_lines() {
        assert!(from_csv("1,2,3").is_err());
        assert!(from_csv("a,b,c,d,e,f,g,h").is_err());
        assert!(from_csv("").unwrap().is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let csv = to_csv(&[rec(0, 0, 100), rec(1, 50, 400)]);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("stream,disk,lba"));
        assert_eq!(lines.clone().count(), 2);
        let row: Vec<&str> = lines.next().unwrap().split(',').collect();
        assert_eq!(row[0], "0");
        assert_eq!(row[6], "100.0");
        assert_eq!(row[7], "true");
    }
}
