//! Figure 7 — Effect of read-ahead at a fixed 8 MB disk cache.
//!
//! Paper: total cache fixed at 8 MB; the segment-count x segment-size split
//! swept from 128x64K to 8x1M, 64 KB requests, 1–100 streams. Larger
//! segments help while `#segments > #streams`; once streams outnumber
//! segments, LRU reclaims prefetched data before use and throughput drops
//! below the little-prefetch configurations.

use seqio_bench::{quick_mode, window_secs, Figure, Grid};
use seqio_disk::CacheConfig;
use seqio_node::{Experiment, NodeShape};
use seqio_simcore::units::{format_bytes, KIB};

fn main() {
    let (warmup, duration) = window_secs((2, 3), (4, 8));
    // (#segments, segment size) pairs keeping 8 MB total.
    let splits: Vec<(usize, u64)> =
        vec![(128, 64 * KIB), (64, 128 * KIB), (32, 256 * KIB), (16, 512 * KIB), (8, 1024 * KIB)];
    let stream_counts: Vec<usize> =
        if quick_mode() { vec![1, 10, 30, 100] } else { vec![1, 10, 20, 30, 50, 100] };

    let mut grid = Grid::new();
    for &n in &stream_counts {
        let label = format!("{n} Stream{}", if n == 1 { "" } else { "s" });
        for &(count, seg) in &splits {
            let mut shape = NodeShape::single_disk();
            shape.disk.cache =
                CacheConfig { segment_count: count, segment_bytes: seg, read_ahead_bytes: seg };
            grid = grid.point(
                &label,
                format!("{count}x{}", format_bytes(seg)),
                Experiment::builder()
                    .shape(shape)
                    .streams_per_disk(n)
                    .request_size(64 * KIB)
                    .warmup(warmup)
                    .duration(duration)
                    .seed(77)
                    .build(),
            );
        }
    }

    let mut fig = Figure::new(
        "Figure 7",
        "Read-ahead vs segment count at a fixed 8MB disk cache (64K requests)",
        "#Segments x Segment size",
        "Throughput (MBytes/s)",
    );
    grid.run().fill(&mut fig, |r| r.total_throughput_mbs());
    fig.report("fig07_readahead_tradeoff");

    // Shape checks: with few streams, bigger segments help; with 100
    // streams (more than any segment count here except 128), big segments
    // hurt relative to the stream count staying under the segment count.
    let one = fig.series[0].ys();
    assert!(
        *one.last().unwrap() > one[0],
        "single stream should improve with segment size: {one:?}"
    );
    let hundred = fig.series.last().unwrap().ys();
    assert!(
        *hundred.last().unwrap() < *one.last().unwrap() / 2.0,
        "100 streams over 8 segments must thrash"
    );
    println!(
        "shape ok: at 8x1M, 1 stream {:.0} MB/s vs 100 streams {:.1} MB/s",
        one.last().unwrap(),
        hundred.last().unwrap()
    );
}
