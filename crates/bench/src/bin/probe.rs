//! Calibration probe: prints the key operating points the figures depend
//! on, so model constants can be sanity-checked quickly.

use seqio_core::ServerConfig;
use seqio_disk::CacheConfig;
use seqio_hostsched::{ReadaheadConfig, SchedKind};
use seqio_node::{CostModel, Experiment, Frontend, NodeShape};
use seqio_simcore::units::{KIB, MIB};
use seqio_simcore::SimDuration;

fn main() {
    let w = SimDuration::from_secs(6);
    let d = SimDuration::from_secs(6);

    println!("-- direct path, single disk, 64K requests (Fig 4/5 flavour) --");
    for s in [1usize, 10, 30, 100] {
        let r = Experiment::builder().streams_per_disk(s).warmup(w).duration(d).build().run();
        println!(
            "  S={s:<4} {:>7.2} MB/s  mean resp {:.2} ms",
            r.total_throughput_mbs(),
            r.mean_response_ms()
        );
    }

    println!("-- direct, segment == request (no disk prefetch, Fig 4) --");
    for s in [1usize, 10, 30, 100] {
        let mut shape = NodeShape::single_disk();
        shape.disk.cache =
            CacheConfig { segment_count: 128, segment_bytes: 64 * KIB, read_ahead_bytes: 64 * KIB };
        let r = Experiment::builder()
            .shape(shape)
            .streams_per_disk(s)
            .warmup(w)
            .duration(d)
            .build()
            .run();
        println!("  S={s:<4} {:>7.2} MB/s", r.total_throughput_mbs());
    }

    println!("-- stream scheduler, all dispatched (Fig 10) --");
    for s in [10usize, 30, 100] {
        for ra in [128 * KIB, 512 * KIB, 2 * MIB, 8 * MIB] {
            let r = Experiment::builder()
                .streams_per_disk(s)
                .frontend(Frontend::stream_scheduler_with_readahead(ra))
                .warmup(w)
                .duration(d)
                .build()
                .run();
            println!(
                "  S={s:<4} R={:<5} {:>7.2} MB/s resp {:.1} ms",
                ra / KIB,
                r.total_throughput_mbs(),
                r.mean_response_ms()
            );
        }
    }

    println!("-- small dispatch set (Fig 14): D=1, N=128, R=512K --");
    for s in [10usize, 30, 100] {
        let cfg = ServerConfig::small_dispatch(1, 512 * KIB, 128);
        let r = Experiment::builder()
            .streams_per_disk(s)
            .frontend(Frontend::StreamScheduler(cfg))
            .warmup(w)
            .duration(d)
            .build()
            .run();
        println!("  S={s:<4} {:>7.2} MB/s", r.total_throughput_mbs());
    }

    println!("-- 8 disks, D=S (Fig 12) vs D=8,N=128 (Fig 13) at R=512K --");
    for s in [10usize, 100] {
        let r = Experiment::builder()
            .shape(NodeShape::eight_disk())
            .streams_per_disk(s)
            .frontend(Frontend::stream_scheduler_with_readahead(512 * KIB))
            .warmup(w)
            .duration(d)
            .build()
            .run();
        println!("  D=S  S/disk={s:<4} {:>8.2} MB/s", r.total_throughput_mbs());
        let cfg = ServerConfig::small_dispatch(8, 512 * KIB, 128);
        let r = Experiment::builder()
            .shape(NodeShape::eight_disk())
            .streams_per_disk(s)
            .frontend(Frontend::StreamScheduler(cfg))
            .warmup(w)
            .duration(d)
            .build()
            .run();
        println!("  D=8  S/disk={s:<4} {:>8.2} MB/s", r.total_throughput_mbs());
    }

    println!("-- Linux schedulers, 4K reads (Fig 2) --");
    for kind in [SchedKind::Anticipatory, SchedKind::Cfq, SchedKind::Noop] {
        for s in [1usize, 16, 64, 256] {
            let r = Experiment::builder()
                .streams_per_disk(s)
                .request_size(4 * KIB)
                .frontend(Frontend::Linux {
                    scheduler: kind,
                    readahead: ReadaheadConfig::default(),
                })
                .costs(CostModel::local_xdd())
                .warmup(w)
                .duration(d)
                .build()
                .run();
            println!("  {:<13} S={s:<4} {:>7.2} MB/s", kind.name(), r.total_throughput_mbs());
        }
    }
}
